//! SoftTFIDF — the corpus-weighted hybrid measure of Cohen, Ravikumar &
//! Fienberg's toolkit (the paper's \[5\]). Tokens are weighted by TF-IDF
//! against a training corpus, and tokens *close* under an inner
//! character-level similarity (Jaro-Winkler above a threshold) count as
//! shared — so "Jeff Ullmann" scores high against "Jeff Ullman" even
//! though the surname tokens differ.

use crate::jaro::JaroWinkler;
use crate::tokenize::words;
use crate::traits::StringMetric;
use std::collections::HashMap;

/// SoftTFIDF distance (`1 − similarity`), trained on a corpus of strings.
#[derive(Debug, Clone)]
pub struct SoftTfIdf {
    idf: HashMap<String, f64>,
    docs: f64,
    inner: JaroWinkler,
    /// Inner-similarity threshold above which two tokens "match"
    /// (conventionally 0.9).
    pub theta: f64,
}

impl SoftTfIdf {
    /// Train IDF weights on a corpus of strings (each string = one
    /// document of word tokens).
    pub fn train<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut df: HashMap<String, f64> = HashMap::new();
        for s in corpus {
            let mut seen: Vec<String> = words(s.as_ref());
            seen.sort();
            seen.dedup();
            for w in seen {
                *df.entry(w).or_insert(0.0) += 1.0;
            }
        }
        let docs = corpus.len().max(1) as f64;
        let idf = df
            .into_iter()
            .map(|(w, d)| (w, (docs / d).ln() + 1.0))
            .collect();
        SoftTfIdf {
            idf,
            docs,
            inner: JaroWinkler::default(),
            theta: 0.9,
        }
    }

    /// IDF weight of a token — unseen tokens get the maximum weight
    /// (`ln(N) + 1`), as rare as possible.
    fn idf(&self, w: &str) -> f64 {
        self.idf
            .get(w)
            .copied()
            .unwrap_or_else(|| self.docs.ln() + 1.0)
    }

    /// Normalized TF-IDF weight vector of a string.
    fn weights(&self, s: &str) -> Vec<(String, f64)> {
        let toks = words(s);
        let mut tf: HashMap<String, f64> = HashMap::new();
        for t in &toks {
            *tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
        let mut v: Vec<(String, f64)> = tf
            .into_iter()
            .map(|(w, f)| {
                let weight = (f.ln() + 1.0) * self.idf(&w);
                (w, weight)
            })
            .collect();
        let norm: f64 = v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut v {
                *w /= norm;
            }
        }
        v
    }

    /// SoftTFIDF similarity in `[0, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let wa = self.weights(a);
        let wb = self.weights(b);
        if wa.is_empty() && wb.is_empty() {
            return 1.0;
        }
        if wa.is_empty() || wb.is_empty() {
            return 0.0;
        }
        let mut sim = 0.0;
        for (ta, va) in &wa {
            // closest token of b above the threshold
            let mut best: Option<(f64, f64)> = None; // (inner sim, weight_b)
            for (tb, vb) in &wb {
                let s = self.inner.similarity(ta, tb);
                if s >= self.theta && best.map(|(bs, _)| s > bs).unwrap_or(true) {
                    best = Some((s, *vb));
                }
            }
            if let Some((s, vb)) = best {
                sim += va * vb * s;
            }
        }
        sim.clamp(0.0, 1.0)
    }
}

impl StringMetric for SoftTfIdf {
    fn distance(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 0.0; // exact identity, free of float residue
        }
        // symmetrize: the close-token matching is asymmetric in general
        let s = 0.5 * (self.similarity(a, b) + self.similarity(b, a));
        (1.0 - s).max(0.0)
    }

    fn name(&self) -> &str {
        "soft-tfidf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    fn trained() -> SoftTfIdf {
        SoftTfIdf::train(&[
            "Jeff Ullman",
            "Jeffrey D Ullman",
            "Edgar Codd",
            "Jim Gray",
            "Serge Abiteboul",
            "data integration for web data",
            "query processing for web data",
        ])
    }

    #[test]
    fn identical_strings_have_distance_zero() {
        let m = trained();
        assert!(m.distance("Jeff Ullman", "Jeff Ullman") < 1e-9);
    }

    #[test]
    fn near_token_variants_score_high() {
        let m = trained();
        // "ullmann" vs "ullman": Jaro-Winkler ≈ 0.99 > θ
        let d = m.distance("Jeff Ullmann", "Jeff Ullman");
        assert!(d < 0.1, "{d}");
    }

    #[test]
    fn rare_tokens_dominate_common_ones() {
        let m = trained();
        // "data" is common in the corpus, surnames are rare: sharing a
        // surname matters more than sharing "data"
        let share_rare = m.distance("Ullman data", "Ullman web");
        let share_common = m.distance("Codd data", "Ullman data");
        assert!(share_rare < share_common, "{share_rare} vs {share_common}");
    }

    #[test]
    fn disjoint_strings_distance_one() {
        let m = trained();
        assert!((m.distance("aaa bbb", "ccc ddd") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cases() {
        let m = trained();
        assert_eq!(m.distance("", ""), 0.0);
        assert_eq!(m.distance("", "x"), 1.0);
    }

    #[test]
    fn axioms_hold_after_symmetrization() {
        let m = trained();
        axioms::assert_axioms(&m);
        axioms::assert_within_consistent(&m);
    }

    #[test]
    fn training_on_empty_corpus_is_safe() {
        let m = SoftTfIdf::train::<&str>(&[]);
        assert_eq!(m.distance("a b", "a b"), 0.0);
        assert!(m.distance("a b", "c d") > 0.9);
    }
}
