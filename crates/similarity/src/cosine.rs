//! Cosine token distance — `1 − cos θ` over term-frequency vectors of word
//! tokens. One of the token-based measures Definition 7's discussion lists
//! alongside Jaccard. Plain cosine distance is not strong (the angular
//! distance would be), so `is_strong()` is `false`.

use crate::tokenize::words;
use crate::traits::StringMetric;
use std::collections::HashMap;

/// Cosine distance over lowercase word-token frequency vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

impl Cosine {
    /// Cosine similarity in `[0, 1]`; `1.0` when both strings tokenize to
    /// nothing, `0.0` when exactly one does.
    pub fn similarity(a: &str, b: &str) -> f64 {
        let ta = counts(a);
        let tb = counts(b);
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let dot: f64 = ta
            .iter()
            .filter_map(|(w, &ca)| tb.get(w).map(|&cb| ca * cb))
            .sum();
        let na: f64 = ta.values().map(|c| c * c).sum::<f64>().sqrt();
        let nb: f64 = tb.values().map(|c| c * c).sum::<f64>().sqrt();
        dot / (na * nb)
    }
}

fn counts(s: &str) -> HashMap<String, f64> {
    let mut m = HashMap::new();
    for w in words(s) {
        *m.entry(w).or_insert(0.0) += 1.0;
    }
    m
}

impl StringMetric for Cosine {
    fn distance(&self, a: &str, b: &str) -> f64 {
        // clamp for floating point safety so distances are never negative
        (1.0 - Self::similarity(a, b)).max(0.0)
    }

    fn name(&self) -> &str {
        "cosine-tokens"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    #[test]
    fn identical_multisets_have_distance_zero() {
        assert!(Cosine.distance("a b a", "a a b") < 1e-12);
    }

    #[test]
    fn disjoint_have_distance_one() {
        assert_eq!(Cosine.distance("a b", "c d"), 1.0);
    }

    #[test]
    fn frequency_matters_unlike_jaccard() {
        // "a a b" vs "a b b": same token sets, different frequencies
        let d = Cosine.distance("a a b", "a b b");
        assert!(d > 0.0 && d < 0.5);
        assert_eq!(crate::JaccardTokens.distance("a a b", "a b b"), 0.0);
    }

    #[test]
    fn known_value() {
        // "a b" vs "a": dot = 1, norms = sqrt(2), 1 → sim = 1/sqrt(2)
        let s = Cosine::similarity("a b", "a");
        assert!((s - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(Cosine.distance("", ""), 0.0);
        assert_eq!(Cosine.distance("", "x"), 1.0);
    }

    #[test]
    fn axioms_hold() {
        axioms::assert_axioms(&Cosine);
        axioms::assert_within_consistent(&Cosine);
    }
}
