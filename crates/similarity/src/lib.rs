//! # toss-similarity — string and node similarity measures
//!
//! Definition 7 of the TOSS paper: a *string similarity measure* `d_s`
//! maps two strings to a non-negative real with `d_s(X, X) = 0` and
//! symmetry; it is **strong** when it also satisfies the triangle
//! inequality. A *node similarity measure* `d` between ontology nodes
//! (sets of strings) is `d(A, B) = min over X∈A, Y∈B of d_s(X, Y)`.
//!
//! The paper names Levenshtein, Monge-Elkan, the Jaro metric, Jaccard and
//! cosine token distance, and rule-based measures for proper nouns; TOSS is
//! explicitly agnostic — any such implementation can be plugged in. This
//! crate supplies all the named measures behind one trait,
//! [`StringMetric`], plus combinators, a memoizing cache and the node-level
//! measure with the Lemma-1 fast path for strong metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod combinators;
pub mod cosine;
pub mod damerau;
pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod monge_elkan;
pub mod ngram;
pub mod node;
pub mod rules;
pub mod smith_waterman;
pub mod soft_tfidf;
pub mod tokenize;
pub mod traits;

pub use cache::CachedMetric;
pub use cosine::Cosine;
pub use damerau::DamerauOsa;
pub use jaccard::JaccardTokens;
pub use jaro::{Jaro, JaroWinkler};
pub use levenshtein::Levenshtein;
pub use monge_elkan::MongeElkan;
pub use ngram::NGram;
pub use node::node_distance;
pub use rules::NameRules;
pub use smith_waterman::SmithWaterman;
pub use soft_tfidf::SoftTfIdf;
pub use traits::StringMetric;
