//! Node-level similarity: the paper's `d(A, B)` between ontology nodes.
//!
//! Definition 7 lifts a string measure to nodes (sets of strings) by
//! taking the minimum over cross pairs. Lemma 1 observes that for *strong*
//! measures, all strings within one node are at distance 0 from each
//! other, so every cross pair has the same distance — one evaluation
//! suffices. `node_distance` applies that fast path automatically.

use crate::traits::StringMetric;

/// `d(A, B) = min over X∈A, Y∈B of d_s(X, Y)`; `f64::INFINITY` when either
/// node is empty (no pair exists to be similar).
pub fn node_distance<M: StringMetric>(metric: &M, a: &[String], b: &[String]) -> f64 {
    match (a.first(), b.first()) {
        (Some(x), Some(y)) if metric.is_strong() => {
            // Lemma 1: any single cross pair determines d(A, B).
            metric.distance(x, y)
        }
        (Some(_), Some(_)) => a
            .iter()
            .flat_map(|x| b.iter().map(move |y| metric.distance(x, y)))
            .fold(f64::INFINITY, f64::min),
        _ => f64::INFINITY,
    }
}

/// Thresholded node distance with early exit: true iff `d(A, B) ≤ ε`.
pub fn node_within<M: StringMetric>(metric: &M, a: &[String], b: &[String], epsilon: f64) -> bool {
    match (a.first(), b.first()) {
        (Some(x), Some(y)) if metric.is_strong() => metric.within(x, y, epsilon),
        (Some(_), Some(_)) => a
            .iter()
            .any(|x| b.iter().any(|y| metric.within(x, y, epsilon))),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::Levenshtein;
    use crate::rules::NameRules;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn min_over_cross_pairs() {
        let a = v(&["relation", "xyzzy"]);
        let b = v(&["relational"]);
        assert_eq!(node_distance(&NameRules::default(), &a, &b).min(100.0), 100.0_f64.min(node_distance(&NameRules::default(), &a, &b)));
        let d = node_distance(&Levenshtein, &a, &b);
        assert_eq!(d, 2.0);
    }

    #[test]
    fn strong_fast_path_matches_full_scan_when_intra_node_distance_zero() {
        // Lemma 1 precondition: strings within a node are at distance 0.
        let a = v(&["same", "same"]);
        let b = v(&["sane", "sane"]);
        assert_eq!(node_distance(&Levenshtein, &a, &b), 1.0);
        assert!(node_within(&Levenshtein, &a, &b, 1.0));
        assert!(!node_within(&Levenshtein, &a, &b, 0.5));
    }

    #[test]
    fn non_strong_measures_scan_all_pairs() {
        // NameRules is not strong; nodes may contain merely-similar strings
        let a = v(&["J. Ullman", "Jeff Ullman"]);
        let b = v(&["Jeffrey Ullman"]);
        let d = node_distance(&NameRules::default(), &a, &b);
        // best pair: "Jeff Ullman" vs "Jeffrey Ullman" → initials-compatible? no —
        // token 'jeff' vs 'jeffrey' are not initial forms, so rule gives >= 3;
        // "J. Ullman" vs "Jeffrey Ullman" → initials → 0.5 wins.
        assert_eq!(d, 0.5);
        assert!(node_within(&NameRules::default(), &a, &b, 0.5));
    }

    #[test]
    fn empty_nodes_are_infinitely_far() {
        let a = v(&[]);
        let b = v(&["x"]);
        assert_eq!(node_distance(&Levenshtein, &a, &b), f64::INFINITY);
        assert_eq!(node_distance(&Levenshtein, &b, &a), f64::INFINITY);
        assert!(!node_within(&Levenshtein, &a, &b, 100.0));
    }
}
