//! The [`StringMetric`] trait — the paper's `d_s`.

/// A string similarity measure per Definition 7: non-negative, zero on
/// identical strings, symmetric. Implementations report whether they are
/// **strong** (satisfy the triangle inequality), which unlocks the
/// Lemma-1 fast path for node distances and is what makes a similarity
/// enhancement's transitive merging sound.
pub trait StringMetric: Send + Sync {
    /// The distance `d_s(a, b)`: `0.0` means identical, larger means less
    /// similar. Must be symmetric and non-negative.
    fn distance(&self, a: &str, b: &str) -> f64;

    /// Whether this measure satisfies the triangle inequality.
    fn is_strong(&self) -> bool {
        false
    }

    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &str;

    /// Whether `a` and `b` are within `epsilon` of each other.
    ///
    /// Implementations may override this with an early-exit algorithm
    /// (e.g. banded Levenshtein) — the SEA algorithm only ever needs the
    /// thresholded answer.
    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        self.distance(a, b) <= epsilon
    }

    /// Blocking bound: `Some(c)` promises
    /// `distance(a, b) ≥ c · |chars(a) − chars(b)|` for every pair, so a
    /// candidate generator may discard pairs whose char-length difference
    /// exceeds `ε / c` without calling [`StringMetric::distance`]. Return
    /// `None` (the default) when no such guarantee holds — callers then
    /// fall back to exhaustive comparison, which is always correct.
    fn length_lower_bound(&self) -> Option<f64> {
        None
    }

    /// Blocking bound: `Some(B)` promises the q-gram count filter at
    /// q = 2 — `shared_bigrams(a, b) ≥ max(chars(a), chars(b)) − 1 − B·d`
    /// where `shared_bigrams` is the bigram *multiset* intersection size
    /// and `d = distance(a, b)`. Edit metrics satisfy this with `B` =
    /// the most bigrams one edit operation can destroy (2 for
    /// insert/delete/substitute, 3 once transpositions are allowed).
    /// Return `None` (the default) when no such guarantee holds.
    fn bigram_edits_bound(&self) -> Option<f64> {
        None
    }
}

impl<M: StringMetric + ?Sized> StringMetric for &M {
    fn distance(&self, a: &str, b: &str) -> f64 {
        (**self).distance(a, b)
    }
    fn is_strong(&self) -> bool {
        (**self).is_strong()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        (**self).within(a, b, epsilon)
    }
    fn length_lower_bound(&self) -> Option<f64> {
        (**self).length_lower_bound()
    }
    fn bigram_edits_bound(&self) -> Option<f64> {
        (**self).bigram_edits_bound()
    }
}

impl<M: StringMetric + ?Sized> StringMetric for Box<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        (**self).distance(a, b)
    }
    fn is_strong(&self) -> bool {
        (**self).is_strong()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        (**self).within(a, b, epsilon)
    }
    fn length_lower_bound(&self) -> Option<f64> {
        (**self).length_lower_bound()
    }
    fn bigram_edits_bound(&self) -> Option<f64> {
        (**self).bigram_edits_bound()
    }
}

impl<M: StringMetric> StringMetric for std::sync::Arc<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        (**self).distance(a, b)
    }
    fn is_strong(&self) -> bool {
        (**self).is_strong()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        (**self).within(a, b, epsilon)
    }
    fn length_lower_bound(&self) -> Option<f64> {
        (**self).length_lower_bound()
    }
    fn bigram_edits_bound(&self) -> Option<f64> {
        (**self).bigram_edits_bound()
    }
}

#[cfg(test)]
pub(crate) mod axioms {
    //! Shared test helpers asserting the Definition-7 axioms on sample
    //! corpora; metric modules call these from their unit tests.
    use super::StringMetric;

    pub const SAMPLES: &[&str] = &[
        "",
        "a",
        "J. Ullman",
        "Jeffrey D. Ullman",
        "Jeff Ullman",
        "Marco Ferrari",
        "Mauro Ferrari",
        "GianLuigi Ferrari",
        "Gian Luigi Ferrari",
        "SIGMOD Conference",
        "ACM SIGMOD International Conference on Management of Data",
        "relational model",
        "relation models",
    ];

    /// `d(x,x) = 0` and symmetry and non-negativity on the sample corpus.
    pub fn assert_axioms<M: StringMetric>(m: &M) {
        for &x in SAMPLES {
            assert!(
                m.distance(x, x).abs() < 1e-12,
                "{}: d({x:?},{x:?}) != 0",
                m.name()
            );
            for &y in SAMPLES {
                let d1 = m.distance(x, y);
                let d2 = m.distance(y, x);
                assert!(d1 >= 0.0, "{}: negative distance", m.name());
                assert!(
                    (d1 - d2).abs() < 1e-12,
                    "{}: asymmetric on {x:?},{y:?}: {d1} vs {d2}",
                    m.name()
                );
            }
        }
    }

    /// Triangle inequality on the sample corpus — call only for metrics
    /// that claim `is_strong()`.
    pub fn assert_triangle<M: StringMetric>(m: &M) {
        assert!(m.is_strong(), "{} does not claim strength", m.name());
        for &x in SAMPLES {
            for &y in SAMPLES {
                for &z in SAMPLES {
                    let lhs = m.distance(x, z);
                    let rhs = m.distance(x, y) + m.distance(y, z);
                    assert!(
                        lhs <= rhs + 1e-9,
                        "{}: triangle violated: d({x:?},{z:?})={lhs} > {rhs}",
                        m.name()
                    );
                }
            }
        }
    }

    /// Any declared blocking bounds actually hold on the sample corpus:
    /// `d ≥ c·|Δchars|` for the length bound, and the q = 2 count filter
    /// `shared_bigrams ≥ max(len) − 1 − B·d` for the bigram bound.
    pub fn assert_blocking_bounds<M: StringMetric>(m: &M) {
        use std::collections::HashMap;
        fn bigrams(s: &str) -> HashMap<(char, char), usize> {
            let cs: Vec<char> = s.chars().collect();
            let mut out = HashMap::new();
            for w in cs.windows(2) {
                *out.entry((w[0], w[1])).or_default() += 1;
            }
            out
        }
        for &x in SAMPLES {
            for &y in SAMPLES {
                let d = m.distance(x, y);
                let (lx, ly) = (x.chars().count(), y.chars().count());
                if let Some(c) = m.length_lower_bound() {
                    let dl = lx.abs_diff(ly) as f64;
                    assert!(
                        d + 1e-9 >= c * dl,
                        "{}: length bound violated on {x:?},{y:?}: d={d} < {c}*{dl}",
                        m.name()
                    );
                }
                if let Some(bb) = m.bigram_edits_bound() {
                    let gx = bigrams(x);
                    let gy = bigrams(y);
                    let shared: usize = gx
                        .iter()
                        .map(|(g, nx)| nx.min(gy.get(g).unwrap_or(&0)))
                        .sum();
                    let need = lx.max(ly) as f64 - 1.0 - bb * d;
                    assert!(
                        shared as f64 + 1e-9 >= need,
                        "{}: bigram bound violated on {x:?},{y:?}: shared={shared} < {need}",
                        m.name()
                    );
                }
            }
        }
    }

    /// `within` agrees with `distance` against a sweep of thresholds.
    pub fn assert_within_consistent<M: StringMetric>(m: &M) {
        for &x in SAMPLES {
            for &y in SAMPLES {
                let d = m.distance(x, y);
                for eps in [0.0, 0.5, 1.0, 2.0, 3.0, 10.0] {
                    assert_eq!(
                        m.within(x, y, eps),
                        d <= eps,
                        "{}: within({x:?},{y:?},{eps}) disagrees with distance {d}",
                        m.name()
                    );
                }
            }
        }
    }
}
