//! Damerau-Levenshtein distance (optimal string alignment variant).
//!
//! Adds adjacent-transposition to the Levenshtein edit set — valuable for
//! typo-driven name variation ("Ferarri" vs "Ferrari"). The OSA variant is
//! *not* a true metric (the triangle inequality can fail when edits
//! overlap a transposed pair), so `is_strong()` is `false`; the SEA
//! algorithm treats it like any other non-strong measure.

use crate::traits::StringMetric;

/// Optimal-string-alignment Damerau-Levenshtein distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct DamerauOsa;

impl DamerauOsa {
    /// Raw OSA distance.
    pub fn raw(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() {
            return b.len();
        }
        if b.is_empty() {
            return a.len();
        }
        let w = b.len() + 1;
        // three rows: i-2, i-1, i
        let mut row2: Vec<usize> = vec![0; w];
        let mut row1: Vec<usize> = (0..w).collect();
        let mut row0: Vec<usize> = vec![0; w];
        for i in 1..=a.len() {
            row0[0] = i;
            for j in 1..=b.len() {
                let cost = usize::from(a[i - 1] != b[j - 1]);
                let mut v = (row1[j - 1] + cost)
                    .min(row1[j] + 1)
                    .min(row0[j - 1] + 1);
                if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                    v = v.min(row2[j - 2] + 1);
                }
                row0[j] = v;
            }
            std::mem::swap(&mut row2, &mut row1);
            std::mem::swap(&mut row1, &mut row0);
        }
        row1[b.len()]
    }
}

impl StringMetric for DamerauOsa {
    fn distance(&self, a: &str, b: &str) -> f64 {
        Self::raw(a, b) as f64
    }

    fn name(&self) -> &str {
        "damerau-osa"
    }

    fn length_lower_bound(&self) -> Option<f64> {
        // every operation (transpositions included) shifts length ≤ 1
        Some(1.0)
    }

    fn bigram_edits_bound(&self) -> Option<f64> {
        // a transposition can touch three bigrams (the two around the
        // swapped pair plus the pair itself)
        Some(3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::Levenshtein;
    use crate::traits::axioms;

    #[test]
    fn transposition_costs_one() {
        assert_eq!(DamerauOsa::raw("ca", "ac"), 1);
        assert_eq!(Levenshtein::raw("ca", "ac"), 2);
        assert_eq!(DamerauOsa::raw("Ferarri", "Ferrari"), 1);
    }

    #[test]
    fn never_exceeds_levenshtein() {
        for &a in axioms::SAMPLES {
            for &b in axioms::SAMPLES {
                assert!(DamerauOsa::raw(a, b) <= Levenshtein::raw(a, b));
            }
        }
    }

    #[test]
    fn empty_cases() {
        assert_eq!(DamerauOsa::raw("", ""), 0);
        assert_eq!(DamerauOsa::raw("", "abc"), 3);
        assert_eq!(DamerauOsa::raw("abc", ""), 3);
    }

    #[test]
    fn axioms_hold() {
        axioms::assert_axioms(&DamerauOsa);
        axioms::assert_within_consistent(&DamerauOsa);
    }

    #[test]
    fn blocking_bounds_hold() {
        axioms::assert_blocking_bounds(&DamerauOsa);
    }

    #[test]
    fn osa_is_declared_non_strong() {
        // the classic OSA counterexample: d(ca, abc) = 3 > d(ca, ac) + d(ac, abc) = 1 + 1
        assert!(!DamerauOsa.is_strong());
        let d_direct = DamerauOsa::raw("ca", "abc");
        let via = DamerauOsa::raw("ca", "ac") + DamerauOsa::raw("ac", "abc");
        assert!(d_direct > via, "expected triangle violation: {d_direct} vs {via}");
    }
}
