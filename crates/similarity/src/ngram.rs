//! Character n-gram distance: Jaccard distance over the sets of character
//! n-grams. Inherits the metric property of Jaccard distance on sets, so
//! it is strong. Useful for catching intra-word typos that word-token
//! measures miss entirely.

use crate::tokenize::char_ngrams;
use crate::traits::StringMetric;
use std::collections::HashSet;

/// Jaccard distance over character n-gram sets (default: bigrams).
#[derive(Debug, Clone, Copy)]
pub struct NGram {
    /// n-gram width; must be positive.
    pub n: usize,
}

impl Default for NGram {
    fn default() -> Self {
        NGram { n: 2 }
    }
}

impl NGram {
    /// Build with an explicit n-gram width.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n-gram size must be positive");
        NGram { n }
    }

    /// Jaccard similarity of the n-gram sets.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let sa: HashSet<String> = char_ngrams(a, self.n).into_iter().collect();
        let sb: HashSet<String> = char_ngrams(b, self.n).into_iter().collect();
        if sa.is_empty() && sb.is_empty() {
            return 1.0;
        }
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        inter / union
    }
}

impl StringMetric for NGram {
    fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - self.similarity(a, b)
    }

    fn is_strong(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "ngram-jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    #[test]
    fn identical_and_disjoint() {
        let m = NGram::default();
        assert_eq!(m.distance("ferrari", "ferrari"), 0.0);
        assert_eq!(m.distance("ab", "cd"), 1.0);
    }

    #[test]
    fn typos_stay_close() {
        let m = NGram::default();
        assert!(m.distance("ferrari", "ferarri") < 0.5);
        assert!(m.distance("ferrari", "ciancarini") > 0.5);
    }

    #[test]
    fn case_is_normalized() {
        let m = NGram::default();
        assert_eq!(m.distance("SIGMOD", "sigmod"), 0.0);
    }

    #[test]
    fn axioms_and_triangle() {
        let m = NGram::default();
        axioms::assert_axioms(&m);
        axioms::assert_triangle(&m);
        axioms::assert_within_consistent(&m);
        let tri = NGram::new(3);
        axioms::assert_axioms(&tri);
        axioms::assert_triangle(&tri);
    }

    #[test]
    #[should_panic(expected = "n-gram size must be positive")]
    fn zero_width_panics() {
        NGram::new(0);
    }
}
