//! Jaro and Jaro-Winkler metrics, expressed as distances (`1 − similarity`)
//! so they fit the paper's distance convention. Cited as the "Jaro
//! metric" \[9\] in Definition 7's discussion. Not strong (the triangle
//! inequality fails), so they never enable the Lemma-1 fast path.

use crate::traits::StringMetric;

/// Jaro distance: `1 − jaro_similarity`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaro;

impl Jaro {
    /// Jaro similarity in `[0, 1]`.
    pub fn similarity(a: &str, b: &str) -> f64 {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let window = (a.len().max(b.len()) / 2).saturating_sub(1);
        let mut b_matched = vec![false; b.len()];
        let mut a_matches: Vec<char> = Vec::new();
        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if !b_matched[j] && b[j] == ca {
                    b_matched[j] = true;
                    a_matches.push(ca);
                    break;
                }
            }
        }
        let m = a_matches.len();
        if m == 0 {
            return 0.0;
        }
        // transpositions: compare match sequences
        let b_matches: Vec<char> = b
            .iter()
            .zip(b_matched.iter())
            .filter(|(_, &mt)| mt)
            .map(|(&c, _)| c)
            .collect();
        let t = a_matches
            .iter()
            .zip(b_matches.iter())
            .filter(|(x, y)| x != y)
            .count() as f64
            / 2.0;
        let m = m as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
    }
}

impl StringMetric for Jaro {
    fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - Self::similarity(a, b)
    }

    fn name(&self) -> &str {
        "jaro"
    }
}

/// Jaro-Winkler distance: boosts the Jaro similarity for strings sharing a
/// common prefix (up to 4 chars) with scaling factor `p` (default 0.1).
#[derive(Debug, Clone, Copy)]
pub struct JaroWinkler {
    /// Prefix scaling factor, conventionally `0.1` and at most `0.25`.
    pub prefix_scale: f64,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        JaroWinkler { prefix_scale: 0.1 }
    }
}

impl JaroWinkler {
    /// Jaro-Winkler similarity in `[0, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let jaro = Jaro::similarity(a, b);
        let prefix = a
            .chars()
            .zip(b.chars())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count() as f64;
        jaro + prefix * self.prefix_scale * (1.0 - jaro)
    }
}

impl StringMetric for JaroWinkler {
    fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - self.similarity(a, b)
    }

    fn name(&self) -> &str {
        "jaro-winkler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    #[test]
    fn identical_strings_are_similarity_one() {
        assert!((Jaro::similarity("martha", "martha") - 1.0).abs() < 1e-12);
        assert_eq!(Jaro.distance("x", "x"), 0.0);
    }

    #[test]
    fn textbook_values() {
        // classic examples from the record-linkage literature
        let s = Jaro::similarity("martha", "marhta");
        assert!((s - 0.944444).abs() < 1e-4, "martha/marhta = {s}");
        let s = Jaro::similarity("dixon", "dicksonx");
        assert!((s - 0.766667).abs() < 1e-4, "dixon/dicksonx = {s}");
        let jw = JaroWinkler::default().similarity("martha", "marhta");
        assert!((jw - 0.961111).abs() < 1e-4, "jw martha/marhta = {jw}");
    }

    #[test]
    fn disjoint_strings_have_distance_one() {
        assert_eq!(Jaro.distance("abc", "xyz"), 1.0);
        assert_eq!(Jaro.distance("", "abc"), 1.0);
    }

    #[test]
    fn axioms_hold_for_both() {
        axioms::assert_axioms(&Jaro);
        axioms::assert_axioms(&JaroWinkler::default());
        axioms::assert_within_consistent(&Jaro);
    }

    #[test]
    fn winkler_boosts_shared_prefixes() {
        let j = Jaro::similarity("prefixed", "prefixes");
        let jw = JaroWinkler::default().similarity("prefixed", "prefixes");
        assert!(jw > j);
        // but never exceeds 1
        assert!(jw <= 1.0);
    }

    #[test]
    fn name_variants_are_close() {
        let d = Jaro.distance("Jeffrey D. Ullman", "Jeffrey Ullman");
        assert!(d < 0.15, "got {d}");
    }
}
