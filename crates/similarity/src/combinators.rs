//! Metric combinators: scaling, capping, weighted combination and
//! minimum-of, used to tune measures to the paper's ε scale (ε ∈ {2, 3}
//! assumes edit-distance-like magnitudes).

use crate::traits::StringMetric;

/// Multiply an inner metric's distances by a constant factor — e.g.
/// `Scaled::new(Jaro, 10.0)` makes a `[0,1]` metric comparable to edit
/// distances at the paper's thresholds.
#[derive(Debug, Clone)]
pub struct Scaled<M> {
    inner: M,
    factor: f64,
    name: String,
}

impl<M: StringMetric> Scaled<M> {
    /// Build with a positive factor.
    pub fn new(inner: M, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let name = format!("{}x{}", inner.name(), factor);
        Scaled {
            inner,
            factor,
            name,
        }
    }
}

impl<M: StringMetric> StringMetric for Scaled<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        self.inner.distance(a, b) * self.factor
    }

    fn is_strong(&self) -> bool {
        // positive scaling preserves the triangle inequality
        self.inner.is_strong()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        self.inner.within(a, b, epsilon / self.factor)
    }

    fn length_lower_bound(&self) -> Option<f64> {
        // d' = f·d ≥ f·c·|Δlen|
        self.inner.length_lower_bound().map(|c| c * self.factor)
    }

    fn bigram_edits_bound(&self) -> Option<f64> {
        // shared ≥ max−1−B·d = max−1−(B/f)·d'
        self.inner.bigram_edits_bound().map(|b| b / self.factor)
    }
}

/// Weighted sum of two metrics. A sum of metrics is a metric, so strength
/// is preserved when both inputs are strong.
#[derive(Debug, Clone)]
pub struct WeightedSum<A, B> {
    a: A,
    b: B,
    wa: f64,
    wb: f64,
    name: String,
}

impl<A: StringMetric, B: StringMetric> WeightedSum<A, B> {
    /// Build with non-negative weights (not both zero).
    pub fn new(a: A, wa: f64, b: B, wb: f64) -> Self {
        assert!(wa >= 0.0 && wb >= 0.0 && wa + wb > 0.0, "bad weights");
        let name = format!("{}*{}+{}*{}", wa, a.name(), wb, b.name());
        WeightedSum { a, b, wa, wb, name }
    }
}

impl<A: StringMetric, B: StringMetric> StringMetric for WeightedSum<A, B> {
    fn distance(&self, x: &str, y: &str) -> f64 {
        self.wa * self.a.distance(x, y) + self.wb * self.b.distance(x, y)
    }

    fn is_strong(&self) -> bool {
        self.a.is_strong() && self.b.is_strong()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Minimum of two metrics — "similar under either notion". The minimum of
/// two metrics is generally *not* a metric, so this is never strong.
#[derive(Debug, Clone)]
pub struct MinOf<A, B> {
    a: A,
    b: B,
    name: String,
}

impl<A: StringMetric, B: StringMetric> MinOf<A, B> {
    /// Combine two metrics by taking the smaller distance.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("min({},{})", a.name(), b.name());
        MinOf { a, b, name }
    }
}

impl<A: StringMetric, B: StringMetric> StringMetric for MinOf<A, B> {
    fn distance(&self, x: &str, y: &str) -> f64 {
        self.a.distance(x, y).min(self.b.distance(x, y))
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn within(&self, x: &str, y: &str, epsilon: f64) -> bool {
        self.a.within(x, y, epsilon) || self.b.within(x, y, epsilon)
    }
}

/// Gate an inner metric to multi-word strings: two *different* strings
/// are only eligible for similarity when **both** contain whitespace.
/// Single-word terms (schema tags like `title`/`article`, venue acronyms)
/// are pushed out of reach by adding a large offset.
///
/// This is a domain rule in the paper's Section-4.3 sense: bibliographic
/// *content* terms (names, titles, venue names) are multi-word, while
/// short single-word schema terms can sit 2–3 edits apart without being
/// remotely related — Levenshtein("article", "title") is 3, and merging
/// them would make the hierarchy similarity inconsistent.
#[derive(Debug, Clone)]
pub struct MultiWordGate<M> {
    inner: M,
    offset: f64,
    name: String,
}

impl<M: StringMetric> MultiWordGate<M> {
    /// Gate `inner` with the default offset of 1000.
    pub fn new(inner: M) -> Self {
        let name = format!("multiword({})", inner.name());
        MultiWordGate {
            inner,
            offset: 1000.0,
            name,
        }
    }
}

fn multi_word(s: &str) -> bool {
    s.trim().contains(char::is_whitespace)
}

impl<M: StringMetric> StringMetric for MultiWordGate<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 0.0;
        }
        if multi_word(a) && multi_word(b) {
            self.inner.distance(a, b)
        } else {
            self.offset + self.inner.distance(a, b)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn within(&self, a: &str, b: &str, epsilon: f64) -> bool {
        if a == b {
            return epsilon >= 0.0;
        }
        if multi_word(a) && multi_word(b) {
            self.inner.within(a, b, epsilon)
        } else {
            epsilon >= self.offset && self.inner.within(a, b, epsilon - self.offset)
        }
    }

    fn length_lower_bound(&self) -> Option<f64> {
        // the gate only ever adds to the inner distance, so any lower
        // bound on the inner metric still holds
        self.inner.length_lower_bound()
    }

    fn bigram_edits_bound(&self) -> Option<f64> {
        // d_gate ≥ d_inner, so the inner q-gram filter stays admissible
        self.inner.bigram_edits_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro::Jaro;
    use crate::levenshtein::Levenshtein;
    use crate::rules::NameRules;
    use crate::traits::axioms;

    #[test]
    fn scaled_scales_and_keeps_strength() {
        let m = Scaled::new(Levenshtein, 2.0);
        assert_eq!(m.distance("abc", "abd"), 2.0);
        assert!(m.is_strong());
        axioms::assert_axioms(&m);
        axioms::assert_triangle(&m);
        axioms::assert_within_consistent(&m);
    }

    #[test]
    fn scaled_jaro_reaches_edit_scale() {
        let m = Scaled::new(Jaro, 10.0);
        let d = m.distance("Jeffrey D. Ullman", "Jeffrey Ullman");
        assert!(d < 3.0, "scaled jaro {d} should clear the paper's eps=3");
        assert!(!m.is_strong());
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_scale_panics() {
        Scaled::new(Levenshtein, 0.0);
    }

    #[test]
    fn weighted_sum_combines() {
        let m = WeightedSum::new(Levenshtein, 0.5, Levenshtein, 0.5);
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert!(m.is_strong());
        axioms::assert_axioms(&m);
    }

    #[test]
    fn weighted_sum_with_non_strong_is_non_strong() {
        let m = WeightedSum::new(Levenshtein, 0.5, Jaro, 0.5);
        assert!(!m.is_strong());
    }

    #[test]
    fn multiword_gate_blocks_single_word_merges() {
        let m = MultiWordGate::new(Levenshtein);
        // the pair that motivated the gate
        assert!(m.distance("article", "title") > 100.0);
        assert!(!m.within("article", "title", 3.0));
        // multi-word pairs pass through
        assert_eq!(m.distance("Jeff Ullman", "Jeff Ullmann"), 1.0);
        assert!(m.within("Jeff Ullman", "Jeff Ullmann", 2.0));
        // identity is free regardless of word count
        assert_eq!(m.distance("title", "title"), 0.0);
        assert!(m.within("title", "title", 0.0));
        // mixed pairs are gated too
        assert!(!m.within("VLDB", "Very Large DB", 3.0));
        axioms::assert_axioms(&m);
        axioms::assert_within_consistent(&m);
    }

    #[test]
    fn min_of_takes_smaller_and_is_never_strong() {
        let m = MinOf::new(NameRules::default(), Levenshtein);
        // NameRules gives 0.5 for initials; Levenshtein gives more
        assert_eq!(m.distance("J. Ullman", "Jeff Ullman"), 0.5);
        assert!(!m.is_strong());
        axioms::assert_axioms(&m);
        axioms::assert_within_consistent(&m);
    }
}
