//! Monge-Elkan distance \[12\]: a token-level hybrid that scores each token
//! of one string against its best-matching token of the other under an
//! inner character-level measure, then averages.
//!
//! The classical formulation is asymmetric; Definition 7 requires
//! symmetry, so we symmetrize by averaging both directions. Not strong.

use crate::traits::StringMetric;
use crate::tokenize::words;

/// Symmetrized Monge-Elkan distance with a pluggable inner metric.
///
/// The inner metric's distances are converted to similarities via
/// `1 / (1 + d)` so unbounded inner metrics (e.g. Levenshtein) compose
/// safely; the result is `1 − avg-best-similarity`, in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct MongeElkan<M> {
    inner: M,
}

impl<M: StringMetric> MongeElkan<M> {
    /// Build with an inner character-level metric.
    pub fn new(inner: M) -> Self {
        MongeElkan { inner }
    }

    fn directed_similarity(&self, from: &[String], to: &[String]) -> f64 {
        if from.is_empty() {
            return if to.is_empty() { 1.0 } else { 0.0 };
        }
        if to.is_empty() {
            return 0.0;
        }
        let total: f64 = from
            .iter()
            .map(|t| {
                to.iter()
                    .map(|u| 1.0 / (1.0 + self.inner.distance(t, u)))
                    .fold(0.0f64, f64::max)
            })
            .sum();
        total / from.len() as f64
    }

    /// Symmetrized Monge-Elkan similarity in `[0, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = words(a);
        let tb = words(b);
        0.5 * (self.directed_similarity(&ta, &tb) + self.directed_similarity(&tb, &ta))
    }
}

impl Default for MongeElkan<crate::levenshtein::Levenshtein> {
    fn default() -> Self {
        MongeElkan::new(crate::levenshtein::Levenshtein)
    }
}

impl<M: StringMetric> StringMetric for MongeElkan<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        (1.0 - self.similarity(a, b)).max(0.0)
    }

    fn name(&self) -> &str {
        "monge-elkan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    fn me() -> MongeElkan<crate::levenshtein::Levenshtein> {
        MongeElkan::default()
    }

    #[test]
    fn identical_strings_zero() {
        assert!(me().distance("Jeff Ullman", "Jeff Ullman") < 1e-12);
    }

    #[test]
    fn token_reordering_is_free() {
        assert!(me().distance("Ullman Jeff", "Jeff Ullman") < 1e-12);
    }

    #[test]
    fn shared_surname_dominates() {
        let close = me().distance("J Ullman", "Jeff Ullman");
        let far = me().distance("J Ullman", "E Codd");
        assert!(close < far, "{close} !< {far}");
        // sim = ((1/(1+3)) + 1) / 2 = 0.625 → distance 0.375
        assert!((close - 0.375).abs() < 1e-9, "got {close}");
    }

    #[test]
    fn empty_cases() {
        assert_eq!(me().distance("", ""), 0.0);
        assert_eq!(me().distance("", "abc"), 1.0);
    }

    #[test]
    fn axioms_hold_after_symmetrization() {
        let m = me();
        axioms::assert_axioms(&m);
        axioms::assert_within_consistent(&m);
    }

    #[test]
    fn bounded_in_unit_interval() {
        for &a in axioms::SAMPLES {
            for &b in axioms::SAMPLES {
                let d = me().distance(a, b);
                assert!((0.0..=1.0).contains(&d), "{a:?},{b:?} -> {d}");
            }
        }
    }
}
