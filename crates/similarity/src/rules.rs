//! Rule-based name similarity.
//!
//! Section 4.3 of the paper: "In certain domains, rule based methods can
//! also be used to specify similarity between proper nouns (in our
//! SIGMOD/DBLP application for example, we could write a set of rules
//! describing when two names are considered similar)."
//!
//! [`NameRules`] encodes the bibliographic rules the running examples rely
//! on: matching surnames with compatible given names (full vs initial),
//! middle names that may be dropped, and a fallback to edit distance for
//! typo tolerance. Output is distance-like: `0.0` exact, `0.5` initials
//! match, `1.0` initials compatible with a dropped middle name, and
//! `3 + lev` when no rule fires (so it never collides with rule hits at
//! the thresholds the paper uses, ε ∈ {2, 3}).

use crate::levenshtein::Levenshtein;
use crate::tokenize::words;
use crate::traits::StringMetric;

/// Rule-based similarity over person names, with configurable costs so a
/// deployment can decide which rules fire at which ε (e.g. cost 3 on
/// initials puts "J. Ullman" ~ "Jeff Ullman" exactly at the paper's
/// ε = 3 threshold, while a dropped middle name is caught at ε = 2).
#[derive(Debug, Clone, Copy)]
pub struct NameRules {
    /// Distance when surnames match and given names are initial-forms of
    /// each other.
    pub initials_cost: f64,
    /// Distance when surnames match and a middle name was dropped.
    pub dropped_middle_cost: f64,
    /// Offset added to the Levenshtein fallback when no rule fires.
    pub fallback_offset: f64,
}

impl Default for NameRules {
    fn default() -> Self {
        NameRules {
            initials_cost: 0.5,
            dropped_middle_cost: 1.0,
            fallback_offset: 3.0,
        }
    }
}

impl NameRules {
    /// Build with explicit costs.
    pub fn with_costs(initials: f64, dropped_middle: f64, fallback_offset: f64) -> Self {
        NameRules {
            initials_cost: initials,
            dropped_middle_cost: dropped_middle,
            fallback_offset,
        }
    }
}

/// How two name-token lists relate under the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NameMatch {
    Exact,
    /// Same surname, every shared given-name position compatible
    /// (initial vs full form), same number of given tokens.
    Initials,
    /// Same surname, given names compatible after dropping middle names.
    DroppedMiddle,
    None,
}

/// Whether `a` is an initial form of `b` or vice versa (or equal).
fn token_compatible(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    short.chars().count() == 1 && long.starts_with(short)
}

fn classify(a: &str, b: &str) -> NameMatch {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() || tb.is_empty() {
        return if ta == tb { NameMatch::Exact } else { NameMatch::None };
    }
    if ta == tb {
        return NameMatch::Exact;
    }
    // surname = final token
    if ta.last() != tb.last() {
        return NameMatch::None;
    }
    let ga = &ta[..ta.len() - 1];
    let gb = &tb[..tb.len() - 1];
    if ga.len() == gb.len() {
        if ga
            .iter()
            .zip(gb.iter())
            .all(|(x, y)| token_compatible(x, y))
        {
            return NameMatch::Initials;
        }
        return NameMatch::None;
    }
    // dropped middle names: the shorter given-name list must be a
    // compatible subsequence of the longer one starting at the first token
    let (short, long) = if ga.len() < gb.len() { (ga, gb) } else { (gb, ga) };
    if short.is_empty() {
        // e.g. "Ullman" vs "Jeff Ullman" — surname-only is too weak a rule
        return NameMatch::None;
    }
    if !token_compatible(&short[0], &long[0]) {
        return NameMatch::None;
    }
    let mut li = 1;
    for s in &short[1..] {
        let mut found = false;
        while li < long.len() {
            if token_compatible(s, &long[li]) {
                found = true;
                li += 1;
                break;
            }
            li += 1;
        }
        if !found {
            return NameMatch::None;
        }
    }
    NameMatch::DroppedMiddle
}

impl StringMetric for NameRules {
    fn distance(&self, a: &str, b: &str) -> f64 {
        // symmetrize via classify being symmetric by construction
        match classify(a, b) {
            NameMatch::Exact => 0.0,
            NameMatch::Initials => self.initials_cost,
            NameMatch::DroppedMiddle => self.dropped_middle_cost,
            NameMatch::None => self.fallback_offset + Levenshtein::raw(a, b) as f64,
        }
    }

    fn name(&self) -> &str {
        "name-rules"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    #[test]
    fn exact_names_match() {
        assert_eq!(NameRules::default().distance("Jeff Ullman", "Jeff Ullman"), 0.0);
        // case-insensitive via tokenization
        assert_eq!(NameRules::default().distance("jeff ullman", "Jeff Ullman"), 0.0);
    }

    #[test]
    fn initial_forms_are_close() {
        assert_eq!(NameRules::default().distance("J. Ullman", "Jeff Ullman"), 0.5);
        assert_eq!(NameRules::default().distance("E. Bertino", "Elisa Bertino"), 0.5);
    }

    #[test]
    fn dropped_middle_names() {
        assert_eq!(
            NameRules::default().distance("Jeffrey Ullman", "Jeffrey D. Ullman"),
            1.0
        );
        assert_eq!(NameRules::default().distance("J. Ullman", "Jeffrey D. Ullman"), 1.0);
    }

    #[test]
    fn different_surnames_fall_back_to_edit_distance() {
        let d = NameRules::default().distance("Marco Ferrari", "Mauro Ferrari");
        // same surname but 'marco'/'mauro' are not initial-compatible
        assert!(d >= 3.0);
        let far = NameRules::default().distance("Jeff Ullman", "Edgar Codd");
        assert!(far > d);
    }

    #[test]
    fn surname_only_is_not_enough() {
        assert!(NameRules::default().distance("Ullman", "Jeff Ullman") >= 3.0);
    }

    #[test]
    fn incompatible_first_names_do_not_match() {
        assert!(NameRules::default().distance("Bob Smith", "Alice Smith") >= 3.0);
    }

    #[test]
    fn axioms_hold() {
        axioms::assert_axioms(&NameRules::default());
        axioms::assert_within_consistent(&NameRules::default());
    }

    #[test]
    fn classification_is_symmetric() {
        let pairs = [
            ("J. Ullman", "Jeffrey D. Ullman"),
            ("Jeff Ullman", "J. Ullman"),
            ("GianLuigi Ferrari", "Gian Luigi Ferrari"),
        ];
        for (a, b) in pairs {
            assert_eq!(NameRules::default().distance(a, b), NameRules::default().distance(b, a));
        }
    }
}
