//! A memoizing metric wrapper.
//!
//! The SEA algorithm evaluates `d` on all pairs of hierarchy terms and the
//! Query Executor re-evaluates `~` conditions against the same term pool;
//! [`CachedMetric`] memoizes distances under a canonicalized (sorted) key
//! so symmetric lookups share one entry.
//!
//! ## Sharding
//!
//! The map is split into up to [`CachedMetric::MAX_SHARDS`] stripes, each
//! behind its own `std::sync::RwLock`, with the stripe chosen by hashing
//! the canonical key. Parallel query workers (the `toss-pool` scan path
//! re-evaluates `~` probes concurrently) then contend only when they touch
//! the same stripe instead of serializing on one global lock. Small caches
//! (capacity below [`CachedMetric::SHARD_THRESHOLD`]) keep a single stripe
//! so eviction order stays exactly global-FIFO. A poisoned lock — a panic
//! mid-insert — falls back to the poisoned guard's data, which is always a
//! consistent map.
//!
//! The cache is **bounded**: at most [`CachedMetric::DEFAULT_CAPACITY`]
//! pairs by default (configurable via [`CachedMetric::with_capacity`],
//! removable via [`CachedMetric::unbounded`]). Capacity is divided evenly
//! across stripes (`capacity / shards` per stripe, so the total never
//! exceeds the configured bound). When a stripe fills, its oldest inserted
//! entry is evicted (FIFO per stripe) — the SEA pair sweep and probe
//! expansion both touch pairs in waves, so insertion age approximates
//! recency well enough without per-hit bookkeeping. An adversarial query
//! stream therefore cannot grow the cache without bound.
//!
//! Every lookup is counted as a **hit** (served from the map) or a
//! **miss** (computed through the inner metric): [`CachedMetric::hits`],
//! [`CachedMetric::misses`] and [`CachedMetric::hit_rate`] read the
//! per-instance tallies, and the same events feed the global
//! `similarity.cache.hits` / `similarity.cache.misses` counters of
//! `toss_obs::metrics`, so `toss stats` shows cache effectiveness
//! alongside the query-phase histograms. Evictions are tallied per shard
//! ([`CachedMetric::shard_evictions`]), in the instance-wide
//! [`CachedMetric::evictions`] sum, and in the global
//! `similarity.cache.evictions` counter.

use crate::traits::StringMetric;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use toss_obs::metrics::Counter;

fn global_hits() -> &'static Counter {
    static HITS: OnceLock<Arc<Counter>> = OnceLock::new();
    HITS.get_or_init(|| toss_obs::metrics::counter("similarity.cache.hits"))
}

fn global_misses() -> &'static Counter {
    static MISSES: OnceLock<Arc<Counter>> = OnceLock::new();
    MISSES.get_or_init(|| toss_obs::metrics::counter("similarity.cache.misses"))
}

fn global_evictions() -> &'static Counter {
    static EVICTIONS: OnceLock<Arc<Counter>> = OnceLock::new();
    EVICTIONS.get_or_init(|| toss_obs::metrics::counter("similarity.cache.evictions"))
}

/// Map plus FIFO insertion order, updated together under one lock.
struct CacheState {
    map: HashMap<(String, String), f64>,
    order: VecDeque<(String, String)>,
}

/// One stripe of the cache: its state, capacity slice and eviction tally.
struct Shard {
    state: RwLock<CacheState>,
    /// This stripe's slice of the total capacity (`None` = unbounded).
    capacity: Option<usize>,
    evictions: AtomicU64,
}

impl Shard {
    fn new(capacity: Option<usize>) -> Self {
        Shard {
            state: RwLock::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
            evictions: AtomicU64::new(0),
        }
    }
}

/// A wrapper that memoizes an inner metric's distances.
pub struct CachedMetric<M> {
    inner: M,
    shards: Vec<Shard>,
    hasher: RandomState,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: StringMetric> CachedMetric<M> {
    /// The default bound on memoized pairs (~1M entries; at two short
    /// strings and an `f64` per entry this is tens of MB, not gigabytes).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Stripe count for large and unbounded caches.
    pub const MAX_SHARDS: usize = 16;

    /// Bounded caches smaller than this keep a single stripe, preserving
    /// exact global-FIFO eviction (per-stripe FIFO is meaningless when a
    /// stripe holds a handful of entries).
    pub const SHARD_THRESHOLD: usize = 1024;

    /// Wrap a metric with an empty cache bounded at
    /// [`CachedMetric::DEFAULT_CAPACITY`] pairs.
    pub fn new(inner: M) -> Self {
        Self::build(inner, Some(Self::DEFAULT_CAPACITY))
    }

    /// Wrap a metric with an explicit capacity (0 disables memoization:
    /// every lookup runs the inner metric).
    pub fn with_capacity(inner: M, capacity: usize) -> Self {
        Self::build(inner, Some(capacity))
    }

    /// Wrap a metric with no eviction at all (the pre-bounded behaviour;
    /// only safe when the key universe is known to be small).
    pub fn unbounded(inner: M) -> Self {
        Self::build(inner, None)
    }

    fn build(inner: M, capacity: Option<usize>) -> Self {
        let shard_count = match capacity {
            Some(cap) if cap < Self::SHARD_THRESHOLD => 1,
            _ => Self::MAX_SHARDS,
        };
        let shards = (0..shard_count)
            .map(|_| Shard::new(capacity.map(|cap| cap / shard_count)))
            .collect();
        CachedMetric {
            inner,
            shards,
            hasher: RandomState::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of lock stripes the cache is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of memoized pairs across all stripes.
    pub fn cached_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the inner metric.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity, summed over stripes.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-stripe eviction tallies (index = stripe number).
    pub fn shard_evictions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .collect()
    }

    /// Fraction of lookups served from the cache (0.0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Drop all memoized entries (hit/miss tallies are kept: they count
    /// lookups, not contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.write().unwrap_or_else(|e| e.into_inner());
            state.map.clear();
            state.order.clear();
        }
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    fn shard_for(&self, key: &(String, String)) -> &Shard {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        &self.shards[(self.hasher.hash_one(key) as usize) % self.shards.len()]
    }
}

impl<M: StringMetric> StringMetric for CachedMetric<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        let key = Self::key(a, b);
        let shard = self.shard_for(&key);
        if let Some(&d) = shard
            .state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            global_hits().inc();
            return d;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        global_misses().inc();
        let d = self.inner.distance(a, b);
        if shard.capacity == Some(0) {
            return d;
        }
        let mut state = shard.state.write().unwrap_or_else(|e| e.into_inner());
        // another thread may have inserted the same key while we computed
        if state.map.insert(key.clone(), d).is_none() {
            state.order.push_back(key);
            if let Some(cap) = shard.capacity {
                while state.map.len() > cap {
                    let Some(oldest) = state.order.pop_front() else {
                        break;
                    };
                    state.map.remove(&oldest);
                    shard.evictions.fetch_add(1, Ordering::Relaxed);
                    global_evictions().inc();
                }
            }
        }
        d
    }

    fn is_strong(&self) -> bool {
        self.inner.is_strong()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn length_lower_bound(&self) -> Option<f64> {
        self.inner.length_lower_bound()
    }

    fn bigram_edits_bound(&self) -> Option<f64> {
        self.inner.bigram_edits_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::Levenshtein;
    use crate::traits::axioms;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting<'a> {
        calls: &'a AtomicUsize,
    }

    impl StringMetric for Counting<'_> {
        fn distance(&self, a: &str, b: &str) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Levenshtein.distance(a, b)
        }
        fn is_strong(&self) -> bool {
            true
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn caches_symmetric_pairs_once() {
        let calls = AtomicUsize::new(0);
        let m = CachedMetric::new(Counting { calls: &calls });
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(m.distance("abd", "abc"), 1.0);
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(m.cached_pairs(), 1);
    }

    #[test]
    fn repeated_pair_is_a_hit() {
        let m = CachedMetric::new(Levenshtein);
        let g_hits = m.hits();
        assert_eq!(m.hits(), 0);
        assert_eq!(m.hit_rate(), 0.0);
        m.distance("alpha", "beta"); // miss: first sighting
        assert_eq!((m.hits(), m.misses()), (0, 1));
        m.distance("alpha", "beta"); // hit
        m.distance("beta", "alpha"); // hit (symmetric key)
        assert_eq!((m.hits(), m.misses()), (2, 1));
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        // the global registry saw the same events (≥, since tests share it)
        let snap = toss_obs::metrics::snapshot();
        assert!(snap.counter("similarity.cache.hits").unwrap_or(0) >= g_hits + 2);
        assert!(snap.counter("similarity.cache.misses").unwrap_or(0) >= 1);
    }

    #[test]
    fn clear_resets() {
        let calls = AtomicUsize::new(0);
        let m = CachedMetric::new(Counting { calls: &calls });
        m.distance("a", "b");
        m.clear();
        m.distance("a", "b");
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!((m.hits(), m.misses()), (0, 2));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let m = CachedMetric::with_capacity(Levenshtein, 2);
        assert_eq!(m.capacity(), Some(2));
        assert_eq!(m.shard_count(), 1, "small caches stay single-stripe");
        m.distance("a", "b");
        m.distance("c", "d");
        m.distance("e", "f"); // evicts (a, b)
        assert_eq!(m.cached_pairs(), 2);
        assert_eq!(m.evictions(), 1);
        m.distance("c", "d"); // still cached: a hit
        assert_eq!(m.hits(), 1);
        m.distance("a", "b"); // evicted: a miss again (and evicts (e, f))
        assert_eq!(m.misses(), 4);
        assert_eq!(m.evictions(), 2);
        // the global registry saw the evictions too
        let snap = toss_obs::metrics::snapshot();
        assert!(snap.counter("similarity.cache.evictions").unwrap_or(0) >= 2);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let calls = AtomicUsize::new(0);
        let m = CachedMetric::with_capacity(Counting { calls: &calls }, 0);
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(m.cached_pairs(), 0);
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn unbounded_never_evicts() {
        let m = CachedMetric::unbounded(Levenshtein);
        assert_eq!(m.capacity(), None);
        assert_eq!(m.shard_count(), CachedMetric::<Levenshtein>::MAX_SHARDS);
        for i in 0..100 {
            m.distance(&format!("left{i}"), &format!("right{i}"));
        }
        assert_eq!(m.cached_pairs(), 100);
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn large_caches_stripe_and_stay_within_capacity() {
        let cap = CachedMetric::<Levenshtein>::SHARD_THRESHOLD;
        let m = CachedMetric::with_capacity(Levenshtein, cap);
        assert_eq!(m.shard_count(), CachedMetric::<Levenshtein>::MAX_SHARDS);
        let inserted = cap + cap / 4;
        for i in 0..inserted {
            m.distance(&format!("key{i}"), &format!("val{i}"));
        }
        assert!(
            m.cached_pairs() <= cap,
            "striped capacity slices must bound the total: {} > {cap}",
            m.cached_pairs()
        );
        assert!(
            m.evictions() >= (inserted - cap) as u64,
            "inserting past capacity must evict at least the overflow"
        );
    }

    #[test]
    fn shard_eviction_tallies_sum_to_total() {
        let cap = CachedMetric::<Levenshtein>::SHARD_THRESHOLD;
        let m = CachedMetric::with_capacity(Levenshtein, cap);
        let inserted = 2 * cap;
        for i in 0..inserted {
            m.distance(&format!("a{i}"), &format!("b{i}"));
        }
        let per_shard = m.shard_evictions();
        assert_eq!(per_shard.len(), m.shard_count());
        assert_eq!(per_shard.iter().sum::<u64>(), m.evictions());
        // every insert past a full stripe evicts exactly one entry
        assert_eq!(
            m.evictions(),
            inserted as u64 - m.cached_pairs() as u64,
            "per-shard eviction accounting must balance inserts"
        );
        assert!(
            per_shard.iter().filter(|&&e| e > 0).count() > 1,
            "evictions should occur across multiple stripes"
        );
    }

    #[test]
    fn striped_cache_is_consistent_under_concurrent_lookups() {
        let m = std::sync::Arc::new(CachedMetric::with_capacity(
            Levenshtein,
            CachedMetric::<Levenshtein>::SHARD_THRESHOLD,
        ));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        // overlapping key ranges force cross-thread races
                        let d = m.distance(&format!("k{}", (t * 250 + i) % 900), "probe");
                        assert!(d.is_finite());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(m.cached_pairs() <= CachedMetric::<Levenshtein>::SHARD_THRESHOLD);
        assert_eq!(m.hits() + m.misses(), 2000);
        assert_eq!(m.shard_evictions().iter().sum::<u64>(), m.evictions());
    }

    #[test]
    fn preserves_inner_semantics() {
        let m = CachedMetric::new(Levenshtein);
        axioms::assert_axioms(&m);
        assert!(m.is_strong());
        assert_eq!(m.name(), "levenshtein");
    }
}
