//! A memoizing metric wrapper.
//!
//! The SEA algorithm evaluates `d` on all pairs of hierarchy terms and the
//! Query Executor re-evaluates `~` conditions against the same term pool;
//! [`CachedMetric`] memoizes distances under a canonicalized (sorted) key
//! so symmetric lookups share one entry. Thread-safe via `std::sync::RwLock`
//! (a poisoned lock — a panic mid-insert — falls back to the poisoned
//! guard's data, which is always a consistent map).

use crate::traits::StringMetric;
use std::collections::HashMap;
use std::sync::RwLock;

/// A wrapper that memoizes an inner metric's distances.
pub struct CachedMetric<M> {
    inner: M,
    cache: RwLock<HashMap<(String, String), f64>>,
}

impl<M: StringMetric> CachedMetric<M> {
    /// Wrap a metric with an empty cache.
    pub fn new(inner: M) -> Self {
        CachedMetric {
            inner,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Number of memoized pairs.
    pub fn cached_pairs(&self) -> usize {
        self.cache.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Drop all memoized entries.
    pub fn clear(&self) {
        self.cache.write().unwrap_or_else(|e| e.into_inner()).clear();
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }
}

impl<M: StringMetric> StringMetric for CachedMetric<M> {
    fn distance(&self, a: &str, b: &str) -> f64 {
        let key = Self::key(a, b);
        if let Some(&d) = self
            .cache
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return d;
        }
        let d = self.inner.distance(a, b);
        self.cache
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, d);
        d
    }

    fn is_strong(&self) -> bool {
        self.inner.is_strong()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::Levenshtein;
    use crate::traits::axioms;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting<'a> {
        calls: &'a AtomicUsize,
    }

    impl StringMetric for Counting<'_> {
        fn distance(&self, a: &str, b: &str) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Levenshtein.distance(a, b)
        }
        fn is_strong(&self) -> bool {
            true
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn caches_symmetric_pairs_once() {
        let calls = AtomicUsize::new(0);
        let m = CachedMetric::new(Counting { calls: &calls });
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(m.distance("abd", "abc"), 1.0);
        assert_eq!(m.distance("abc", "abd"), 1.0);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(m.cached_pairs(), 1);
    }

    #[test]
    fn clear_resets() {
        let calls = AtomicUsize::new(0);
        let m = CachedMetric::new(Counting { calls: &calls });
        m.distance("a", "b");
        m.clear();
        m.distance("a", "b");
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn preserves_inner_semantics() {
        let m = CachedMetric::new(Levenshtein);
        axioms::assert_axioms(&m);
        assert!(m.is_strong());
        assert_eq!(m.name(), "levenshtein");
    }
}
