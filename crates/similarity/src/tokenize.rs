//! Tokenization shared by the token-based measures.

/// Split a string into lowercase word tokens (alphanumeric runs).
pub fn words(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character n-grams of a string (lowercased, spaces preserved); strings
/// shorter than `n` yield a single gram equal to the lowercased string.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_splits_on_punctuation_and_lowercases() {
        assert_eq!(words("J. Ullman"), vec!["j", "ullman"]);
        assert_eq!(
            words("Storing & Querying XML!"),
            vec!["storing", "querying", "xml"]
        );
        assert_eq!(words(""), Vec::<String>::new());
        assert_eq!(words("---"), Vec::<String>::new());
    }

    #[test]
    fn words_handles_unicode() {
        assert_eq!(words("Grüße Łukasz"), vec!["grüße", "łukasz"]);
    }

    #[test]
    fn ngrams_basic() {
        assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert_eq!(char_ngrams("", 2), Vec::<String>::new());
        assert_eq!(char_ngrams("ABC", 3), vec!["abc"]);
    }

    #[test]
    #[should_panic(expected = "n-gram size must be positive")]
    fn zero_gram_panics() {
        char_ngrams("abc", 0);
    }
}
