//! Smith-Waterman local-alignment similarity — part of the toolkit the
//! paper cites for string distances \[5\]. Local alignment finds the
//! best-matching *substring* pair, which tolerates prefixes/suffixes that
//! edit distance punishes ("Prof. Jeff Ullman" vs "Jeff Ullman").

use crate::traits::StringMetric;

/// Smith-Waterman distance: `1 − score / (match · min(|a|, |b|))`,
/// with affine-free unit scoring (configurable match/mismatch/gap).
#[derive(Debug, Clone, Copy)]
pub struct SmithWaterman {
    /// Score for a matching character (> 0).
    pub match_score: f64,
    /// Penalty for a mismatch (≤ 0).
    pub mismatch: f64,
    /// Penalty for a gap (≤ 0).
    pub gap: f64,
}

impl Default for SmithWaterman {
    fn default() -> Self {
        SmithWaterman {
            match_score: 2.0,
            mismatch: -1.0,
            gap: -1.0,
        }
    }
}

impl SmithWaterman {
    /// The raw best local-alignment score.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let mut prev = vec![0.0f64; b.len() + 1];
        let mut cur = vec![0.0f64; b.len() + 1];
        let mut best = 0.0f64;
        for &ca in &a {
            for (j, &cb) in b.iter().enumerate() {
                let diag = prev[j]
                    + if ca == cb {
                        self.match_score
                    } else {
                        self.mismatch
                    };
                let v = diag.max(prev[j + 1] + self.gap).max(cur[j] + self.gap).max(0.0);
                cur[j + 1] = v;
                best = best.max(v);
            }
            std::mem::swap(&mut prev, &mut cur);
            cur[0] = 0.0;
        }
        best
    }

    /// Similarity in `[0, 1]`: score normalized by the best possible
    /// score of the shorter string.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let la = a.chars().count();
        let lb = b.chars().count();
        if la == 0 && lb == 0 {
            return 1.0;
        }
        let denom = self.match_score * la.min(lb).max(1) as f64;
        (self.score(a, b) / denom).clamp(0.0, 1.0)
    }
}

impl StringMetric for SmithWaterman {
    fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - self.similarity(a, b)
    }

    fn name(&self) -> &str {
        "smith-waterman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::axioms;

    #[test]
    fn identical_strings_align_perfectly() {
        let m = SmithWaterman::default();
        assert_eq!(m.distance("ullman", "ullman"), 0.0);
        assert_eq!(m.score("abc", "abc"), 6.0);
    }

    #[test]
    fn substring_containment_is_free() {
        let m = SmithWaterman::default();
        // the shorter string aligns fully inside the longer
        assert_eq!(m.distance("Jeff Ullman", "Prof. Jeff Ullman"), 0.0);
        // edit distance would charge 6 for the prefix
        assert!(crate::Levenshtein.distance("Jeff Ullman", "Prof. Jeff Ullman") >= 6.0);
    }

    #[test]
    fn disjoint_alphabets_are_far() {
        let m = SmithWaterman::default();
        assert_eq!(m.distance("aaaa", "bbbb"), 1.0);
        assert_eq!(m.score("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn empty_cases() {
        let m = SmithWaterman::default();
        assert_eq!(m.distance("", ""), 0.0);
        assert_eq!(m.distance("", "x"), 1.0);
    }

    #[test]
    fn gaps_cost_less_than_mismatch_runs() {
        let m = SmithWaterman::default();
        // one gap in the middle
        let with_gap = m.similarity("abcdef", "abcxdef");
        assert!(with_gap > 0.7, "{with_gap}");
    }

    #[test]
    fn axioms_hold() {
        let m = SmithWaterman::default();
        axioms::assert_axioms(&m);
        axioms::assert_within_consistent(&m);
    }
}
