//! The wire protocol: length-prefixed JSON frames.
//!
//! One frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Requests and responses are single frames; a
//! connection carries any number of request/response pairs in order
//! (pipelining is allowed — the server answers in request order).
//!
//! The framing layer is where most network faults surface, so its error
//! type distinguishes the cases the server treats differently:
//!
//! * [`FrameError::Closed`] — EOF exactly on a frame boundary: the peer
//!   hung up cleanly between requests.
//! * [`FrameError::HalfFrame`] — EOF *inside* a frame: the peer dropped
//!   mid-request (or mid-response). Never answered, only counted.
//! * [`FrameError::Timeout`] — the per-frame read deadline expired
//!   (slow-loris clients trickle bytes forever; the overall deadline
//!   caps them regardless of per-`read` progress).
//! * [`FrameError::Oversize`] — the declared length exceeds the
//!   configured frame ceiling; the frame is rejected without buffering.
//!
//! Every response carries a `status` of `"ok"` or `"error"`; error
//! responses carry a stable machine-readable [`ErrorCode`] plus an
//! optional `retry_after_ms` hint that well-behaved clients (see
//! [`crate::client`]) honor before retrying.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};
use toss_core::{TossError, TossResult};
use toss_json::Value;

/// Default ceiling on a single frame's payload (1 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// A framing-layer failure.
#[derive(Debug)]
pub enum FrameError {
    /// EOF on a frame boundary: the peer closed cleanly.
    Closed,
    /// EOF inside a frame: the peer dropped mid-request/response.
    HalfFrame,
    /// The read deadline expired before the frame completed.
    Timeout,
    /// Declared payload length exceeds the configured ceiling.
    Oversize(usize),
    /// Any other I/O error (connection reset, …).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::HalfFrame => write!(f, "connection dropped mid-frame"),
            FrameError::Timeout => write!(f, "frame read timed out"),
            FrameError::Oversize(n) => write!(f, "frame of {n} bytes exceeds the limit"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Fill `buf` from `r`, tolerating short reads. Returns how many bytes
/// were read before EOF (== `buf.len()` on success). `deadline` bounds
/// the *whole* fill: per-`read` socket timeouts alone would let a
/// slow-loris peer trickle one byte per timeout window forever.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: Option<Instant>,
) -> Result<usize, FrameError> {
    let mut done = 0;
    while done < buf.len() {
        if let Some(at) = deadline {
            if Instant::now() >= at {
                return Err(FrameError::Timeout);
            }
        }
        match r.read(&mut buf[done..]) {
            Ok(0) => break,
            Ok(n) => done += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::Timeout)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(done)
}

/// Read one frame. `timeout` bounds the whole frame (prefix + payload)
/// from the first byte of the length prefix; `None` waits as long as the
/// underlying socket allows.
pub fn read_frame(
    r: &mut impl Read,
    max_bytes: usize,
    timeout: Option<Duration>,
) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // The deadline starts at the first read: an idle connection waiting
    // for its next request is not "slow", only a started-but-unfinished
    // frame is. The socket's own read timeout bounds idle waits.
    if read_full(r, &mut prefix[..1], None)? == 0 {
        return Err(FrameError::Closed);
    }
    let deadline = timeout.map(|t| Instant::now() + t);
    if read_full(r, &mut prefix[1..], deadline)? != 3 {
        return Err(FrameError::HalfFrame);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 || len > max_bytes {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, deadline)? != len {
        return Err(FrameError::HalfFrame);
    }
    Ok(payload)
}

/// Write one frame as a **single** `write_all` (length prefix and
/// payload in one buffer), so a response either reaches the kernel whole
/// or fails whole — the serving layer's "no partial frame" guarantee
/// rests on this plus never killing a socket between a request and its
/// response.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Stable machine-readable error codes carried by error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame/JSON/field, or a query shape the executor
    /// rejects (ill-typed, unsupported, unknown collection …).
    BadRequest,
    /// Admission control shed the request; retry after the hint.
    Overloaded,
    /// A hard budget or the deadline stopped the query.
    BudgetExceeded,
    /// The query was cancelled (drain past its deadline, or an explicit
    /// cancel).
    Cancelled,
    /// A panic during execution was isolated; the server is still up.
    Internal,
    /// The server is draining; retry against another replica or after
    /// the hint.
    ShuttingDown,
    /// The journal is unhealthy (ENOSPC, persistent I/O errors): the
    /// server is serving reads but rejecting writes until a probe
    /// write succeeds again. Retry after the hint.
    Degraded,
}

impl ErrorCode {
    /// The wire string (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BudgetExceeded => "budget_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Degraded => "degraded",
        }
    }

    /// Parse the wire string.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "budget_exceeded" => ErrorCode::BudgetExceeded,
            "cancelled" => ErrorCode::Cancelled,
            "internal" => ErrorCode::Internal,
            "shutting_down" => ErrorCode::ShuttingDown,
            "degraded" => ErrorCode::Degraded,
            _ => return None,
        })
    }

    /// Whether a client may retry the same request verbatim and expect
    /// it to succeed once load/drain passes. Degraded mode is retryable
    /// because the server self-heals (probe writes clear it) — and
    /// write retries are idempotent under their key, so a replayed
    /// mutation never double-applies.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::Degraded
        )
    }
}

/// Map an executor error to its wire code. Query-shape and store errors
/// are the client's fault (`bad_request`); the governance outcomes keep
/// their identity so clients can tell shed load (retry) from a blown
/// budget (don't).
pub fn error_code_of(e: &TossError) -> ErrorCode {
    match e {
        TossError::Overloaded(_) => ErrorCode::Overloaded,
        TossError::BudgetExceeded(_) => ErrorCode::BudgetExceeded,
        TossError::Cancelled => ErrorCode::Cancelled,
        TossError::Internal(_) => ErrorCode::Internal,
        _ => ErrorCode::BadRequest,
    }
}

/// One `tag=value` style predicate of a query request.
pub type Predicate = (String, String);

/// The budget class a request runs under; see [`crate::budget`].
pub use crate::budget::BudgetClass;

/// A parsed `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Collection to query.
    pub collection: String,
    /// Root tag of the selection pattern.
    pub root: String,
    /// `tag = value` equality predicates.
    pub eq: Vec<Predicate>,
    /// `tag contains value` predicates.
    pub contains: Vec<Predicate>,
    /// `tag ~ value` similarity predicates.
    pub similar: Vec<Predicate>,
    /// `tag below term` ontology predicates.
    pub below: Vec<Predicate>,
    /// Run the TAX baseline (no SEO expansion) instead of TOSS.
    pub tax: bool,
    /// Deadline override in milliseconds (clamped to the class ceiling;
    /// 0 or absent = the class default).
    pub timeout_ms: Option<u64>,
    /// Soft expansion-term override (clamped to the class ceiling).
    pub max_terms: Option<u64>,
    /// Soft documents-scanned override (clamped to the class ceiling).
    pub max_docs: Option<u64>,
    /// Cap on serialized result trees in the response (default 100).
    pub max_results: usize,
    /// Budget class.
    pub class: BudgetClass,
}

impl QueryRequest {
    /// A query on `collection` rooted at `root`: no predicates yet (add
    /// at least one before sending), default class, default result cap.
    pub fn new(collection: &str, root: &str) -> QueryRequest {
        QueryRequest {
            collection: collection.to_string(),
            root: root.to_string(),
            eq: Vec::new(),
            contains: Vec::new(),
            similar: Vec::new(),
            below: Vec::new(),
            tax: false,
            timeout_ms: None,
            max_terms: None,
            max_docs: None,
            max_results: 100,
            class: BudgetClass::default(),
        }
    }
}

/// One mutation carried by a write frame (the serve-level mirror of
/// [`toss_xmldb::JournalOp`], minus the ops the protocol does not
/// expose).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert a document given as XML text.
    InsertDoc {
        /// Target collection.
        collection: String,
        /// The document's XML.
        xml: String,
    },
    /// Delete a document by id.
    DeleteDoc {
        /// Target collection.
        collection: String,
        /// The document id.
        doc_id: u64,
    },
    /// Add ontology terms (store no-op; grows the hierarchy).
    AddTerm {
        /// The terms to add.
        terms: Vec<String>,
    },
    /// Assert `below ≤ above` in the ontology.
    AddEdge {
        /// The lesser term.
        below: String,
        /// The greater term.
        above: String,
    },
    /// Fold the journal into a fresh verified snapshot.
    Checkpoint,
}

impl WriteOp {
    /// The wire verb.
    pub fn verb(&self) -> &'static str {
        match self {
            WriteOp::InsertDoc { .. } => "insert_doc",
            WriteOp::DeleteDoc { .. } => "delete_doc",
            WriteOp::AddTerm { .. } => "add_term",
            WriteOp::AddEdge { .. } => "add_edge",
            WriteOp::Checkpoint => "checkpoint",
        }
    }

    /// A short human-readable target, for telemetry records.
    pub fn target(&self) -> String {
        match self {
            WriteOp::InsertDoc { collection, .. } => collection.clone(),
            WriteOp::DeleteDoc {
                collection, doc_id, ..
            } => format!("{collection}/{doc_id}"),
            WriteOp::AddTerm { terms } => terms.join(","),
            WriteOp::AddEdge { below, above } => format!("{below}<={above}"),
            WriteOp::Checkpoint => String::new(),
        }
    }

    /// Approximate payload size, checked against the class's
    /// [`BudgetClass::max_write_bytes`] ceiling at admission.
    pub fn payload_bytes(&self) -> usize {
        match self {
            WriteOp::InsertDoc { xml, .. } => xml.len(),
            WriteOp::AddTerm { terms } => terms.iter().map(String::len).sum(),
            _ => 0,
        }
    }
}

/// A parsed mutation frame: the op, its client-generated idempotency
/// key (empty for `checkpoint`), and the budget class governing its
/// group-commit window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// The mutation.
    pub op: WriteOp,
    /// Client-generated idempotency key: a retried send carries the
    /// same key, and the server's dedupe table collapses replays into
    /// the original's outcome.
    pub key: String,
    /// Budget class; writes default to `batch` (unlike queries).
    pub class: BudgetClass,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered even while draining.
    Ping,
    /// Prometheus-text export of the process metrics registry.
    Metrics,
    /// Structured admin snapshot: per-budget-class windowed SLO figures
    /// (p50/p95/p99, error/shed rates), in-flight and connection gauges,
    /// flight-recorder occupancy. What `toss-cli top` polls.
    Stats,
    /// Recent flight-recorder entries, newest first: per-query phase
    /// timings, plan, budget consumption and outcome.
    Slow {
        /// Maximum entries to return.
        limit: usize,
        /// Only entries of this budget class, when set.
        class: Option<BudgetClass>,
    },
    /// Begin graceful shutdown (only honored when the server was
    /// started with the shutdown verb enabled).
    Shutdown,
    /// Execute a selection query.
    Query(Box<QueryRequest>),
    /// Apply a mutation (or trigger a checkpoint) through the single
    /// writer thread's group-commit WAL path.
    Write(Box<WriteRequest>),
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn predicates(v: &Value, key: &str) -> Result<Vec<Predicate>, String> {
    let Some(arr) = v.get(key) else {
        return Ok(Vec::new());
    };
    let arr = arr
        .as_array()
        .ok_or_else(|| format!("field `{key}` must be an array of [tag, value] pairs"))?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        match pair.as_array() {
            Some([t, val]) => match (t.as_str(), val.as_str()) {
                (Some(t), Some(val)) => out.push((t.to_string(), val.to_string())),
                _ => return Err(format!("`{key}` pairs must be two strings")),
            },
            _ => return Err(format!("`{key}` entries must be [tag, value] pairs")),
        }
    }
    Ok(out)
}

fn u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

impl Request {
    /// Parse a request frame payload.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let verb = str_field(&v, "verb")?;
        match verb.as_str() {
            "ping" => Ok(Request::Ping),
            "metrics" => Ok(Request::Metrics),
            "stats" => Ok(Request::Stats),
            "slow" => {
                let limit = u64_field(&v, "limit")?
                    .map(|n| n as usize)
                    .unwrap_or(20)
                    .max(1);
                let class = match v.get("class") {
                    None | Some(Value::Null) => None,
                    Some(c) => {
                        let s = c.as_str().ok_or("field `class` must be a string")?;
                        Some(
                            BudgetClass::parse(s)
                                .ok_or_else(|| format!("unknown budget class `{s}`"))?,
                        )
                    }
                };
                Ok(Request::Slow { limit, class })
            }
            "shutdown" => Ok(Request::Shutdown),
            "query" => {
                let class = match v.get("class") {
                    None | Some(Value::Null) => BudgetClass::Interactive,
                    Some(c) => {
                        let s = c.as_str().ok_or("field `class` must be a string")?;
                        BudgetClass::parse(s)
                            .ok_or_else(|| format!("unknown budget class `{s}`"))?
                    }
                };
                let q = QueryRequest {
                    collection: str_field(&v, "collection")?,
                    root: str_field(&v, "root")?,
                    eq: predicates(&v, "eq")?,
                    contains: predicates(&v, "contains")?,
                    similar: predicates(&v, "similar")?,
                    below: predicates(&v, "below")?,
                    tax: matches!(v.get("tax"), Some(Value::Bool(true))),
                    timeout_ms: u64_field(&v, "timeout_ms")?,
                    max_terms: u64_field(&v, "max_terms")?,
                    max_docs: u64_field(&v, "max_docs")?,
                    max_results: u64_field(&v, "max_results")?
                        .map(|n| n as usize)
                        .unwrap_or(100),
                    class,
                };
                if q.eq.is_empty()
                    && q.contains.is_empty()
                    && q.similar.is_empty()
                    && q.below.is_empty()
                {
                    return Err(
                        "query needs at least one of eq/contains/similar/below".to_string()
                    );
                }
                Ok(Request::Query(Box::new(q)))
            }
            "insert_doc" | "delete_doc" | "add_term" | "add_edge" | "checkpoint" => {
                let op = match verb.as_str() {
                    "insert_doc" => WriteOp::InsertDoc {
                        collection: str_field(&v, "collection")?,
                        xml: str_field(&v, "xml")?,
                    },
                    "delete_doc" => WriteOp::DeleteDoc {
                        collection: str_field(&v, "collection")?,
                        doc_id: u64_field(&v, "doc_id")?
                            .ok_or("missing field `doc_id`")?,
                    },
                    "add_term" => {
                        let arr = v
                            .get("terms")
                            .and_then(Value::as_array)
                            .ok_or("field `terms` must be an array of strings")?;
                        let terms: Vec<String> = arr
                            .iter()
                            .map(|t| {
                                t.as_str()
                                    .map(str::to_string)
                                    .ok_or("`terms` entries must be strings")
                            })
                            .collect::<Result<_, _>>()?;
                        if terms.is_empty() {
                            return Err("`terms` must not be empty".to_string());
                        }
                        WriteOp::AddTerm { terms }
                    }
                    "add_edge" => WriteOp::AddEdge {
                        below: str_field(&v, "below")?,
                        above: str_field(&v, "above")?,
                    },
                    _ => WriteOp::Checkpoint,
                };
                let key = match v.get("key") {
                    None | Some(Value::Null) if op == WriteOp::Checkpoint => String::new(),
                    None | Some(Value::Null) => {
                        return Err(format!(
                            "write verb `{verb}` requires an idempotency `key`"
                        ))
                    }
                    Some(k) => {
                        let k = k.as_str().ok_or("field `key` must be a string")?;
                        if k.is_empty() {
                            return Err("field `key` must be non-empty".to_string());
                        }
                        k.to_string()
                    }
                };
                let class = match v.get("class") {
                    // unlike queries, writes default to the batch class:
                    // throughput-oriented group commit unless the client
                    // explicitly asks for an interactive ack
                    None | Some(Value::Null) => BudgetClass::Batch,
                    Some(c) => {
                        let s = c.as_str().ok_or("field `class` must be a string")?;
                        BudgetClass::parse(s)
                            .ok_or_else(|| format!("unknown budget class `{s}`"))?
                    }
                };
                Ok(Request::Write(Box::new(WriteRequest { op, key, class })))
            }
            other => Err(format!("unknown verb `{other}`")),
        }
    }

    /// Serialize to a frame payload (the client side of [`Request::parse`]).
    pub fn to_payload(&self) -> String {
        fn pred_value(preds: &[Predicate]) -> Value {
            Value::Array(
                preds
                    .iter()
                    .map(|(t, v)| {
                        Value::Array(vec![Value::Str(t.clone()), Value::Str(v.clone())])
                    })
                    .collect(),
            )
        }
        let fields: Vec<(String, Value)> = match self {
            Request::Ping => vec![("verb".into(), Value::Str("ping".into()))],
            Request::Metrics => vec![("verb".into(), Value::Str("metrics".into()))],
            Request::Stats => vec![("verb".into(), Value::Str("stats".into()))],
            Request::Slow { limit, class } => {
                let mut f = vec![
                    ("verb".into(), Value::Str("slow".into())),
                    ("limit".into(), Value::Int(*limit as i64)),
                ];
                if let Some(c) = class {
                    f.push(("class".into(), Value::Str(c.as_str().into())));
                }
                f
            }
            Request::Shutdown => vec![("verb".into(), Value::Str("shutdown".into()))],
            Request::Query(q) => {
                let mut f: Vec<(String, Value)> = vec![
                    ("verb".into(), Value::Str("query".into())),
                    ("collection".into(), Value::Str(q.collection.clone())),
                    ("root".into(), Value::Str(q.root.clone())),
                    ("class".into(), Value::Str(q.class.as_str().into())),
                ];
                for (key, preds) in [
                    ("eq", &q.eq),
                    ("contains", &q.contains),
                    ("similar", &q.similar),
                    ("below", &q.below),
                ] {
                    if !preds.is_empty() {
                        f.push((key.into(), pred_value(preds)));
                    }
                }
                if q.tax {
                    f.push(("tax".into(), Value::Bool(true)));
                }
                for (key, v) in [
                    ("timeout_ms", q.timeout_ms),
                    ("max_terms", q.max_terms),
                    ("max_docs", q.max_docs),
                ] {
                    if let Some(n) = v {
                        f.push((key.into(), Value::Int(n as i64)));
                    }
                }
                f.push(("max_results".into(), Value::Int(q.max_results as i64)));
                f
            }
            Request::Write(w) => {
                let mut f: Vec<(String, Value)> =
                    vec![("verb".into(), Value::Str(w.op.verb().into()))];
                match &w.op {
                    WriteOp::InsertDoc { collection, xml } => {
                        f.push(("collection".into(), Value::Str(collection.clone())));
                        f.push(("xml".into(), Value::Str(xml.clone())));
                    }
                    WriteOp::DeleteDoc { collection, doc_id } => {
                        f.push(("collection".into(), Value::Str(collection.clone())));
                        f.push(("doc_id".into(), Value::Int(*doc_id as i64)));
                    }
                    WriteOp::AddTerm { terms } => {
                        f.push((
                            "terms".into(),
                            Value::Array(
                                terms.iter().map(|t| Value::Str(t.clone())).collect(),
                            ),
                        ));
                    }
                    WriteOp::AddEdge { below, above } => {
                        f.push(("below".into(), Value::Str(below.clone())));
                        f.push(("above".into(), Value::Str(above.clone())));
                    }
                    WriteOp::Checkpoint => {}
                }
                if !w.key.is_empty() {
                    f.push(("key".into(), Value::Str(w.key.clone())));
                }
                f.push(("class".into(), Value::Str(w.class.as_str().into())));
                f
            }
        };
        Value::Object(fields).to_json()
    }
}

/// Encode a flight-recorder entry as the `slow`-frame wire object.
pub fn record_to_value(r: &toss_obs::QueryRecord) -> Value {
    Value::Object(vec![
        ("query_id".into(), Value::Int(r.query_id as i64)),
        ("class".into(), Value::Str(r.class.clone())),
        ("query".into(), Value::Str(r.query.clone())),
        ("plan".into(), Value::Str(r.plan.clone())),
        ("outcome".into(), Value::Str(r.outcome.as_str().into())),
        ("cause".into(), Value::Str(r.cause.clone())),
        ("total_ns".into(), Value::Int(r.total_ns as i64)),
        ("queue_wait_ns".into(), Value::Int(r.queue_wait_ns as i64)),
        ("rewrite_ns".into(), Value::Int(r.rewrite_ns as i64)),
        ("execute_ns".into(), Value::Int(r.execute_ns as i64)),
        ("convert_ns".into(), Value::Int(r.convert_ns as i64)),
        ("terms_used".into(), Value::Int(r.terms_used as i64)),
        ("docs_scanned".into(), Value::Int(r.docs_scanned as i64)),
        ("memory_bytes".into(), Value::Int(r.memory_bytes as i64)),
        ("answers".into(), Value::Int(r.answers as i64)),
        (
            "degraded".into(),
            Value::Array(r.degraded.iter().map(|d| Value::Str(d.clone())).collect()),
        ),
        ("op".into(), Value::Str(r.op.clone())),
        ("batch_size".into(), Value::Int(r.batch_size as i64)),
        ("fsync_ns".into(), Value::Int(r.fsync_ns as i64)),
        ("deduped".into(), Value::Bool(r.deduped)),
    ])
}

/// Decode a `slow`-frame wire object back into a flight-recorder entry
/// (the client side of [`record_to_value`]).
pub fn record_from_value(v: &Value) -> Option<toss_obs::QueryRecord> {
    let u = |key: &str| v.get(key).and_then(Value::as_i64).unwrap_or(0).max(0) as u64;
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    Some(toss_obs::QueryRecord {
        query_id: v.get("query_id").and_then(Value::as_i64)?.max(0) as u64,
        class: s("class"),
        query: s("query"),
        plan: s("plan"),
        outcome: toss_obs::QueryOutcomeKind::parse(
            v.get("outcome").and_then(Value::as_str).unwrap_or(""),
        )?,
        cause: s("cause"),
        total_ns: u("total_ns"),
        queue_wait_ns: u("queue_wait_ns"),
        rewrite_ns: u("rewrite_ns"),
        execute_ns: u("execute_ns"),
        convert_ns: u("convert_ns"),
        terms_used: u("terms_used"),
        docs_scanned: u("docs_scanned"),
        memory_bytes: u("memory_bytes"),
        answers: u("answers"),
        degraded: v
            .get("degraded")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
        op: s("op"),
        batch_size: u("batch_size"),
        fsync_ns: u("fsync_ns"),
        deduped: matches!(v.get("deduped"), Some(Value::Bool(true))),
    })
}

/// Build an `ok` response payload from extra fields.
pub fn ok_payload(fields: Vec<(String, Value)>) -> String {
    let mut all = vec![("status".to_string(), Value::Str("ok".into()))];
    all.extend(fields);
    Value::Object(all).to_json()
}

/// Build an error response payload.
pub fn error_payload(code: ErrorCode, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut fields = vec![
        ("status".to_string(), Value::Str("error".into())),
        ("code".to_string(), Value::Str(code.as_str().into())),
        ("message".to_string(), Value::Str(message.into())),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms".to_string(), Value::Int(ms as i64)));
    }
    Value::Object(fields).to_json()
}

/// Compile a [`QueryRequest`] into the executor's query form. Shared by
/// the server and by in-process callers that want identical semantics.
pub fn build_query(
    q: &QueryRequest,
) -> TossResult<(toss_core::TossQuery, toss_core::executor::Mode)> {
    use toss_core::{TossCond, TossOp, TossTerm};
    let mut conds = vec![TossCond::eq(
        TossTerm::tag(1),
        TossTerm::str(&q.root),
    )];
    let mut edges = Vec::new();
    let mut next_label = 2u32;
    for (preds, op) in [
        (&q.eq, TossOp::Eq),
        (&q.contains, TossOp::Contains),
        (&q.similar, TossOp::Similar),
        (&q.below, TossOp::Below),
    ] {
        for (tag, value) in preds.iter() {
            let l = next_label;
            next_label += 1;
            edges.push(toss_tax::EdgeKind::ParentChild);
            conds.push(TossCond::eq(TossTerm::tag(l), TossTerm::str(tag)));
            let rhs = if matches!(op, TossOp::Below | TossOp::PartOf) {
                TossTerm::ty(value)
            } else {
                TossTerm::str(value)
            };
            conds.push(TossCond::cmp(TossTerm::content(l), op, rhs));
        }
    }
    let pattern =
        toss_core::algebra::TossPattern::spine(&edges, TossCond::all(conds))?;
    let query = toss_core::TossQuery {
        collection: q.collection.clone(),
        pattern,
        expand_labels: vec![1],
    };
    let mode = if q.tax {
        toss_core::executor::Mode::TaxBaseline
    } else {
        toss_core::executor::Mode::Toss
    };
    Ok((query, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"verb\":\"ping\"}").unwrap();
        assert_eq!(&buf[..4], &15u32.to_be_bytes());
        let mut cur = io::Cursor::new(buf);
        let payload = read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES, None).unwrap();
        assert_eq!(payload, b"{\"verb\":\"ping\"}");
        // a second read on the exhausted stream is a clean close
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES, None),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn half_frames_and_oversize_are_distinguished() {
        // prefix promises 100 bytes, only 3 arrive
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let mut cur = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES, None),
            Err(FrameError::HalfFrame)
        ));

        // truncated prefix
        let mut cur = io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES, None),
            Err(FrameError::HalfFrame)
        ));

        // oversize and zero-length frames are rejected without buffering
        let mut cur = io::Cursor::new(10_000u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cur, 1024, None),
            Err(FrameError::Oversize(10_000))
        ));
        let mut cur = io::Cursor::new(0u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cur, 1024, None),
            Err(FrameError::Oversize(0))
        ));
    }

    #[test]
    fn request_parse_round_trip() {
        let q = QueryRequest {
            collection: "dblp".into(),
            root: "inproceedings".into(),
            eq: vec![("author".into(), "Jeff Ullman".into())],
            contains: vec![],
            similar: vec![("booktitle".into(), "SIGMOD".into())],
            below: vec![],
            tax: false,
            timeout_ms: Some(250),
            max_terms: None,
            max_docs: Some(1000),
            max_results: 10,
            class: BudgetClass::BestEffort,
        };
        let req = Request::Query(Box::new(q));
        let payload = req.to_payload();
        assert_eq!(Request::parse(payload.as_bytes()).unwrap(), req);
        for simple in [
            Request::Ping,
            Request::Metrics,
            Request::Stats,
            Request::Shutdown,
            Request::Slow {
                limit: 5,
                class: None,
            },
            Request::Slow {
                limit: 50,
                class: Some(BudgetClass::Batch),
            },
        ] {
            let p = simple.to_payload();
            assert_eq!(Request::parse(p.as_bytes()).unwrap(), simple);
        }
        // write verbs round-trip with their key and class
        for op in [
            WriteOp::InsertDoc {
                collection: "dblp".into(),
                xml: "<inproceedings/>".into(),
            },
            WriteOp::DeleteDoc {
                collection: "dblp".into(),
                doc_id: 42,
            },
            WriteOp::AddTerm {
                terms: vec!["PODS".into(), "ICDE".into()],
            },
            WriteOp::AddEdge {
                below: "PODS".into(),
                above: "conference".into(),
            },
        ] {
            let req = Request::Write(Box::new(WriteRequest {
                op,
                key: "wk-1".into(),
                class: BudgetClass::Interactive,
            }));
            let p = req.to_payload();
            assert_eq!(Request::parse(p.as_bytes()).unwrap(), req);
        }
        // checkpoint needs no key; writes default to the batch class
        let cp = Request::Write(Box::new(WriteRequest {
            op: WriteOp::Checkpoint,
            key: String::new(),
            class: BudgetClass::Batch,
        }));
        assert_eq!(Request::parse(cp.to_payload().as_bytes()).unwrap(), cp);
        match Request::parse(
            br#"{"verb":"insert_doc","collection":"c","xml":"<a/>","key":"k"}"#,
        )
        .unwrap()
        {
            Request::Write(w) => assert_eq!(w.class, BudgetClass::Batch),
            other => panic!("expected a write, got {other:?}"),
        }
        // a mutation without a key is rejected at parse time
        assert!(Request::parse(
            br#"{"verb":"insert_doc","collection":"c","xml":"<a/>"}"#
        )
        .is_err());
        assert!(Request::parse(
            br#"{"verb":"delete_doc","collection":"c","doc_id":1,"key":""}"#
        )
        .is_err());
        assert!(Request::parse(br#"{"verb":"add_term","terms":[],"key":"k"}"#).is_err());

        // `slow` defaults its limit and rejects unknown classes
        assert_eq!(
            Request::parse(b"{\"verb\":\"slow\"}").unwrap(),
            Request::Slow {
                limit: 20,
                class: None
            }
        );
        assert!(Request::parse(b"{\"verb\":\"slow\",\"class\":\"warp\"}").is_err());
    }

    #[test]
    fn flight_record_wire_round_trip() {
        let rec = toss_obs::QueryRecord {
            query_id: 99,
            class: "batch".into(),
            query: "//inproceedings[author=\"A\"]".into(),
            plan: "index_probe(author)".into(),
            outcome: toss_obs::QueryOutcomeKind::Error,
            cause: "budget_exceeded".into(),
            total_ns: 123_456,
            queue_wait_ns: 789,
            rewrite_ns: 10,
            execute_ns: 20,
            convert_ns: 30,
            terms_used: 4,
            docs_scanned: 5,
            memory_bytes: 6,
            answers: 0,
            degraded: vec!["terms clamped".into()],
            op: "insert_doc".into(),
            batch_size: 7,
            fsync_ns: 42_000,
            deduped: true,
        };
        let v = record_to_value(&rec);
        let back = record_from_value(&v).unwrap();
        assert_eq!(back.query_id, rec.query_id);
        assert_eq!(back.class, rec.class);
        assert_eq!(back.plan, rec.plan);
        assert_eq!(back.outcome, rec.outcome);
        assert_eq!(back.total_ns, rec.total_ns);
        assert_eq!(back.queue_wait_ns, rec.queue_wait_ns);
        assert_eq!(back.degraded, rec.degraded);
        // the write fields survive the round trip too
        assert_eq!(back.op, rec.op);
        assert_eq!(back.batch_size, rec.batch_size);
        assert_eq!(back.fsync_ns, rec.fsync_ns);
        assert!(back.deduped);
        // a record without a parseable outcome is rejected
        assert!(record_from_value(&Value::Object(vec![(
            "query_id".into(),
            Value::Int(1)
        )]))
        .is_none());
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(Request::parse(b"\xff\xfe").is_err()); // not UTF-8
        assert!(Request::parse(b"nonsense").is_err()); // not JSON
        assert!(Request::parse(b"{\"verb\":\"frob\"}").is_err()); // unknown verb
        assert!(Request::parse(b"{}").is_err()); // missing verb
        // a query with no predicate is rejected at parse time
        assert!(Request::parse(
            b"{\"verb\":\"query\",\"collection\":\"c\",\"root\":\"r\"}"
        )
        .is_err());
        // malformed predicate shapes
        assert!(Request::parse(
            b"{\"verb\":\"query\",\"collection\":\"c\",\"root\":\"r\",\"eq\":[[1,2]]}"
        )
        .is_err());
        assert!(Request::parse(
            b"{\"verb\":\"query\",\"collection\":\"c\",\"root\":\"r\",\"class\":\"warp\",\
              \"eq\":[[\"a\",\"b\"]]}"
        )
        .is_err());
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::BudgetExceeded,
            ErrorCode::Cancelled,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
            ErrorCode::Degraded,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::ShuttingDown.is_retryable());
        assert!(
            ErrorCode::Degraded.is_retryable(),
            "degraded self-heals, so clients may retry"
        );
        assert!(!ErrorCode::BudgetExceeded.is_retryable());
        assert!(!ErrorCode::Internal.is_retryable());
        assert_eq!(
            error_code_of(&TossError::Overloaded("x".into())),
            ErrorCode::Overloaded
        );
        assert_eq!(
            error_code_of(&TossError::Cancelled),
            ErrorCode::Cancelled
        );
        assert_eq!(
            error_code_of(&TossError::Internal("p".into())),
            ErrorCode::Internal
        );
        assert_eq!(
            error_code_of(&TossError::Unsupported("q".into())),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn error_payload_carries_retry_hint() {
        let p = error_payload(ErrorCode::Overloaded, "busy", Some(40));
        let v = Value::parse(&p).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").unwrap().as_i64(), Some(40));
        let p = error_payload(ErrorCode::Internal, "boom", None);
        assert!(Value::parse(&p).unwrap().get("retry_after_ms").is_none());
    }
}
