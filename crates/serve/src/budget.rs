//! Per-client budget classes: named [`QueryBudget`] envelopes.
//!
//! A shared server cannot let clients pick arbitrary budgets — an
//! unlimited deadline is a denial-of-service primitive. Instead every
//! request names a **class**; the class fixes ceilings and the request
//! may only tighten them (overrides are clamped to the class ceiling,
//! never raised above it).
//!
//! | class         | deadline | expansion terms | docs scanned |
//! |---------------|----------|-----------------|--------------|
//! | `best_effort` | 250 ms   | 128 (soft)      | 10 000 (soft)|
//! | `interactive` | 2 s      | 1 024 (soft)    | 200 000 (soft)|
//! | `batch`       | 30 s     | 8 192 (soft)    | 2 000 000 (soft)|
//!
//! Every class also carries soft join-cardinality, witness and memory
//! ceilings so one query cannot hold the store's whole candidate set in
//! RAM. Soft limits degrade (the response's `degraded` field explains
//! what was truncated); only the deadline is hard.

use std::time::Duration;
use toss_core::{Limit, QueryBudget};

/// A named budget envelope (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetClass {
    /// Small, fast, first to be shed: health checks and speculative UI
    /// queries.
    BestEffort,
    /// The default: human-facing queries.
    #[default]
    Interactive,
    /// Large offline scans; longest deadline, biggest soft limits.
    Batch,
}

impl BudgetClass {
    /// Every class, in shed-first order (telemetry iterates this to
    /// keep one SLO window per class).
    pub const ALL: [BudgetClass; 3] = [
        BudgetClass::BestEffort,
        BudgetClass::Interactive,
        BudgetClass::Batch,
    ];

    /// The wire string (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetClass::BestEffort => "best_effort",
            BudgetClass::Interactive => "interactive",
            BudgetClass::Batch => "batch",
        }
    }

    /// Parse the wire string.
    pub fn parse(s: &str) -> Option<BudgetClass> {
        Some(match s {
            "best_effort" => BudgetClass::BestEffort,
            "interactive" => BudgetClass::Interactive,
            "batch" => BudgetClass::Batch,
            _ => return None,
        })
    }

    /// The class's deadline ceiling.
    pub fn max_deadline(self) -> Duration {
        match self {
            BudgetClass::BestEffort => Duration::from_millis(250),
            BudgetClass::Interactive => Duration::from_secs(2),
            BudgetClass::Batch => Duration::from_secs(30),
        }
    }

    fn term_ceiling(self) -> u64 {
        match self {
            BudgetClass::BestEffort => 128,
            BudgetClass::Interactive => 1_024,
            BudgetClass::Batch => 8_192,
        }
    }

    fn doc_ceiling(self) -> u64 {
        match self {
            BudgetClass::BestEffort => 10_000,
            BudgetClass::Interactive => 200_000,
            BudgetClass::Batch => 2_000_000,
        }
    }

    fn memory_ceiling(self) -> u64 {
        match self {
            BudgetClass::BestEffort => 16 << 20,
            BudgetClass::Interactive => 64 << 20,
            BudgetClass::Batch => 256 << 20,
        }
    }

    /// The group-commit latency target for **write** frames of this
    /// class: how long the single writer thread may hold a batch open
    /// waiting for more writes before it fsyncs and acknowledges.
    ///
    /// Writes default to the `batch` class (throughput: wide batches,
    /// one fsync amortized over many acks); an `interactive` write
    /// clamps the window down so a human-facing mutation is not held
    /// hostage to batching. A mixed batch closes at the *smallest*
    /// window of its members.
    pub fn group_commit_window(self) -> Duration {
        match self {
            BudgetClass::BestEffort => Duration::from_millis(5),
            BudgetClass::Interactive => Duration::from_millis(2),
            BudgetClass::Batch => Duration::from_millis(15),
        }
    }

    /// Ceiling on one write frame's document payload for this class
    /// (the `batch` ceiling is the largest; a class may only see its
    /// writes *rejected* above its ceiling, never silently truncated).
    pub fn max_write_bytes(self) -> usize {
        match self {
            BudgetClass::BestEffort => 64 << 10,
            BudgetClass::Interactive => 256 << 10,
            BudgetClass::Batch => 1 << 20,
        }
    }

    /// Assemble the [`QueryBudget`] for a request of this class.
    /// `timeout_ms`/`max_terms`/`max_docs` are the request's overrides;
    /// each is **clamped to the class ceiling** (a zero/absent override
    /// means "class default"). The result always has a hard deadline.
    pub fn budget(
        self,
        timeout_ms: Option<u64>,
        max_terms: Option<u64>,
        max_docs: Option<u64>,
    ) -> QueryBudget {
        let ceiling = self.max_deadline();
        let deadline = match timeout_ms {
            Some(ms) if ms > 0 => Duration::from_millis(ms).min(ceiling),
            _ => ceiling,
        };
        let terms = max_terms
            .filter(|&n| n > 0)
            .map_or(self.term_ceiling(), |n| n.min(self.term_ceiling()));
        let docs = max_docs
            .filter(|&n| n > 0)
            .map_or(self.doc_ceiling(), |n| n.min(self.doc_ceiling()));
        QueryBudget::unlimited()
            .with_deadline(deadline)
            .with_max_expansion_terms(Limit::soft(terms))
            .with_max_docs_scanned(Limit::soft(docs))
            .with_max_join_cardinality(Limit::soft(1_000_000))
            .with_max_witnesses(Limit::soft(10_000))
            .with_max_memory_bytes(Limit::soft(self.memory_ceiling()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_strings_round_trip() {
        for c in [
            BudgetClass::BestEffort,
            BudgetClass::Interactive,
            BudgetClass::Batch,
        ] {
            assert_eq!(BudgetClass::parse(c.as_str()), Some(c));
        }
        assert_eq!(BudgetClass::parse("supersonic"), None);
        assert_eq!(BudgetClass::default(), BudgetClass::Interactive);
    }

    #[test]
    fn overrides_only_tighten() {
        let b = BudgetClass::Interactive.budget(Some(100), Some(10), Some(50));
        assert_eq!(b.deadline, Some(Duration::from_millis(100)));
        assert_eq!(b.max_expansion_terms.unwrap().max, 10);
        assert_eq!(b.max_docs_scanned.unwrap().max, 50);

        // an override above the ceiling is clamped down, never raised
        let b = BudgetClass::BestEffort.budget(Some(60_000), Some(1 << 40), None);
        assert_eq!(b.deadline, Some(Duration::from_millis(250)));
        assert_eq!(b.max_expansion_terms.unwrap().max, 128);
        assert_eq!(b.max_docs_scanned.unwrap().max, 10_000);
    }

    #[test]
    fn zero_or_absent_override_means_class_default() {
        for timeout in [None, Some(0)] {
            let b = BudgetClass::Batch.budget(timeout, Some(0), None);
            assert_eq!(b.deadline, Some(Duration::from_secs(30)));
            assert_eq!(b.max_expansion_terms.unwrap().max, 8_192);
            assert_eq!(b.max_docs_scanned.unwrap().max, 2_000_000);
        }
    }

    #[test]
    fn write_windows_clamp_interactive_below_batch() {
        // the satellite contract: writes batch by default, but an
        // interactive-class write must close its group-commit window
        // sooner than a batch-class one — and every window is bounded
        // well below the class deadline, so an ack is never deadline-
        // limited by batching alone.
        let interactive = BudgetClass::Interactive.group_commit_window();
        let batch = BudgetClass::Batch.group_commit_window();
        assert!(
            interactive < batch,
            "interactive window {interactive:?} must undercut batch {batch:?}"
        );
        for c in BudgetClass::ALL {
            let w = c.group_commit_window();
            assert!(w > Duration::ZERO, "{c:?} window must be positive");
            assert!(
                w * 10 < c.max_deadline(),
                "{c:?} window {w:?} must be well under the {:?} deadline",
                c.max_deadline()
            );
            assert!(c.max_write_bytes() > 0);
        }
        // write-size ceilings are ordered like the classes themselves
        assert!(
            BudgetClass::BestEffort.max_write_bytes()
                < BudgetClass::Interactive.max_write_bytes()
        );
        assert!(
            BudgetClass::Interactive.max_write_bytes()
                < BudgetClass::Batch.max_write_bytes()
        );
    }

    #[test]
    fn every_class_budget_has_a_hard_deadline_and_soft_limits() {
        for c in [
            BudgetClass::BestEffort,
            BudgetClass::Interactive,
            BudgetClass::Batch,
        ] {
            let b = c.budget(None, None, None);
            assert!(b.deadline.is_some(), "{c:?} must have a deadline");
            for l in [
                b.max_expansion_terms,
                b.max_docs_scanned,
                b.max_join_cardinality,
                b.max_witnesses,
                b.max_memory_bytes,
            ] {
                assert_eq!(
                    l.unwrap().enforcement,
                    toss_core::Enforcement::Soft,
                    "{c:?} limits degrade, not fail"
                );
            }
        }
    }
}
