//! The serving loop: thread-per-connection TCP front-end over the
//! [`Executor`] and [`AdmissionController`].
//!
//! ## Robustness contract
//!
//! * **Backpressure, never unbounded queueing.** Connections above
//!   `max_connections` get one `overloaded` error frame (with a
//!   `retry_after_ms` hint) and a close; queries past the admission
//!   controller's queue-wait ceiling get an `overloaded` frame on a
//!   *live* connection. Nothing waits forever and nothing hangs.
//! * **Deadlines everywhere.** Every query runs under a hard class
//!   deadline; sockets carry read/write timeouts plus a whole-frame
//!   read deadline, so a slow-loris peer (trickling bytes) or a stalled
//!   reader (never draining its responses) is disconnected instead of
//!   pinning a thread.
//! * **Panic isolation.** Query panics are caught by
//!   [`toss_core::governor::isolate`] inside the admission controller
//!   and surface as an `internal` error **frame** — the connection
//!   survives, the server survives.
//! * **No partial frames.** A response is written with a single
//!   `write_all`; drain kills only the *read* half of sockets, so a
//!   response in flight always completes (or fails whole on a dead
//!   peer).
//! * **Graceful drain.** [`Server::shutdown`] stops accepting, lets
//!   in-flight queries run up to the drain deadline, then cancels
//!   stragglers through their [`CancelToken`]s, and only force-closes
//!   sockets as a last resort. The report says which of those happened.
//!
//! Metrics: `toss.serve.*` (see `docs/serving.md` and
//! `docs/observability.md`).

use crate::budget::BudgetClass;
use crate::protocol::{
    error_code_of, error_payload, ok_payload, read_frame, record_to_value, write_frame,
    ErrorCode, FrameError, QueryRequest, Request, WriteRequest, DEFAULT_MAX_FRAME_BYTES,
};
use crate::write::{WriteEngine, WriteJob, WriteResult, WriteState, WriterLoop};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};
use toss_core::executor::QueryOutcome;
use toss_core::{AdmissionController, CancelToken, Executor, QueryGovernor};
use toss_json::Value;
use toss_obs::{
    FlightRecorder, QueryId, QueryOutcomeKind, QueryRecord, RollingWindow, SlowQueryLog,
    WindowSnapshot,
};
use toss_tree::serialize::{tree_to_xml, Style};

/// Tunables for a [`Server`]. The defaults are sized for a small
/// multi-tenant box; every test overrides what it probes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection ceiling; excess connections are told `overloaded` and
    /// closed immediately.
    pub max_connections: usize,
    /// Concurrent query slots (the admission controller's width).
    pub max_concurrent_queries: usize,
    /// How long a query may wait for a slot before it is shed.
    pub max_queue_wait: Duration,
    /// Socket read timeout; also the idle keep-alive ceiling and the
    /// whole-frame read deadline (slow-loris kill).
    pub read_timeout: Duration,
    /// Socket write timeout (stalled-reader kill).
    pub write_timeout: Duration,
    /// How long [`Server::shutdown`] waits for in-flight queries before
    /// cancelling them.
    pub drain_deadline: Duration,
    /// Ceiling on a single request frame.
    pub max_frame_bytes: usize,
    /// Honor the `shutdown` protocol verb (off by default: a remote
    /// peer should not be able to stop the server unless deployment
    /// explicitly wires that up).
    pub allow_shutdown_verb: bool,
    /// Flight-recorder capacity: how many completed queries the `slow`
    /// admin frame can look back over.
    pub flight_capacity: usize,
    /// Slow-query JSON-lines log path; `None` disables the log.
    pub slow_query_log: Option<PathBuf>,
    /// Queries slower than this (or shed/failed/degraded ones) are
    /// always written to the slow-query log.
    pub slow_threshold: Duration,
    /// Additionally sample 1 in N healthy fast queries into the log
    /// (0 = only slow/failed ones), keeping log volume bounded.
    pub slow_sample_every: u64,
    /// Length of one SLO window bucket.
    pub window_bucket: Duration,
    /// Number of window buckets (windowed gauges cover
    /// `window_bucket × window_buckets` of trailing traffic).
    pub window_buckets: usize,
    /// Depth of the writer thread's mutation queue; frames past it are
    /// shed with `overloaded` instead of queueing unboundedly.
    pub write_queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            max_concurrent_queries: 8,
            max_queue_wait: Duration::from_millis(100),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            allow_shutdown_verb: false,
            flight_capacity: 512,
            slow_query_log: None,
            slow_threshold: Duration::from_millis(250),
            slow_sample_every: 128,
            window_bucket: Duration::from_secs(1),
            window_buckets: 10,
            write_queue_depth: 256,
        }
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// In-flight queries that completed within the drain deadline.
    pub drained: usize,
    /// Queries still running at the deadline whose tokens were tripped.
    pub cancelled: usize,
    /// Sockets force-closed because their thread did not exit in the
    /// post-cancel grace period.
    pub forced_closes: usize,
    /// Wall time the whole drain took.
    pub duration: Duration,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

/// Per-connection registry entry: a second handle on the socket (for
/// read-half drain and last-resort close) plus the in-flight query's
/// cancel token, if any.
struct ConnEntry {
    stream: TcpStream,
    token: Mutex<Option<CancelToken>>,
}

struct Shared {
    cfg: ServerConfig,
    /// The executor behind a read/write lock: connection threads read,
    /// the single writer thread takes the write lock briefly per
    /// applied batch. Read-only servers simply never write.
    executor: Arc<RwLock<Executor>>,
    /// Mutation queue into the writer thread; `None` on read-only
    /// servers, and taken (dropped) during drain so the writer exits
    /// after committing what was already enqueued.
    write_tx: Mutex<Option<mpsc::SyncSender<WriteJob>>>,
    /// Observable writer state (`None` on read-only servers).
    write_state: Option<Arc<WriteState>>,
    admission: AdmissionController,
    state: AtomicU8,
    shutdown_requested: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<ConnEntry>>>,
    next_conn: AtomicU64,
    inflight: AtomicUsize,
    /// Notified whenever a connection unregisters or a query finishes;
    /// the drain loop and `wait_for_shutdown` sleep on it.
    change: Condvar,
    change_lock: Mutex<()>,
    started: Instant,
    /// Ring of the most recent completed queries (the `slow` frame).
    flight: FlightRecorder,
    /// Optional JSON-lines log of slow/failed (+ sampled) queries.
    slow_log: Option<SlowQueryLog>,
    /// One rolling SLO window per budget class, in `BudgetClass::ALL`
    /// order.
    windows: Vec<(BudgetClass, RollingWindow)>,
}

impl Shared {
    fn window_for(&self, class: BudgetClass) -> &RollingWindow {
        // ALL covers every variant, so the lookup always succeeds.
        &self.windows.iter().find(|(c, _)| *c == class).unwrap().1
    }

    /// Snapshot every class window, refresh its registry gauges
    /// (`toss.serve.window.<class>.*`), and return the snapshots.
    fn publish_windows(&self) -> Vec<(BudgetClass, WindowSnapshot)> {
        self.windows
            .iter()
            .map(|(class, w)| {
                let snap = w.snapshot();
                snap.publish_gauges(&format!("toss.serve.window.{}", class.as_str()));
                (*class, snap)
            })
            .collect()
    }

    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn notify(&self) {
        let _g = self.change_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.change.notify_all();
    }

    /// Block until `done()` or the deadline; returns whether `done()`.
    fn wait_until(&self, deadline: Instant, done: impl Fn() -> bool) -> bool {
        let mut guard = self.change_lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if done() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return done();
            }
            let (g, _) = self
                .change
                .wait_timeout(guard, (deadline - now).min(Duration::from_millis(50)))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    fn conn_count(&self) -> usize {
        self.conns.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The `retry_after_ms` hint for shed work: the queue-wait ceiling
    /// (after that long, a slot has either freed or the box is still
    /// saturated and the client should back off further on its own).
    fn retry_after_ms(&self) -> u64 {
        self.cfg.max_queue_wait.as_millis().max(10) as u64
    }
}

/// A running server: accept loop + per-connection threads.
///
/// Start with [`Server::start`], stop with [`Server::shutdown`] (drains)
/// — or let a client's `shutdown` verb / another thread holding a
/// [`ShutdownHandle`] request it and call [`Server::serve_until_shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    writer_thread: Option<thread::JoinHandle<()>>,
}

/// A cloneable handle that can request (not perform) shutdown from
/// another thread — e.g. a CLI signal/stdin watcher.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Request graceful shutdown; `serve_until_shutdown` picks it up.
    pub fn request_shutdown(&self) {
        self.shared.shutdown_requested.store(true, Ordering::Release);
        self.shared.notify();
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `executor` under `cfg`, **read-only** (mutation frames get a
    /// typed `bad_request`; use [`Server::start_writable`] for the live
    /// write path).
    pub fn start(
        executor: Arc<RwLock<Executor>>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Server::start_inner(executor, None, addr, cfg)
    }

    /// Bind `addr` and start serving with the live write path enabled:
    /// mutation frames flow through `engine`'s single writer thread
    /// (group-commit WAL, idempotency dedupe, background checkpoints,
    /// read-only degradation on persistent journal faults).
    pub fn start_writable(
        executor: Arc<RwLock<Executor>>,
        engine: WriteEngine,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Server::start_inner(executor, Some(engine), addr, cfg)
    }

    fn start_inner(
        executor: Arc<RwLock<Executor>>,
        engine: Option<WriteEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept + poll: the accept loop must notice a
        // drain request even when no client ever connects again.
        listener.set_nonblocking(true)?;
        let admission =
            AdmissionController::new(cfg.max_concurrent_queries, cfg.max_queue_wait);
        let slow_log = match &cfg.slow_query_log {
            Some(path) => Some(SlowQueryLog::create(
                path,
                cfg.slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
                cfg.slow_sample_every,
            )?),
            None => None,
        };
        let windows = BudgetClass::ALL
            .iter()
            .map(|c| (*c, RollingWindow::new(cfg.window_bucket, cfg.window_buckets)))
            .collect();
        let write_state = engine.as_ref().map(|_| Arc::new(WriteState::default()));
        let (write_tx, write_rx) = match engine {
            Some(_) => {
                let (tx, rx) = mpsc::sync_channel(cfg.write_queue_depth.max(1));
                (Some(tx), Some(rx))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            flight: FlightRecorder::new(cfg.flight_capacity),
            slow_log,
            windows,
            cfg,
            executor: executor.clone(),
            write_tx: Mutex::new(write_tx),
            write_state: write_state.clone(),
            admission,
            state: AtomicU8::new(STATE_RUNNING),
            shutdown_requested: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            change: Condvar::new(),
            change_lock: Mutex::new(()),
            started: Instant::now(),
        });
        // Publish the windowed gauges (as zeros) up front so scrapes of
        // an idle server already see the full gauge set.
        shared.publish_windows();
        let writer_thread = match (engine, write_rx, write_state) {
            (Some(engine), Some(rx), Some(state)) => {
                toss_obs::metrics::gauge("toss.serve.degraded").set(0);
                let stamp_shared = shared.clone();
                let stamp = Box::new(move |rec: QueryRecord| {
                    let class =
                        BudgetClass::parse(&rec.class).unwrap_or(BudgetClass::Batch);
                    let (total_ns, outcome) = (rec.total_ns, rec.outcome);
                    if let Some(log) = &stamp_shared.slow_log {
                        log.offer(&rec);
                    }
                    stamp_shared.flight.record(rec);
                    let w = stamp_shared.window_for(class);
                    w.record(total_ns, outcome);
                    w.snapshot()
                        .publish_gauges(&format!("toss.serve.window.{}", class.as_str()));
                });
                let writer = WriterLoop::new(engine, executor, state, stamp);
                Some(
                    thread::Builder::new()
                        .name("toss-serve-writer".into())
                        .spawn(move || writer.run(rx))?,
                )
            }
            _ => None,
        };
        let accept_shared = shared.clone();
        let accept_thread = thread::Builder::new()
            .name("toss-serve-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(Server {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
            writer_thread,
        })
    }

    /// Observable writer state (`None` on a read-only server).
    pub fn write_state(&self) -> Option<Arc<WriteState>> {
        self.shared.write_state.clone()
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered.
    pub fn connections(&self) -> usize {
        self.shared.conn_count()
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// A handle other threads can use to request shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: self.shared.clone(),
        }
    }

    /// Block until some [`ShutdownHandle`] (or the `shutdown` verb)
    /// requests shutdown, then drain and return the report.
    pub fn serve_until_shutdown(self) -> DrainReport {
        {
            let mut guard = self
                .shared
                .change_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while !self.shared.shutdown_requested.load(Ordering::Acquire) {
                let (g, _) = self
                    .shared
                    .change
                    .wait_timeout(guard, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
            }
        }
        self.shutdown()
    }

    /// Graceful shutdown: stop accepting, drain in-flight queries up to
    /// the drain deadline, cancel stragglers, force-close only what is
    /// left after a grace period. Idempotent with respect to a prior
    /// `shutdown` verb (the drain runs once, here).
    pub fn shutdown(mut self) -> DrainReport {
        let t0 = Instant::now();
        let drain_span = toss_obs::span("toss.serve.drain");
        let sh = &self.shared;
        let inflight_at_start = sh.inflight.load(Ordering::Acquire);
        sh.shutdown_requested.store(true, Ordering::Release);
        sh.state.store(STATE_DRAINING, Ordering::Release);
        sh.notify();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join(); // polls every 10 ms; prompt
        }

        // Kill the READ half of every registered socket: idle
        // connection threads wake with a clean EOF and exit; a thread
        // mid-query keeps its WRITE half, so its response still goes
        // out whole. New requests can no longer arrive.
        for entry in sh.conns.lock().unwrap_or_else(|e| e.into_inner()).values() {
            let _ = entry.stream.shutdown(Shutdown::Read);
        }

        // Phase 1: wait for in-flight queries up to the drain deadline.
        let deadline = t0 + sh.cfg.drain_deadline;
        sh.wait_until(deadline, || sh.inflight.load(Ordering::Acquire) == 0);

        // Stop the write path: new mutations were already refused once
        // the state left RUNNING; dropping the queue's sender lets the
        // writer thread commit and ack everything already enqueued,
        // then exit. Join it so every acknowledged write is fsynced
        // before the drain report returns.
        *sh.write_tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        if let Some(t) = self.writer_thread.take() {
            let _ = t.join();
        }

        // Phase 2: cancel stragglers through their tokens.
        let mut cancelled = 0usize;
        for entry in sh.conns.lock().unwrap_or_else(|e| e.into_inner()).values() {
            if let Some(tok) = entry
                .token
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
            {
                tok.cancel();
                cancelled += 1;
            }
        }
        if cancelled > 0 {
            toss_obs::metrics::counter("toss.serve.drain.cancelled").add(cancelled as u64);
        }

        // Phase 3: grace period for cancelled queries to observe the
        // token, write their `cancelled` frame whole, and unregister.
        let grace = Instant::now() + sh.cfg.drain_deadline.max(Duration::from_millis(250));
        sh.wait_until(grace, || sh.conn_count() == 0);

        // Phase 4: last resort — close whatever is left outright.
        let leftover: Vec<Arc<ConnEntry>> = sh
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        let forced_closes = leftover.len();
        for entry in &leftover {
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
        if forced_closes > 0 {
            toss_obs::metrics::counter("toss.serve.drain.forced_closes")
                .add(forced_closes as u64);
            sh.wait_until(Instant::now() + Duration::from_millis(500), || {
                sh.conn_count() == 0
            });
        }

        sh.state.store(STATE_STOPPED, Ordering::Release);
        let duration = t0.elapsed();
        drain_span.record("cancelled", cancelled);
        drain_span.record("forced_closes", forced_closes);
        drop(drain_span);
        toss_obs::metrics::histogram("toss.serve.drain_ns").observe_duration(duration);
        DrainReport {
            drained: inflight_at_start.saturating_sub(cancelled),
            cancelled,
            forced_closes,
            duration,
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.state() != STATE_RUNNING
            || shared.shutdown_requested.load(Ordering::Acquire)
        {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => on_accept(&shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn on_accept(shared: &Arc<Shared>, stream: TcpStream) {
    toss_obs::metrics::counter("toss.serve.conns_accepted").inc();
    // Accepted sockets must be blocking regardless of what the
    // (nonblocking) listener hands us on any platform.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    // Connection backpressure: over the ceiling, the peer gets one
    // typed `overloaded` frame and a close instead of a silent hang.
    if shared.conn_count() >= shared.cfg.max_connections {
        toss_obs::metrics::counter("toss.serve.conns_rejected").inc();
        let mut s = stream;
        let _ = write_frame(
            &mut s,
            error_payload(
                ErrorCode::Overloaded,
                "connection limit reached",
                Some(shared.retry_after_ms()),
            )
            .as_bytes(),
        );
        return; // dropped => closed
    }

    let Ok(registry_handle) = stream.try_clone() else {
        return; // cannot track it for drain: refuse rather than leak
    };
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let entry = Arc::new(ConnEntry {
        stream: registry_handle,
        token: Mutex::new(None),
    });
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, entry.clone());
    toss_obs::metrics::gauge("toss.serve.connections_active").inc();

    let conn_shared = shared.clone();
    let spawned = thread::Builder::new()
        .name(format!("toss-serve-conn-{id}"))
        .spawn(move || {
            conn_loop(&conn_shared, stream, &entry);
            conn_shared
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&id);
            toss_obs::metrics::gauge("toss.serve.connections_active").dec();
            conn_shared.notify();
        });
    if spawned.is_err() {
        // could not spawn: unregister and drop the socket
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
        toss_obs::metrics::gauge("toss.serve.connections_active").dec();
    }
}

fn conn_loop(shared: &Arc<Shared>, mut stream: TcpStream, entry: &Arc<ConnEntry>) {
    loop {
        let payload = match read_frame(
            &mut stream,
            shared.cfg.max_frame_bytes,
            Some(shared.cfg.read_timeout),
        ) {
            Ok(p) => p,
            Err(FrameError::Closed) => break,
            Err(FrameError::HalfFrame) => {
                toss_obs::metrics::counter("toss.serve.faults.half_frame").inc();
                break;
            }
            Err(FrameError::Timeout) => {
                toss_obs::metrics::counter("toss.serve.faults.read_timeout").inc();
                break;
            }
            Err(FrameError::Oversize(n)) => {
                toss_obs::metrics::counter("toss.serve.faults.oversize").inc();
                // tell the peer why before hanging up (best effort)
                let _ = write_frame(
                    &mut stream,
                    error_payload(
                        ErrorCode::BadRequest,
                        &format!(
                            "frame of {n} bytes exceeds the {} byte limit",
                            shared.cfg.max_frame_bytes
                        ),
                        None,
                    )
                    .as_bytes(),
                );
                break;
            }
            Err(FrameError::Io(_)) => {
                toss_obs::metrics::counter("toss.serve.faults.io").inc();
                break;
            }
        };

        let reply = handle_payload(shared, entry, &payload);
        if write_frame(&mut stream, reply.as_bytes()).is_err() {
            // stalled reader / dead peer: the write timeout fired or
            // the connection reset. Close; never retry a partial frame.
            toss_obs::metrics::counter("toss.serve.faults.write_failed").inc();
            break;
        }
    }
}

/// Parse and dispatch one request payload; always returns a whole
/// response payload (this function must never panic — query panics are
/// isolated further down, parse errors are typed frames).
fn handle_payload(shared: &Arc<Shared>, entry: &Arc<ConnEntry>, payload: &[u8]) -> String {
    toss_obs::metrics::counter("toss.serve.requests").inc();
    let req = match Request::parse(payload) {
        Ok(r) => r,
        Err(msg) => {
            toss_obs::metrics::counter("toss.serve.errors.bad_request").inc();
            return error_payload(ErrorCode::BadRequest, &msg, None);
        }
    };
    match req {
        Request::Ping => ok_payload(vec![(
            "verb".into(),
            Value::Str("ping".into()),
        )]),
        Request::Metrics => {
            // refresh windowed gauges so the export is current
            shared.publish_windows();
            ok_payload(vec![(
                "metrics".into(),
                Value::Str(toss_obs::metrics::snapshot().to_prometheus()),
            )])
        }
        Request::Stats => stats_payload(shared),
        Request::Slow { limit, class } => slow_payload(shared, limit, class),
        Request::Shutdown => {
            if shared.cfg.allow_shutdown_verb {
                shared.shutdown_requested.store(true, Ordering::Release);
                shared.notify();
                ok_payload(vec![("verb".into(), Value::Str("shutdown".into()))])
            } else {
                error_payload(
                    ErrorCode::BadRequest,
                    "shutdown verb not enabled on this server",
                    None,
                )
            }
        }
        Request::Query(q) => handle_query(shared, entry, &q),
        Request::Write(w) => handle_write(shared, &w),
    }
}

/// Stamp an ingress-rejected write (degraded, draining, oversize,
/// shed): the writer thread never saw it, so telemetry happens here.
fn stamp_write_rejection(shared: &Shared, qid: QueryId, w: &WriteRequest, code: ErrorCode, total: Duration) {
    let rec = QueryRecord {
        query_id: qid.0,
        class: w.class.as_str().to_string(),
        query: w.op.target(),
        op: w.op.verb().to_string(),
        outcome: QueryOutcomeKind::Error,
        cause: code.as_str().to_string(),
        total_ns: total.as_nanos().min(u64::MAX as u128) as u64,
        ..QueryRecord::default()
    };
    if let Some(log) = &shared.slow_log {
        log.offer(&rec);
    }
    shared.flight.record(rec);
    let win = shared.window_for(w.class);
    win.record(rec_total_ns(total), QueryOutcomeKind::Error);
}

fn rec_total_ns(total: Duration) -> u64 {
    total.as_nanos().min(u64::MAX as u128) as u64
}

/// Dispatch one mutation frame into the writer thread's group-commit
/// queue and block (bounded by the class deadline) for its fsynced ack.
fn handle_write(shared: &Arc<Shared>, w: &WriteRequest) -> String {
    let qid = QueryId::next();
    let _ctx = toss_obs::set_current_query(qid);
    let started = Instant::now();
    toss_obs::metrics::counter("toss.serve.write.requests").inc();

    let Some(state) = &shared.write_state else {
        toss_obs::metrics::counter("toss.serve.errors.bad_request").inc();
        return error_payload(
            ErrorCode::BadRequest,
            "this server is read-only: no write path is configured",
            None,
        );
    };
    if shared.state() != STATE_RUNNING {
        toss_obs::metrics::counter("toss.serve.errors.shutting_down").inc();
        stamp_write_rejection(shared, qid, w, ErrorCode::ShuttingDown, started.elapsed());
        return error_payload(
            ErrorCode::ShuttingDown,
            "server is draining",
            Some(shared.cfg.drain_deadline.as_millis().max(10) as u64),
        );
    }
    // Read-only degraded mode: reject at ingress with the reason and a
    // retry hint. Reads keep flowing; the writer thread's probe loop
    // clears the flag once the journal is healthy again.
    if state.is_degraded() {
        toss_obs::metrics::counter("toss.serve.errors.degraded").inc();
        stamp_write_rejection(shared, qid, w, ErrorCode::Degraded, started.elapsed());
        return error_payload(
            ErrorCode::Degraded,
            &format!("server is read-only: {}", state.degraded_reason()),
            Some(500),
        );
    }
    // The class's write-size ceiling (cheap pre-admission check; the
    // batch validator still owns semantic validation).
    let bytes = w.op.payload_bytes();
    if bytes > w.class.max_write_bytes() {
        toss_obs::metrics::counter("toss.serve.errors.bad_request").inc();
        stamp_write_rejection(shared, qid, w, ErrorCode::BadRequest, started.elapsed());
        return error_payload(
            ErrorCode::BadRequest,
            &format!(
                "write of {bytes} bytes exceeds the {} byte ceiling of class `{}`",
                w.class.max_write_bytes(),
                w.class.as_str()
            ),
            None,
        );
    }

    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = WriteJob {
        op: w.op.clone(),
        key: w.key.clone(),
        class: w.class,
        query_id: qid.0,
        enqueued: started,
        reply: reply_tx,
    };
    {
        let guard = shared.write_tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            return error_payload(
                ErrorCode::ShuttingDown,
                "server is draining",
                Some(shared.cfg.drain_deadline.as_millis().max(10) as u64),
            );
        };
        match tx.try_send(job) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                toss_obs::metrics::counter("toss.serve.write.shed").inc();
                stamp_write_rejection(
                    shared,
                    qid,
                    w,
                    ErrorCode::Overloaded,
                    started.elapsed(),
                );
                return error_payload(
                    ErrorCode::Overloaded,
                    "write queue is full",
                    Some(shared.retry_after_ms()),
                );
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                return error_payload(
                    ErrorCode::ShuttingDown,
                    "server is draining",
                    Some(shared.cfg.drain_deadline.as_millis().max(10) as u64),
                );
            }
        }
    }

    // Count ourselves in flight so drain waits for the pending ack.
    shared.inflight.fetch_add(1, Ordering::AcqRel);
    toss_obs::metrics::gauge("toss.serve.inflight").inc();
    let outcome = reply_rx.recv_timeout(w.class.max_deadline());
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
    toss_obs::metrics::gauge("toss.serve.inflight").dec();
    shared.notify();
    let elapsed = started.elapsed();
    toss_obs::metrics::histogram("toss.serve.request_ns").observe_duration(elapsed);

    match outcome {
        Ok(WriteResult::Applied {
            seq,
            doc_id,
            deduped,
            batch_size,
            fsync_ns,
        }) => ok_payload(vec![
            ("query_id".into(), Value::Int(qid.0 as i64)),
            ("verb".into(), Value::Str(w.op.verb().into())),
            ("seq".into(), Value::Int(seq as i64)),
            (
                "doc_id".into(),
                match doc_id {
                    Some(id) => Value::Int(id as i64),
                    None => Value::Null,
                },
            ),
            ("deduped".into(), Value::Bool(deduped)),
            ("batch_size".into(), Value::Int(batch_size as i64)),
            ("fsync_ns".into(), Value::Int(fsync_ns as i64)),
            ("server_us".into(), Value::Int(elapsed.as_micros() as i64)),
        ]),
        Ok(WriteResult::CheckpointDone { folded }) => ok_payload(vec![
            ("query_id".into(), Value::Int(qid.0 as i64)),
            ("verb".into(), Value::Str("checkpoint".into())),
            ("folded".into(), Value::Int(folded as i64)),
            ("server_us".into(), Value::Int(elapsed.as_micros() as i64)),
        ]),
        Ok(WriteResult::Failed {
            code,
            message,
            retry_after_ms,
        }) => {
            toss_obs::metrics::counter(match code {
                ErrorCode::Degraded => "toss.serve.errors.degraded",
                ErrorCode::BadRequest => "toss.serve.errors.bad_request",
                ErrorCode::Internal => "toss.serve.errors.internal",
                _ => "toss.serve.errors.bad_request",
            })
            .inc();
            error_payload(code, &message, retry_after_ms)
        }
        // The ack did not arrive inside the class deadline. The write
        // may still commit — that is exactly what the idempotency key
        // is for: the client retries with the same key and either gets
        // the deduped original outcome or a fresh apply.
        Err(_) => {
            toss_obs::metrics::counter("toss.serve.write.ack_timeouts").inc();
            error_payload(
                ErrorCode::Overloaded,
                "write ack timed out; retry with the same idempotency key",
                Some(shared.retry_after_ms()),
            )
        }
    }
}

/// Stamp one finished query into the telemetry pipeline: the flight
/// recorder, the slow-query log, and the class's SLO window (whose
/// gauges are refreshed in the same breath).
#[allow(clippy::too_many_arguments)]
fn stamp_query(
    shared: &Shared,
    qid: QueryId,
    q: &QueryRequest,
    total: Duration,
    queue_wait: Duration,
    gov: Option<&QueryGovernor>,
    out: Option<&QueryOutcome>,
    outcome: QueryOutcomeKind,
    cause: &str,
) {
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    let mut degraded = Vec::new();
    if let Some(d) = out.and_then(|o| o.degradation.as_ref()) {
        degraded.push(d.to_string());
    } else if let Some(d) = gov.and_then(|g| g.degradation()) {
        degraded.push(d.to_string());
    }
    let rec = QueryRecord {
        query_id: qid.0,
        class: q.class.as_str().to_string(),
        query: match out {
            Some(o) => o.xpath.clone(),
            None => format!("{}//{}", q.collection, q.root),
        },
        plan: out
            .and_then(|o| o.plan.as_ref())
            .map(|p| p.to_string())
            .unwrap_or_default(),
        outcome,
        cause: cause.to_string(),
        total_ns,
        queue_wait_ns: queue_wait.as_nanos().min(u64::MAX as u128) as u64,
        rewrite_ns: out
            .map(|o| o.rewrite_time().as_nanos() as u64)
            .unwrap_or(0),
        execute_ns: out
            .map(|o| o.execute_time().as_nanos() as u64)
            .unwrap_or(0),
        convert_ns: out
            .map(|o| o.convert_time().as_nanos() as u64)
            .unwrap_or(0),
        terms_used: gov.map(|g| g.terms_used()).unwrap_or(0),
        docs_scanned: gov.map(|g| g.docs_scanned()).unwrap_or(0),
        memory_bytes: gov.map(|g| g.memory_used()).unwrap_or(0),
        answers: out.map(|o| o.forest.len() as u64).unwrap_or(0),
        degraded,
        ..QueryRecord::default()
    };
    if let Some(log) = &shared.slow_log {
        log.offer(&rec);
    }
    shared.flight.record(rec);
    let w = shared.window_for(q.class);
    w.record(total_ns, outcome);
    w.snapshot()
        .publish_gauges(&format!("toss.serve.window.{}", q.class.as_str()));
}

fn handle_query(shared: &Arc<Shared>, entry: &Arc<ConnEntry>, q: &QueryRequest) -> String {
    // Ingress: every query request gets a process-unique id, set as the
    // thread's current query so every span underneath (admission,
    // planner, executor, xmldb) is stamped with it.
    let qid = QueryId::next();
    let _ctx = toss_obs::set_current_query(qid);
    let started = Instant::now();

    if shared.state() != STATE_RUNNING {
        toss_obs::metrics::counter("toss.serve.errors.shutting_down").inc();
        stamp_query(
            shared,
            qid,
            q,
            started.elapsed(),
            Duration::ZERO,
            None,
            None,
            QueryOutcomeKind::Error,
            ErrorCode::ShuttingDown.as_str(),
        );
        return error_payload(
            ErrorCode::ShuttingDown,
            "server is draining",
            Some(shared.cfg.drain_deadline.as_millis().max(10) as u64),
        );
    }
    let (query, mode) = match crate::protocol::build_query(q) {
        Ok(x) => x,
        Err(e) => {
            toss_obs::metrics::counter("toss.serve.errors.bad_request").inc();
            stamp_query(
                shared,
                qid,
                q,
                started.elapsed(),
                Duration::ZERO,
                None,
                None,
                QueryOutcomeKind::Error,
                ErrorCode::BadRequest.as_str(),
            );
            return error_payload(ErrorCode::BadRequest, &e.to_string(), None);
        }
    };
    let budget = q.class.budget(q.timeout_ms, q.max_terms, q.max_docs);
    let gov = QueryGovernor::new(budget);

    // Expose the token so drain can cancel us, and count ourselves
    // in-flight so drain waits for us.
    *entry.token.lock().unwrap_or_else(|e| e.into_inner()) = Some(gov.token());
    shared.inflight.fetch_add(1, Ordering::AcqRel);
    toss_obs::metrics::gauge("toss.serve.inflight").inc();

    // Hold the executor read lock for the query's whole execution:
    // in-flight reads keep a consistent snapshot (the writer thread's
    // apply phase takes the write lock, so a batch becomes visible
    // between queries, never inside one). The lock is taken *inside*
    // the admission closure — after the permit is granted — so a query
    // waiting in the admission queue does not hold a read guard that
    // would stall the writer's apply phase (and inflate write ack
    // latency into the client's retry window).
    let (queue_wait, result) = shared.admission.run_with_wait(&gov, || {
        let executor = shared.executor.read().unwrap_or_else(|e| e.into_inner());
        executor.select_governed(&query, mode, &gov)
    });
    let elapsed = started.elapsed();

    shared.inflight.fetch_sub(1, Ordering::AcqRel);
    toss_obs::metrics::gauge("toss.serve.inflight").dec();
    *entry.token.lock().unwrap_or_else(|e| e.into_inner()) = None;
    shared.notify();
    toss_obs::metrics::histogram("toss.serve.request_ns").observe_duration(elapsed);

    match result {
        Ok(out) => {
            stamp_query(
                shared,
                qid,
                q,
                elapsed,
                queue_wait,
                Some(&gov),
                Some(&out),
                QueryOutcomeKind::Ok,
                "",
            );
            let results: Vec<Value> = out
                .forest
                .iter()
                .take(q.max_results)
                .map(|t| Value::Str(tree_to_xml(t, Style::Compact)))
                .collect();
            ok_payload(vec![
                ("query_id".into(), Value::Int(qid.0 as i64)),
                ("answers".into(), Value::Int(out.forest.len() as i64)),
                ("returned".into(), Value::Int(results.len() as i64)),
                ("xpath".into(), Value::Str(out.xpath.clone())),
                (
                    "degraded".into(),
                    match &out.degradation {
                        Some(d) => Value::Str(d.to_string()),
                        None => Value::Null,
                    },
                ),
                ("results".into(), Value::Array(results)),
                ("server_us".into(), Value::Int(elapsed.as_micros() as i64)),
            ])
        }
        Err(e) => {
            let code = error_code_of(&e);
            toss_obs::metrics::counter(match code {
                ErrorCode::Overloaded => "toss.serve.errors.overloaded",
                ErrorCode::BudgetExceeded => "toss.serve.errors.budget_exceeded",
                ErrorCode::Cancelled => "toss.serve.errors.cancelled",
                ErrorCode::Internal => "toss.serve.errors.internal",
                _ => "toss.serve.errors.bad_request",
            })
            .inc();
            stamp_query(
                shared,
                qid,
                q,
                elapsed,
                queue_wait,
                Some(&gov),
                None,
                if code == ErrorCode::Overloaded {
                    QueryOutcomeKind::Shed
                } else {
                    QueryOutcomeKind::Error
                },
                code.as_str(),
            );
            let retry = match code {
                ErrorCode::Overloaded => Some(shared.retry_after_ms()),
                // cancelled-by-drain: the peer should come back once a
                // replacement is up; give it the drain window as a hint
                ErrorCode::Cancelled if shared.state() != STATE_RUNNING => {
                    Some(shared.cfg.drain_deadline.as_millis().max(10) as u64)
                }
                _ => None,
            };
            error_payload(code, &e.to_string(), retry)
        }
    }
}

/// Build one class window's wire object for the `stats` frame.
fn window_value(s: &WindowSnapshot) -> Value {
    Value::Object(vec![
        ("requests".into(), Value::Int(s.requests as i64)),
        ("errors".into(), Value::Int(s.errors as i64)),
        ("shed".into(), Value::Int(s.shed as i64)),
        ("p50_ns".into(), Value::Int(s.p50_ns as i64)),
        ("p95_ns".into(), Value::Int(s.p95_ns as i64)),
        ("p99_ns".into(), Value::Int(s.p99_ns as i64)),
        (
            "error_rate_bps".into(),
            Value::Int((s.error_rate() * 10_000.0).round() as i64),
        ),
        (
            "shed_rate_bps".into(),
            Value::Int((s.shed_rate() * 10_000.0).round() as i64),
        ),
        ("window_ms".into(), Value::Int(s.window.as_millis() as i64)),
    ])
}

/// The `stats` admin frame: per-class windowed SLO figures plus process
/// gauges, in one structured response (`toss-cli top` polls this).
fn stats_payload(shared: &Arc<Shared>) -> String {
    let windows = shared.publish_windows();
    let window_fields: Vec<(String, Value)> = windows
        .iter()
        .map(|(class, s)| (class.as_str().to_string(), window_value(s)))
        .collect();
    ok_payload(vec![
        (
            "uptime_ms".into(),
            Value::Int(shared.started.elapsed().as_millis() as i64),
        ),
        (
            "inflight".into(),
            Value::Int(shared.inflight.load(Ordering::Acquire) as i64),
        ),
        (
            "connections".into(),
            Value::Int(shared.conn_count() as i64),
        ),
        ("windows".into(), Value::Object(window_fields)),
        ("write".into(), write_stats_value(shared)),
        (
            "flight".into(),
            Value::Object(vec![
                (
                    "recorded".into(),
                    Value::Int(shared.flight.recorded() as i64),
                ),
                ("retained".into(), Value::Int(shared.flight.len() as i64)),
                (
                    "capacity".into(),
                    Value::Int(shared.flight.capacity() as i64),
                ),
            ]),
        ),
    ])
}

/// The `stats` frame's write-path object: writability, degraded state
/// (with its reason), the executor revision, and the writer's counters.
fn write_stats_value(shared: &Arc<Shared>) -> Value {
    let revision = shared
        .executor
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .revision();
    match &shared.write_state {
        None => Value::Object(vec![
            ("writable".into(), Value::Bool(false)),
            ("revision".into(), Value::Int(revision as i64)),
        ]),
        Some(st) => {
            let u = |a: &AtomicU64| a.load(Ordering::Relaxed) as i64;
            Value::Object(vec![
                ("writable".into(), Value::Bool(true)),
                ("degraded".into(), Value::Bool(st.is_degraded())),
                ("fatal".into(), Value::Bool(st.is_fatal())),
                ("reason".into(), Value::Str(st.degraded_reason())),
                ("revision".into(), Value::Int(revision as i64)),
                ("applied".into(), Value::Int(u(&st.applied))),
                ("deduped".into(), Value::Int(u(&st.deduped))),
                ("rejected".into(), Value::Int(u(&st.rejected))),
                ("batches".into(), Value::Int(u(&st.batches))),
                ("checkpoints".into(), Value::Int(u(&st.checkpoints))),
                ("last_fsync_ns".into(), Value::Int(u(&st.last_fsync_ns))),
                ("last_seq".into(), Value::Int(u(&st.last_seq))),
            ])
        }
    }
}

/// The `slow` admin frame: recent flight-recorder entries, newest
/// first, optionally filtered to one budget class.
fn slow_payload(shared: &Arc<Shared>, limit: usize, class: Option<BudgetClass>) -> String {
    // With a class filter, look back over the whole ring so the limit
    // counts *matching* entries, not scanned ones.
    let lookback = if class.is_some() {
        shared.flight.capacity()
    } else {
        limit
    };
    let entries: Vec<Value> = shared
        .flight
        .recent(lookback)
        .into_iter()
        .filter(|r| class.is_none_or(|c| r.class == c.as_str()))
        .take(limit)
        .map(|r| record_to_value(&r))
        .collect();
    ok_payload(vec![("queries".into(), Value::Array(entries))])
}

/// Convenience: build the default budget-class table description used
/// by docs and the CLI banner.
pub fn budget_class_summary() -> String {
    [
        BudgetClass::BestEffort,
        BudgetClass::Interactive,
        BudgetClass::Batch,
    ]
    .iter()
    .map(|c| {
        let b = c.budget(None, None, None);
        format!(
            "{}: deadline {:?}, terms {}, docs {}",
            c.as_str(),
            b.deadline.unwrap(),
            b.max_expansion_terms.unwrap().max,
            b.max_docs_scanned.unwrap().max,
        )
    })
    .collect::<Vec<_>>()
    .join("; ")
}
