//! The live write path: a single writer thread draining mutation frames
//! into the WAL with **group commit**, then applying them to the shared
//! [`Executor`] under a short write lock.
//!
//! ## The ack contract
//!
//! A write is acknowledged only after the journal batch containing it
//! has been appended **and fsynced** ([`toss_xmldb::DurableWriter::append_batch`]
//! is all-or-nothing: one append, one fsync, no sequence numbers
//! consumed on failure). `ack ⇒ fsynced ⇒ survives crash` — the crash
//! campaign in `tests/serve.rs` replays kill schedules against exactly
//! this invariant.
//!
//! ## Group commit
//!
//! The writer collects a batch for at most the *smallest*
//! [`BudgetClass::group_commit_window`] among its members (an
//! interactive write shrinks the window; batch writes ride along), then
//! validates the whole batch with [`toss_xmldb::BatchValidator`]
//! (sequential overlay: later ops may depend on earlier ones),
//! re-enhances the SEO when the batch touched the ontology (*before*
//! journaling — nothing fallible may run between fsync and ack),
//! journals it with a single fsync, applies it under the executor
//! write lock, bumps the revision **once** via
//! [`Executor::note_write_batch`] — which also swaps in the
//! re-enhanced SEO, invalidating the version-keyed rewrite cache
//! exactly once — and only then acks every waiter.
//!
//! ## Idempotency
//!
//! Every mutation frame carries a client-generated key. Acknowledged
//! keys go into a bounded FIFO dedupe table; a replayed key (a retry of
//! a write whose ack was lost) is answered from the table without
//! re-applying. This is what makes `toss-client`'s jittered retry safe
//! for writes. Three layers close the retry window:
//!
//! * **in-batch** — a retry that lands in the *same* group-commit batch
//!   as the original (the original was still queued when the client
//!   timed out) is parked during validation and collapsed onto the
//!   first job's outcome, never validated or applied twice;
//! * **in-process** — the bounded table answers replays for the most
//!   recent [`WriteConfig::dedupe_capacity`] acknowledged keys;
//! * **across restart** — each key is journaled inside its record
//!   ([`toss_xmldb::DurableWriter::append_batch_keyed`]), and the table
//!   is reseeded from the journal tail on startup, so a retry of a
//!   write acknowledged just before a crash still dedupes (the replayed
//!   ack carries the original `seq` but no `doc_id`).
//!
//! The guarantee is therefore *bounded*, not absolute: a key evicted
//! from the table (more than `dedupe_capacity` newer acks) or folded
//! out of the journal by a checkpoint no longer dedupes. Size
//! `dedupe_capacity` to at least the peak write rate times the client
//! retry policy's maximum backoff window.
//!
//! ## Degradation and self-healing
//!
//! When a journal append still fails after the retry/backoff budget
//! (ENOSPC, persistent I/O errors), the server flips to **read-only
//! degraded** state: writes are rejected with a typed `degraded` frame
//! carrying the reason and a retry hint, reads keep flowing, and the
//! `toss.serve.degraded` gauge goes to 1. The writer thread then probes
//! the journal on every idle tick ([`toss_xmldb::DurableWriter::probe`]
//! appends a `Noop`, repairing a poisoned journal first); the first
//! successful probe clears degraded state.
//!
//! One degradation is **fatal** and does not self-heal: a validated op
//! that fails to *apply* after its batch fsynced means the journal is
//! ahead of memory. Accepting more writes (or healing on a probe) would
//! compound the divergence, so the server stays read-only until a
//! restart replays the journal and reconverges. Nothing fallible runs
//! between fsync and apply — SEO re-enhancement happens *before* the
//! journal append — so this path is reachable only through a bug, and
//! it is contained rather than papered over.
//!
//! ## Checkpoints
//!
//! A checkpoint serializes the store and the SEO sidecar under a *read*
//! lock (readers keep running), persists both lock-free, verifies the
//! snapshot by reloading it, and only then truncates the journal to the
//! records at or past the cursor. Ontology mutations are store no-ops,
//! so the sidecar (`<snapshot>.ont.json`) plus the journal tail is what
//! reconstructs the hierarchy on restart — see [`recover_ontology`].

use crate::budget::BudgetClass;
use crate::protocol::{ErrorCode, WriteOp};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use toss_core::Executor;
use toss_json::Value;
use toss_obs::QueryRecord;
use toss_ontology::hierarchy::Hierarchy;
use toss_ontology::seo::Seo;
use toss_xmldb::storage::save_json_with_vfs;
use toss_xmldb::{
    apply_op, BatchValidator, DurableWriter, JournalOp, JournalRecord, Vfs,
};

/// Rebuild a [`Seo`] from a grown hierarchy. The serving layer is
/// metric-agnostic: the embedder (CLI, tests) closes over whatever
/// metric and ε the original SEO was built with.
pub type Enhancer = Box<dyn Fn(&Hierarchy) -> Result<Seo, String> + Send>;

/// Tunables for the writer thread.
pub struct WriteConfig {
    /// Ceiling on ops per group-commit batch.
    pub max_batch: usize,
    /// Bounded recent-keys dedupe table size (FIFO eviction).
    pub dedupe_capacity: usize,
    /// Journal-append retries before flipping to degraded.
    pub append_retries: u32,
    /// Backoff between append retries.
    pub append_backoff: Duration,
    /// Auto-checkpoint once this many journal records accumulate
    /// (0 disables; explicit `checkpoint` frames always work).
    pub checkpoint_every: usize,
    /// Idle tick: degraded-mode probe cadence and queue poll interval.
    pub tick: Duration,
}

impl Default for WriteConfig {
    fn default() -> Self {
        WriteConfig {
            max_batch: 64,
            dedupe_capacity: 1024,
            append_retries: 2,
            append_backoff: Duration::from_millis(5),
            checkpoint_every: 4096,
            tick: Duration::from_millis(50),
        }
    }
}

/// The durability half a writable server owns: the WAL writer split off
/// a [`toss_xmldb::DurableDatabase`], the live ontology hierarchy, and
/// the enhancer that rebuilds the SEO after ontology mutations.
pub struct WriteEngine {
    /// Journal + snapshot path + vfs (from `DurableDatabase::into_parts`).
    pub writer: DurableWriter,
    /// The authoritative hierarchy the ontology ops mutate.
    pub hierarchy: Hierarchy,
    /// Rebuilds the SEO from the hierarchy after ontology mutations.
    pub enhancer: Enhancer,
    /// Writer-thread tunables.
    pub config: WriteConfig,
}

/// Observable writer state, shared with connection threads (ingress
/// rejection) and the `stats` admin frame.
#[derive(Debug, Default)]
pub struct WriteState {
    degraded: AtomicBool,
    /// A fatal degradation (journal ahead of memory) that must not
    /// self-heal: the idle-tick probe skips it, only a restart clears it.
    fatal: AtomicBool,
    reason: Mutex<String>,
    /// Mutations applied (excluding dedupe hits and checkpoints).
    pub applied: AtomicU64,
    /// Replayed idempotency keys answered from the dedupe table.
    pub deduped: AtomicU64,
    /// Writes rejected by validation.
    pub rejected: AtomicU64,
    /// Group-commit batches fsynced.
    pub batches: AtomicU64,
    /// Checkpoints completed.
    pub checkpoints: AtomicU64,
    /// Duration of the most recent batch fsync, nanoseconds.
    pub last_fsync_ns: AtomicU64,
    /// Highest acknowledged journal sequence number.
    pub last_seq: AtomicU64,
}

impl WriteState {
    /// Whether the server is in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// The degradation reason ("" when healthy).
    pub fn degraded_reason(&self) -> String {
        self.reason.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Whether the degradation is fatal (read-only until restart).
    pub fn is_fatal(&self) -> bool {
        self.fatal.load(Ordering::Acquire)
    }

    fn enter_degraded(&self, reason: String) {
        *self.reason.lock().unwrap_or_else(|e| e.into_inner()) = reason;
        if !self.degraded.swap(true, Ordering::AcqRel) {
            toss_obs::metrics::counter("toss.serve.write.degraded_entered").inc();
        }
        toss_obs::metrics::gauge("toss.serve.degraded").set(1);
    }

    /// Degrade with no self-heal: the journal holds records memory did
    /// not apply, so writes stay off until a restart replays them.
    fn enter_fatal(&self, reason: String) {
        self.fatal.store(true, Ordering::Release);
        self.enter_degraded(reason);
    }

    fn clear_degraded(&self) {
        self.reason.lock().unwrap_or_else(|e| e.into_inner()).clear();
        if self.degraded.swap(false, Ordering::AcqRel) {
            toss_obs::metrics::counter("toss.serve.write.healed").inc();
        }
        toss_obs::metrics::gauge("toss.serve.degraded").set(0);
    }
}

/// One enqueued mutation: the frame's contents plus the channel its
/// connection thread blocks on until the batch fsyncs.
pub(crate) struct WriteJob {
    pub op: WriteOp,
    pub key: String,
    pub class: BudgetClass,
    pub query_id: u64,
    pub enqueued: Instant,
    pub reply: SyncSender<WriteResult>,
}

/// The writer thread's verdict on one job.
#[derive(Debug, Clone)]
pub(crate) enum WriteResult {
    /// Journaled, fsynced and applied (or collapsed onto a previously
    /// acknowledged write with the same key).
    Applied {
        seq: u64,
        doc_id: Option<u64>,
        deduped: bool,
        batch_size: u64,
        fsync_ns: u64,
    },
    /// A checkpoint completed; `folded` journal records were truncated.
    CheckpointDone { folded: u64 },
    /// Rejected (validation, degradation, internal fault).
    Failed {
        code: ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    },
}

/// The outcome cached per acknowledged idempotency key.
#[derive(Debug, Clone, Copy)]
struct AckedOutcome {
    seq: u64,
    doc_id: Option<u64>,
}

/// Bounded FIFO map of recently acknowledged idempotency keys.
struct DedupeTable {
    capacity: usize,
    map: HashMap<String, AckedOutcome>,
    order: VecDeque<String>,
}

impl DedupeTable {
    fn new(capacity: usize) -> Self {
        DedupeTable {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &str) -> Option<AckedOutcome> {
        self.map.get(key).copied()
    }

    fn insert(&mut self, key: String, outcome: AckedOutcome) {
        if self.map.insert(key.clone(), outcome).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// The sidecar path holding the persisted SEO next to the snapshot.
pub fn sidecar_path(snapshot: &Path) -> PathBuf {
    snapshot.with_extension("ont.json")
}

/// Load the ontology sidecar, returning its journal cursor and the
/// persisted SEO. `None` when absent or unreadable (fresh store, or a
/// sidecar torn by a crash — the caller falls back to its baseline
/// ontology plus a full journal replay).
pub fn load_sidecar(vfs: &dyn Vfs, snapshot: &Path) -> Option<(u64, Seo)> {
    let bytes = vfs.read(&sidecar_path(snapshot)).ok()?;
    let text = String::from_utf8(bytes).ok()?;
    let v = Value::parse(&text).ok()?;
    let cursor = v.get("cursor").and_then(Value::as_i64)?.max(0) as u64;
    let seo =
        toss_ontology::persist::seo_from_json(&v.get("seo")?.to_json()).ok()?;
    Some((cursor, seo))
}

/// Replay the ontology tail of a journal scan onto `hierarchy`: every
/// `add_term`/`add_edge` record with `seq >= cursor` (doc ops and
/// no-ops are skipped — the store replay handled those). Returns how
/// many records mutated the hierarchy.
pub fn recover_ontology(
    hierarchy: &mut Hierarchy,
    records: &[JournalRecord],
    cursor: u64,
) -> usize {
    let mut applied = 0;
    for rec in records.iter().filter(|r| r.seq >= cursor) {
        match &rec.op {
            JournalOp::AddTerm { terms } => {
                for t in terms {
                    hierarchy.add_term(t);
                }
                applied += 1;
            }
            // a cycle here means the edge was journaled against a
            // different hierarchy state; skip rather than die — the
            // journal is replayed leniently, like store recovery
            JournalOp::AddEdge { below, above }
                if hierarchy.add_leq(below, above).is_ok() =>
            {
                applied += 1;
            }
            _ => {}
        }
    }
    applied
}

/// Convert a wire mutation into its journal form. `Checkpoint` has no
/// journal form (it is a writer-thread action, not a logged op).
fn to_journal_op(op: &WriteOp) -> Option<JournalOp> {
    Some(match op {
        WriteOp::InsertDoc { collection, xml } => JournalOp::Insert {
            collection: collection.clone(),
            xml: xml.clone(),
        },
        WriteOp::DeleteDoc { collection, doc_id } => JournalOp::Remove {
            collection: collection.clone(),
            doc_id: *doc_id,
        },
        WriteOp::AddTerm { terms } => JournalOp::AddTerm {
            terms: terms.clone(),
        },
        WriteOp::AddEdge { below, above } => JournalOp::AddEdge {
            below: below.clone(),
            above: above.clone(),
        },
        WriteOp::Checkpoint => return None,
    })
}

/// Everything the writer thread owns while running.
pub(crate) struct WriterLoop {
    engine: WriteEngine,
    executor: Arc<RwLock<Executor>>,
    state: Arc<WriteState>,
    dedupe: DedupeTable,
    /// Telemetry sink provided by the server (flight recorder +
    /// slow-query log + SLO window for the job's class).
    stamp: Box<dyn Fn(QueryRecord) + Send>,
}

impl WriterLoop {
    pub(crate) fn new(
        engine: WriteEngine,
        executor: Arc<RwLock<Executor>>,
        state: Arc<WriteState>,
        stamp: Box<dyn Fn(QueryRecord) + Send>,
    ) -> Self {
        let mut dedupe = DedupeTable::new(engine.config.dedupe_capacity);
        // Reseed from the journal tail: every record journaled under an
        // idempotency key was acknowledged (or was about to be), so a
        // client retrying across our restart must dedupe, not re-apply.
        // Replayed outcomes keep their seq but not their doc id.
        if let Ok(records) = engine.writer.journal_records() {
            for rec in &records {
                if let Some(key) = &rec.key {
                    dedupe.insert(
                        key.clone(),
                        AckedOutcome {
                            seq: rec.seq,
                            doc_id: None,
                        },
                    );
                }
            }
        }
        WriterLoop {
            engine,
            executor,
            state,
            dedupe,
            stamp,
        }
    }

    /// The thread body: drain jobs until every sender is gone (server
    /// drain drops the queue's sender after refusing new writes, so
    /// already-enqueued writes still commit and ack during shutdown).
    pub(crate) fn run(mut self, rx: Receiver<WriteJob>) {
        loop {
            match rx.recv_timeout(self.engine.config.tick) {
                Ok(job) => {
                    let (batch, checkpoint) = self.collect_batch(job, &rx);
                    if !batch.is_empty() {
                        self.commit_batch(batch);
                    }
                    if let Some(cp) = checkpoint {
                        self.run_checkpoint(cp);
                    }
                }
                Err(RecvTimeoutError::Timeout) => self.idle_tick(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Collect one group-commit batch starting at `first`. The window
    /// is the smallest member's class window, measured from the first
    /// job; a `checkpoint` job closes the batch and is returned
    /// separately (it must run after the batch it arrived behind).
    fn collect_batch(
        &mut self,
        first: WriteJob,
        rx: &Receiver<WriteJob>,
    ) -> (Vec<WriteJob>, Option<WriteJob>) {
        let t0 = Instant::now();
        let mut window = first.class.group_commit_window();
        let mut batch = Vec::new();
        let mut checkpoint = None;
        let push = |job: WriteJob,
                        window: &mut Duration,
                        batch: &mut Vec<WriteJob>,
                        checkpoint: &mut Option<WriteJob>| {
            if matches!(job.op, WriteOp::Checkpoint) {
                *checkpoint = Some(job);
                true // checkpoint closes the batch
            } else {
                *window = (*window).min(job.class.group_commit_window());
                batch.push(job);
                false
            }
        };
        let closed = push(first, &mut window, &mut batch, &mut checkpoint);
        if !closed {
            while batch.len() < self.engine.config.max_batch {
                let left = window.checked_sub(t0.elapsed()).unwrap_or_default();
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(job) => {
                        if push(job, &mut window, &mut batch, &mut checkpoint) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        (batch, checkpoint)
    }

    /// Degraded-mode self-heal: probe the journal; the first successful
    /// probe clears the flag. Healthy idle ticks are free. A *fatal*
    /// degradation (journal ahead of memory) is never probed — a
    /// healthy disk would not make the divergence go away.
    fn idle_tick(&mut self) {
        if !self.state.is_degraded() || self.state.is_fatal() {
            return;
        }
        match self.engine.writer.probe() {
            Ok(_) => {
                self.state.clear_degraded();
                toss_obs::metrics::counter("toss.serve.write.probes_ok").inc();
            }
            Err(_) => {
                toss_obs::metrics::counter("toss.serve.write.probes_failed").inc();
            }
        }
    }

    /// Validate, journal (group commit), apply, ack.
    fn commit_batch(&mut self, batch: Vec<WriteJob>) {
        // Degraded ingress check is done by connection threads, but a
        // job can race the flag flip; reject here too.
        if self.state.is_degraded() {
            let reason = self.state.degraded_reason();
            for job in batch {
                self.finish(
                    job,
                    WriteResult::Failed {
                        code: ErrorCode::Degraded,
                        message: format!("server is read-only: {reason}"),
                        retry_after_ms: Some(500),
                    },
                );
            }
            return;
        }

        // Phase 1 — validate under a read lock (readers unaffected;
        // the single-writer invariant means nobody else mutates).
        // Dedupe hits are answered immediately; invalid ops are
        // rejected to their own clients and dropped from the batch. A
        // key repeated *within* the batch — a retry that caught up
        // with its still-queued original, e.g. after an ack timeout
        // while the writer sat in a long checkpoint — is parked and
        // collapsed onto the first job's outcome, never applied twice.
        let mut accepted: Vec<(WriteJob, JournalOp)> = Vec::new();
        let mut dups: Vec<WriteJob> = Vec::new();
        let mut outcomes: HashMap<String, WriteResult> = HashMap::new();
        let mut batch_keys: HashSet<String> = HashSet::new();
        let mut ontology_scratch: Option<Hierarchy> = None;
        {
            let exec = self.executor.read().unwrap_or_else(|e| e.into_inner());
            let mut validator = BatchValidator::new(&exec.db);
            for job in batch {
                if let Some(hit) = self.dedupe.get(&job.key) {
                    self.answer_dedupe_hit(job, hit);
                    continue;
                }
                if !batch_keys.insert(job.key.clone()) {
                    dups.push(job);
                    continue;
                }
                let Some(jop) = to_journal_op(&job.op) else {
                    continue; // checkpoint never reaches here
                };
                let verdict = match &jop {
                    JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. } => {
                        // ontology ops validate against a scratch clone
                        // so in-batch edges see in-batch terms; a failed
                        // op must not leak half its effects into the
                        // scratch, hence the pre-op snapshot
                        let scratch = ontology_scratch
                            .get_or_insert_with(|| self.engine.hierarchy.clone());
                        let before = scratch.clone();
                        let r = match &jop {
                            JournalOp::AddTerm { terms } => {
                                for t in terms {
                                    scratch.add_term(t);
                                }
                                Ok(())
                            }
                            JournalOp::AddEdge { below, above } => scratch
                                .add_leq(below, above)
                                .map(|_| ())
                                .map_err(|e| e.to_string()),
                            _ => unreachable!(),
                        };
                        if r.is_err() {
                            *scratch = before;
                        }
                        r
                    }
                    other => validator.check(other).map_err(|e| e.to_string()),
                };
                match verdict {
                    Ok(()) => accepted.push((job, jop)),
                    Err(msg) => {
                        self.state.rejected.fetch_add(1, Ordering::Relaxed);
                        toss_obs::metrics::counter("toss.serve.write.rejected").inc();
                        let result = WriteResult::Failed {
                            code: ErrorCode::BadRequest,
                            message: msg,
                            retry_after_ms: None,
                        };
                        outcomes.insert(job.key.clone(), result.clone());
                        self.finish(job, result);
                    }
                }
            }
        }
        if !accepted.is_empty() {
            self.commit_accepted(accepted, ontology_scratch, &mut outcomes);
        }
        // Parked in-batch duplicates collapse onto their first job's
        // outcome: the original ack (as a dedupe hit) if it applied,
        // the identical failure otherwise.
        for job in dups {
            let result = match outcomes.get(&job.key) {
                Some(WriteResult::Applied { seq, doc_id, .. }) => {
                    self.state.deduped.fetch_add(1, Ordering::Relaxed);
                    toss_obs::metrics::counter("toss.serve.write.dedupe_hits").inc();
                    WriteResult::Applied {
                        seq: *seq,
                        doc_id: *doc_id,
                        deduped: true,
                        batch_size: 0,
                        fsync_ns: 0,
                    }
                }
                Some(other) => other.clone(),
                // unreachable — every first-occurrence job records an
                // outcome on every path — but a typed answer beats a
                // hung client if that ever changes
                None => WriteResult::Failed {
                    code: ErrorCode::Internal,
                    message: "duplicate of an unresolved write".into(),
                    retry_after_ms: None,
                },
            };
            self.finish(job, result);
        }
    }

    /// Answer a job whose key is already in the dedupe table: re-send
    /// the original ack, apply nothing.
    fn answer_dedupe_hit(&self, job: WriteJob, hit: AckedOutcome) {
        self.state.deduped.fetch_add(1, Ordering::Relaxed);
        toss_obs::metrics::counter("toss.serve.write.dedupe_hits").inc();
        self.finish(
            job,
            WriteResult::Applied {
                seq: hit.seq,
                doc_id: hit.doc_id,
                deduped: true,
                batch_size: 0,
                fsync_ns: 0,
            },
        );
    }

    /// Phases 2–4 for the validated jobs: enhance, group-commit,
    /// apply, ack. Every job's result is also recorded in `outcomes`
    /// under its key, so parked in-batch duplicates can collapse onto
    /// it.
    fn commit_accepted(
        &mut self,
        mut accepted: Vec<(WriteJob, JournalOp)>,
        ontology_scratch: Option<Hierarchy>,
        outcomes: &mut HashMap<String, WriteResult>,
    ) {
        // Phase 2a — re-enhance the SEO from the validated scratch
        // hierarchy BEFORE journaling anything: the enhancer is
        // arbitrary fallible embedder code, and nothing fallible may
        // run between fsync and ack — a failure there would leave ops
        // durable (silently replayed on restart) while their clients
        // hear "failed". Failing here costs nothing durable, and only
        // the ontology jobs fail; doc ops ride on.
        let mut new_seo: Option<Arc<Seo>> = None;
        let mut new_hierarchy: Option<Hierarchy> = None;
        if let Some(scratch) = ontology_scratch {
            match (self.engine.enhancer)(&scratch) {
                Ok(seo) => {
                    new_seo = Some(Arc::new(seo));
                    new_hierarchy = Some(scratch);
                }
                Err(e) => {
                    let msg = format!("SEO re-enhancement failed: {e}");
                    toss_obs::metrics::counter("toss.serve.write.enhance_failures")
                        .inc();
                    let (onto, rest): (Vec<_>, Vec<_>) =
                        accepted.into_iter().partition(|(_, op)| {
                            matches!(
                                op,
                                JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. }
                            )
                        });
                    accepted = rest;
                    for (job, _) in onto {
                        self.state.rejected.fetch_add(1, Ordering::Relaxed);
                        let result = WriteResult::Failed {
                            code: ErrorCode::Internal,
                            message: msg.clone(),
                            retry_after_ms: None,
                        };
                        outcomes.insert(job.key.clone(), result.clone());
                        self.finish(job, result);
                    }
                    if accepted.is_empty() {
                        return;
                    }
                }
            }
        }

        // Phase 2 — group commit: one journal append + one fsync for
        // the whole batch, with a bounded retry/backoff budget. Each
        // record carries its job's idempotency key, so a restarted
        // server reseeds its dedupe table from the journal tail. Ack
        // nothing before this succeeds.
        let ops: Vec<(JournalOp, Option<String>)> = accepted
            .iter()
            .map(|(job, op)| (op.clone(), Some(job.key.clone())))
            .collect();
        let fsync_started = Instant::now();
        let mut attempt = 0;
        let seqs = loop {
            match self.engine.writer.append_batch_keyed(&ops) {
                Ok(seqs) => break Some(seqs),
                Err(e) if attempt < self.engine.config.append_retries => {
                    attempt += 1;
                    toss_obs::metrics::counter("toss.serve.write.append_retries").inc();
                    std::thread::sleep(self.engine.config.append_backoff);
                    let _ = e;
                }
                Err(e) => {
                    // past the budget: flip to read-only degraded, fail
                    // the whole batch with the typed frame. Nothing was
                    // acked, nothing was applied; the journal consumed
                    // no sequence numbers.
                    self.state.enter_degraded(e.to_string());
                    for (job, _) in accepted.drain(..) {
                        let result = WriteResult::Failed {
                            code: ErrorCode::Degraded,
                            message: format!("journal append failed: {e}"),
                            retry_after_ms: Some(500),
                        };
                        outcomes.insert(job.key.clone(), result.clone());
                        self.finish(job, result);
                    }
                    break None;
                }
            }
        };
        let Some(seqs) = seqs else { return };
        let fsync_ns =
            fsync_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let batch_size = accepted.len() as u64;
        toss_obs::metrics::histogram("toss.serve.write.batch_fsync_ns")
            .observe(fsync_ns);
        toss_obs::metrics::histogram("toss.serve.write.batch_size").observe(batch_size);

        // Phase 3 — apply under the write lock. After validation (and
        // the pre-fsync enhancement above) nothing here can fail; the
        // revision bumps once per batch, and an ontology-touching
        // batch swaps in the re-enhanced SEO in the same breath (one
        // rewrite-cache invalidation).
        if let Some(h) = new_hierarchy {
            self.engine.hierarchy = h;
        }
        let mut doc_ids: Vec<Option<u64>> = Vec::with_capacity(accepted.len());
        let mut apply_err: Option<String> = None;
        {
            let mut exec = self.executor.write().unwrap_or_else(|e| e.into_inner());
            for (_, op) in &accepted {
                match apply_op(&mut exec.db, op) {
                    Ok(id) => doc_ids.push(id.map(|d| d.0)),
                    Err(e) => {
                        apply_err = Some(e.to_string());
                        toss_obs::metrics::counter("toss.serve.write.apply_faults")
                            .inc();
                        break;
                    }
                }
            }
            // The revision bumps even on a fault: whatever prefix did
            // apply must still invalidate the version-keyed caches.
            exec.note_write_batch(new_seo);
        }
        if let Some(msg) = apply_err {
            // A validated op failed to apply after its batch fsynced:
            // the journal is now ahead of memory. That divergence is
            // fatal, not retryable — the server stops taking writes
            // (reads keep flowing) and stays read-only until a restart
            // replays the journal. The keys above were journaled, so a
            // client that retries one of these "failed" writes against
            // the restarted server dedupes instead of double-applying.
            self.state.enter_fatal(format!(
                "write apply diverged from journal ({msg}); restart to recover"
            ));
            for (job, _) in accepted {
                let result = WriteResult::Failed {
                    code: ErrorCode::Degraded,
                    message: format!(
                        "apply fault after commit ({msg}); the write is journaled \
                         and becomes visible after the server restarts"
                    ),
                    retry_after_ms: None,
                };
                outcomes.insert(job.key.clone(), result.clone());
                self.finish(job, result);
            }
            return;
        }

        // Phase 4 — ack everything, then remember the keys.
        self.state.batches.fetch_add(1, Ordering::Relaxed);
        self.state
            .applied
            .fetch_add(batch_size, Ordering::Relaxed);
        self.state.last_fsync_ns.store(fsync_ns, Ordering::Relaxed);
        if let Some(&last) = seqs.last() {
            self.state.last_seq.store(last, Ordering::Relaxed);
        }
        for (i, (job, _)) in accepted.into_iter().enumerate() {
            let outcome = AckedOutcome {
                seq: seqs[i],
                doc_id: doc_ids[i],
            };
            self.dedupe.insert(job.key.clone(), outcome);
            let result = WriteResult::Applied {
                seq: outcome.seq,
                doc_id: outcome.doc_id,
                deduped: false,
                batch_size,
                fsync_ns,
            };
            outcomes.insert(job.key.clone(), result.clone());
            self.finish(job, result);
        }

        // Opportunistic background checkpoint once the journal grows
        // past the configured threshold (an O(1) counter, not a scan).
        let every = self.engine.config.checkpoint_every;
        if every > 0 {
            if let Ok(pending) = self.engine.writer.pending_journal_ops() {
                if pending >= every {
                    // a failed opportunistic checkpoint loses nothing;
                    // the server stays writable and retries next batch
                    if self.checkpoint_now().is_err() {
                        toss_obs::metrics::counter(
                            "toss.serve.write.checkpoint_failures",
                        )
                        .inc();
                    }
                }
            }
        }
    }

    /// Serialize under a read lock, persist + verify + truncate
    /// lock-free. Returns how many journal records were folded away.
    fn checkpoint_now(&mut self) -> Result<u64, String> {
        let cursor = self.engine.writer.next_seq();
        let before = self
            .engine
            .writer
            .pending_journal_ops()
            .unwrap_or_default() as u64;
        // Readers keep running: only the serialization itself holds
        // the read lock, the I/O below does not.
        let (db_json, seo_json, seg) = {
            let exec = self.executor.read().unwrap_or_else(|e| e.into_inner());
            let db_json = toss_xmldb::storage::to_json_with_seq(&exec.db, cursor)
                .map_err(|e| e.to_string())?;
            let seo_json = toss_ontology::persist::seo_to_json(&exec.seo);
            // The `.seg` index sidecar: frozen collection indexes plus
            // the enhanced hierarchy's reachability closure, all stamped
            // with the snapshot cursor so a restart can attach them only
            // when they are exactly current.
            let mut sb =
                toss_xmldb::segidx::segment_builder(&exec.db, cursor);
            let reach = exec.seo.enhanced().reach_index();
            sb.add_section(
                toss_xmldb::segidx::kinds::REACH,
                "seo.enhanced",
                reach.to_segment_payload(),
            );
            (db_json, seo_json, sb.finish())
        };
        // Sidecar first: if it fails, the journal is untouched and the
        // old snapshot + full journal still recover everything.
        let envelope = format!("{{\"cursor\":{cursor},\"seo\":{seo_json}}}");
        save_json_with_vfs(
            &envelope,
            &sidecar_path(self.engine.writer.snapshot_path()),
            &**self.engine.writer.vfs(),
        )
        .map_err(|e| e.to_string())?;
        self.engine
            .writer
            .checkpoint_json_seg(&db_json, cursor, Some(&seg))
            .map_err(|e| e.to_string())?;
        self.state.checkpoints.fetch_add(1, Ordering::Relaxed);
        toss_obs::metrics::counter("toss.serve.write.checkpoints").inc();
        Ok(before)
    }

    fn run_checkpoint(&mut self, job: WriteJob) {
        match self.checkpoint_now() {
            Ok(folded) => self.finish(job, WriteResult::CheckpointDone { folded }),
            Err(msg) => {
                // a failed checkpoint loses nothing (the journal is
                // only truncated after the new snapshot verified); the
                // server stays writable
                toss_obs::metrics::counter("toss.serve.write.checkpoint_failures")
                    .inc();
                self.finish(
                    job,
                    WriteResult::Failed {
                        code: ErrorCode::Internal,
                        message: format!("checkpoint failed: {msg}"),
                        retry_after_ms: None,
                    },
                );
            }
        }
    }

    /// Stamp the job's telemetry record and send its result (the
    /// connection thread may have timed out and gone — a dead channel
    /// is fine, the outcome is already durable or already rejected).
    fn finish(&self, job: WriteJob, result: WriteResult) {
        let total_ns = job
            .enqueued
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let (outcome, cause, batch_size, fsync_ns, deduped) = match &result {
            WriteResult::Applied {
                batch_size,
                fsync_ns,
                deduped,
                ..
            } => (
                toss_obs::QueryOutcomeKind::Ok,
                String::new(),
                *batch_size,
                *fsync_ns,
                *deduped,
            ),
            WriteResult::CheckpointDone { .. } => {
                (toss_obs::QueryOutcomeKind::Ok, String::new(), 0, 0, false)
            }
            WriteResult::Failed { code, .. } => (
                toss_obs::QueryOutcomeKind::Error,
                code.as_str().to_string(),
                0,
                0,
                false,
            ),
        };
        (self.stamp)(QueryRecord {
            query_id: job.query_id,
            class: job.class.as_str().to_string(),
            query: job.op.target(),
            op: job.op.verb().to_string(),
            outcome,
            cause,
            total_ns,
            batch_size,
            fsync_ns,
            deduped,
            ..QueryRecord::default()
        });
        let _ = job.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_ontology::sea::enhance;
    use toss_similarity::Levenshtein;
    use toss_xmldb::{DatabaseConfig, DurableDatabase, FaultVfs};

    fn ok_enhancer() -> Enhancer {
        Box::new(|h| enhance(h, &Levenshtein, 1.0).map_err(|e| e.to_string()))
    }

    /// A writer loop over a durable store on `vfs` (fresh stores get a
    /// checkpointed `c` collection; reopened stores keep their journal
    /// tail intact so reseeding can be exercised).
    fn writer_fixture(
        vfs: Arc<FaultVfs>,
        enhancer: Enhancer,
    ) -> (WriterLoop, Arc<WriteState>, Arc<RwLock<Executor>>) {
        let dyn_vfs: Arc<dyn Vfs> = vfs;
        let mut d = DurableDatabase::open_with(
            "/write-unit.json",
            DatabaseConfig::unlimited(),
            dyn_vfs,
        )
        .unwrap();
        if d.db().collection("c").is_err() {
            d.create_collection("c").unwrap();
            d.checkpoint().unwrap();
        }
        let (db, writer) = d.into_parts();
        let mut hierarchy = Hierarchy::default();
        hierarchy.add_leq("SIGMOD", "conference").unwrap();
        let seo = Arc::new(enhance(&hierarchy, &Levenshtein, 1.0).unwrap());
        let executor = Arc::new(RwLock::new(Executor::new(db, seo)));
        let state = Arc::new(WriteState::default());
        let engine = WriteEngine {
            writer,
            hierarchy,
            enhancer,
            config: WriteConfig::default(),
        };
        let wl =
            WriterLoop::new(engine, executor.clone(), state.clone(), Box::new(|_| {}));
        (wl, state, executor)
    }

    fn test_job(op: WriteOp, key: &str) -> (WriteJob, Receiver<WriteResult>) {
        // capacity 1: `finish` must never block on an unread reply
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        (
            WriteJob {
                op,
                key: key.into(),
                class: BudgetClass::Batch,
                query_id: 0,
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    fn insert(xml: &str) -> WriteOp {
        WriteOp::InsertDoc {
            collection: "c".into(),
            xml: xml.into(),
        }
    }

    /// The ack-timeout retry shape: the retry catches up with its
    /// still-queued original and both land in ONE group-commit batch.
    /// The duplicate must collapse onto the first job's ack, not be
    /// validated, journaled, and applied a second time.
    #[test]
    fn in_batch_duplicate_key_collapses_to_one_application() {
        let (mut wl, state, exec) =
            writer_fixture(Arc::new(FaultVfs::new()), ok_enhancer());
        let op = insert("<a/>");
        let (j1, r1) = test_job(op.clone(), "dup");
        let (j2, r2) = test_job(op, "dup");
        let (j3, r3) = test_job(insert("<b/>"), "other");
        wl.commit_batch(vec![j1, j2, j3]);

        let (seq1, id1) = match r1.recv().unwrap() {
            WriteResult::Applied {
                seq,
                doc_id,
                deduped: false,
                ..
            } => (seq, doc_id),
            other => panic!("the first occurrence must apply: {other:?}"),
        };
        match r2.recv().unwrap() {
            WriteResult::Applied {
                seq,
                doc_id,
                deduped: true,
                ..
            } => {
                assert_eq!(seq, seq1, "the duplicate replays the original ack");
                assert_eq!(doc_id, id1);
            }
            other => panic!("the in-batch duplicate must collapse: {other:?}"),
        }
        assert!(matches!(
            r3.recv().unwrap(),
            WriteResult::Applied { deduped: false, .. }
        ));

        // the dup pair applied exactly once: two docs, two journal
        // records, one dedupe hit
        let docs = {
            let exec = exec.read().unwrap();
            exec.db.collection("c").unwrap().documents().len()
        };
        assert_eq!(docs, 2, "a duplicated insert must not apply twice");
        assert_eq!(wl.engine.writer.journal_records().unwrap().len(), 2);
        assert_eq!(state.applied.load(Ordering::Relaxed), 2);
        assert_eq!(state.deduped.load(Ordering::Relaxed), 1);
    }

    /// A duplicate of a *rejected* write replays the rejection — the
    /// client sees the same typed error twice, not one error and one
    /// mystery apply.
    #[test]
    fn in_batch_duplicate_of_a_rejected_write_replays_the_rejection() {
        let (mut wl, state, _exec) =
            writer_fixture(Arc::new(FaultVfs::new()), ok_enhancer());
        let op = WriteOp::InsertDoc {
            collection: "missing".into(),
            xml: "<a/>".into(),
        };
        let (j1, r1) = test_job(op.clone(), "dup");
        let (j2, r2) = test_job(op, "dup");
        wl.commit_batch(vec![j1, j2]);
        for r in [r1, r2] {
            match r.recv().unwrap() {
                WriteResult::Failed {
                    code: ErrorCode::BadRequest,
                    ..
                } => {}
                other => panic!("both must see the rejection: {other:?}"),
            }
        }
        assert_eq!(state.rejected.load(Ordering::Relaxed), 1, "validated once");
    }

    /// The enhancer (arbitrary embedder code) fails: the ontology jobs
    /// fail *before* anything was journaled — nothing durable, the live
    /// hierarchy untouched, the server still writable — while pure doc
    /// ops in the same batch commit normally.
    #[test]
    fn enhancer_failure_fails_ontology_jobs_before_journaling_them() {
        let (mut wl, state, _exec) = writer_fixture(
            Arc::new(FaultVfs::new()),
            Box::new(|_| Err("embedder exploded".into())),
        );
        let (doc, rdoc) = test_job(insert("<a/>"), "k-doc");
        let (term, rterm) = test_job(
            WriteOp::AddTerm {
                terms: vec!["newterm".into()],
            },
            "k-term",
        );
        wl.commit_batch(vec![doc, term]);

        match rterm.recv().unwrap() {
            WriteResult::Failed {
                code: ErrorCode::Internal,
                message,
                ..
            } => assert!(message.contains("SEO re-enhancement failed"), "{message}"),
            other => panic!("the ontology op must fail with the enhancer: {other:?}"),
        }
        assert!(
            matches!(rdoc.recv().unwrap(), WriteResult::Applied { deduped: false, .. }),
            "doc ops ride on past an enhancer failure"
        );
        // the failed op left no durable trace and no live mutation
        let records = wl.engine.writer.journal_records().unwrap();
        assert_eq!(records.len(), 1, "only the doc op is durable");
        assert!(matches!(records[0].op, JournalOp::Insert { .. }));
        assert!(wl.engine.hierarchy.node_of("newterm").is_none());
        assert!(!state.is_degraded(), "an enhancer failure is not degradation");
    }

    /// Keys ride inside journal records, so a retry of a write that was
    /// acknowledged just before a restart dedupes against the reseeded
    /// table instead of re-applying.
    #[test]
    fn dedupe_reseeds_from_journaled_keys_after_restart() {
        let vfs = Arc::new(FaultVfs::new());
        let op = insert("<a/>");
        let seq1 = {
            let (mut wl, _state, _exec) = writer_fixture(vfs.clone(), ok_enhancer());
            let (j, r) = test_job(op.clone(), "survivor");
            wl.commit_batch(vec![j]);
            match r.recv().unwrap() {
                WriteResult::Applied {
                    seq,
                    deduped: false,
                    ..
                } => seq,
                other => panic!("the original must apply: {other:?}"),
            }
        };

        // "restart": a fresh writer loop over the same store replays
        // the journal and reseeds the dedupe table from its keys
        let (mut wl, state, exec) = writer_fixture(vfs, ok_enhancer());
        let (j, r) = test_job(op, "survivor");
        wl.commit_batch(vec![j]);
        match r.recv().unwrap() {
            WriteResult::Applied {
                seq,
                doc_id,
                deduped: true,
                ..
            } => {
                assert_eq!(seq, seq1, "the replayed ack keeps the original seq");
                assert_eq!(doc_id, None, "replayed-from-journal acks carry no doc id");
            }
            other => panic!("a key journaled before restart must dedupe: {other:?}"),
        }
        assert_eq!(state.deduped.load(Ordering::Relaxed), 1);
        let docs = {
            let exec = exec.read().unwrap();
            exec.db.collection("c").unwrap().documents().len()
        };
        assert_eq!(docs, 1, "one application across the restart");
    }

    #[test]
    fn dedupe_table_is_bounded_fifo() {
        let mut t = DedupeTable::new(3);
        for i in 0..5u64 {
            t.insert(
                format!("k{i}"),
                AckedOutcome {
                    seq: i,
                    doc_id: None,
                },
            );
        }
        // the two oldest keys were evicted
        assert!(t.get("k0").is_none());
        assert!(t.get("k1").is_none());
        for i in 2..5u64 {
            assert_eq!(t.get(&format!("k{i}")).unwrap().seq, i);
        }
        // re-inserting an existing key does not grow the order queue
        t.insert(
            "k4".into(),
            AckedOutcome {
                seq: 99,
                doc_id: Some(1),
            },
        );
        assert_eq!(t.get("k4").unwrap().seq, 99);
        assert_eq!(t.order.len(), 3);
    }

    #[test]
    fn ontology_replay_applies_tail_and_skips_cycles() {
        let mut h = Hierarchy::default();
        h.add_leq("SIGMOD", "conference").unwrap();
        let records = vec![
            JournalRecord {
                seq: 5,
                key: None,
                op: JournalOp::AddTerm {
                    terms: vec!["PODS".into()],
                },
            },
            JournalRecord {
                seq: 6,
                key: None,
                op: JournalOp::AddEdge {
                    below: "PODS".into(),
                    above: "conference".into(),
                },
            },
            // below the cursor: already folded into the sidecar
            JournalRecord {
                seq: 2,
                key: None,
                op: JournalOp::AddTerm {
                    terms: vec!["stale".into()],
                },
            },
            // a cycle is skipped, not fatal
            JournalRecord {
                seq: 7,
                key: None,
                op: JournalOp::AddEdge {
                    below: "conference".into(),
                    above: "PODS".into(),
                },
            },
            JournalRecord {
                seq: 8,
                key: None,
                op: JournalOp::Noop,
            },
        ];
        let applied = recover_ontology(&mut h, &records, 4);
        assert_eq!(applied, 2, "one term batch + one edge");
        assert!(h.node_of("PODS").is_some());
        assert!(h.node_of("stale").is_none(), "pre-cursor records are folded");
    }

    #[test]
    fn journal_op_mapping_covers_every_mutation() {
        assert!(matches!(
            to_journal_op(&WriteOp::InsertDoc {
                collection: "c".into(),
                xml: "<a/>".into()
            }),
            Some(JournalOp::Insert { .. })
        ));
        assert!(matches!(
            to_journal_op(&WriteOp::DeleteDoc {
                collection: "c".into(),
                doc_id: 3
            }),
            Some(JournalOp::Remove { .. })
        ));
        assert!(matches!(
            to_journal_op(&WriteOp::AddTerm {
                terms: vec!["t".into()]
            }),
            Some(JournalOp::AddTerm { .. })
        ));
        assert!(matches!(
            to_journal_op(&WriteOp::AddEdge {
                below: "b".into(),
                above: "a".into()
            }),
            Some(JournalOp::AddEdge { .. })
        ));
        assert!(to_journal_op(&WriteOp::Checkpoint).is_none());
    }
}
