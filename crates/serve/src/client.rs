//! `toss-client` — the client side of the protocol, plus the retry
//! discipline a well-behaved caller of a load-shedding server needs:
//! jittered exponential backoff that honors the server's
//! `retry_after_ms` hint and retries **only** errors the server marked
//! retryable (shed load, drain) — never budget or request errors, which
//! would fail identically on every attempt.

use crate::budget::BudgetClass;
use crate::protocol::{
    read_frame, record_from_value, write_frame, ErrorCode, FrameError, QueryRequest,
    Request, WriteOp, WriteRequest, DEFAULT_MAX_FRAME_BYTES,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use toss_json::Value;
use toss_obs::QueryRecord;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, frame I/O, timeout).
    Io(io::Error),
    /// The server closed or sent something unintelligible.
    Protocol(String),
    /// A typed error response from the server.
    Server {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable cause.
        message: String,
        /// The server's suggested retry delay, if any.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error [{}]: {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether retrying the same request can succeed: transport errors
    /// (the server may be back) and server errors it marked retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Protocol(_) => false,
            ClientError::Server { code, .. } => code.is_retryable(),
        }
    }

    /// The server's retry hint, if this error carries one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Server {
                retry_after_ms: Some(ms),
                ..
            } => Some(Duration::from_millis(*ms)),
            _ => None,
        }
    }
}

/// The parsed `ok` response to a `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The server-assigned query id — joins this reply to its
    /// flight-recorder entry (`slow` frame) and trace spans.
    pub query_id: u64,
    /// Total matching witness trees.
    pub answers: usize,
    /// How many serialized trees the response carries (≤ `max_results`).
    pub returned: usize,
    /// The compiled XPath the server ran.
    pub xpath: String,
    /// Degradation notice when a soft budget truncated the result.
    pub degraded: Option<String>,
    /// Serialized witness trees.
    pub results: Vec<String>,
    /// Server-side wall time in microseconds.
    pub server_us: u64,
}

/// The parsed `ok` response to a mutation frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReply {
    /// The server-assigned query id of the write.
    pub query_id: u64,
    /// The journal sequence number the mutation fsynced under.
    pub seq: u64,
    /// The assigned document id (inserts only).
    pub doc_id: Option<u64>,
    /// Whether the server collapsed this send onto a previously
    /// acknowledged write with the same idempotency key (i.e. this was
    /// a retry whose original ack was lost).
    pub deduped: bool,
    /// How many mutations shared this write's group-commit fsync.
    pub batch_size: u64,
    /// Duration of that fsynced batch append, nanoseconds.
    pub fsync_ns: u64,
    /// Server-side wall time in microseconds.
    pub server_us: u64,
}

/// The write-path block of the `stats` admin frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Whether this server has a write path at all.
    pub writable: bool,
    /// Whether it is currently read-only degraded.
    pub degraded: bool,
    /// The degradation reason ("" when healthy).
    pub reason: String,
    /// The executor revision (bumps once per applied batch).
    pub revision: u64,
    /// Mutations applied since start.
    pub applied: u64,
    /// Idempotency-key dedupe hits since start.
    pub deduped: u64,
    /// Writes rejected by validation since start.
    pub rejected: u64,
    /// Group-commit batches fsynced since start.
    pub batches: u64,
    /// Checkpoints completed since start.
    pub checkpoints: u64,
    /// Duration of the most recent batch fsync, nanoseconds.
    pub last_fsync_ns: u64,
    /// Highest acknowledged journal sequence number.
    pub last_seq: u64,
}

/// One budget class's windowed SLO figures, as returned by the `stats`
/// admin frame (mirrors the `toss.serve.window.<class>.*` gauges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Requests completed inside the window.
    pub requests: u64,
    /// Failed requests inside the window.
    pub errors: u64,
    /// Requests shed by admission control inside the window.
    pub shed: u64,
    /// Windowed median latency, nanoseconds.
    pub p50_ns: u64,
    /// Windowed p95 latency, nanoseconds.
    pub p95_ns: u64,
    /// Windowed p99 latency, nanoseconds.
    pub p99_ns: u64,
    /// Error rate in basis points (1/10000).
    pub error_rate_bps: u64,
    /// Shed rate in basis points (1/10000).
    pub shed_rate_bps: u64,
    /// The span the window covers, milliseconds.
    pub window_ms: u64,
}

/// The parsed `stats` admin response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Server uptime, milliseconds.
    pub uptime_ms: u64,
    /// Queries executing right now.
    pub inflight: u64,
    /// Connections currently open.
    pub connections: u64,
    /// Per-class windows, in the server's (shed-first) class order.
    pub windows: Vec<(String, WindowStats)>,
    /// Flight-recorder entries pushed since start.
    pub flight_recorded: u64,
    /// Flight-recorder entries currently retained.
    pub flight_retained: u64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: u64,
    /// The write path's state and counters.
    pub write: WriteStats,
}

impl StatsReply {
    /// Look up one class's window by wire name (`interactive`, …).
    pub fn window(&self, class: &str) -> Option<&WindowStats> {
        self.windows.iter().find(|(c, _)| c == class).map(|(_, w)| w)
    }
}

/// A connected client. One request/response at a time per client; open
/// several clients for concurrency.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    io_timeout: Duration,
}

impl Client {
    /// Connect with a default 60 s I/O timeout (longer than every
    /// budget-class deadline, so slow-but-progressing batch queries are
    /// not abandoned by their own client).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(60))
    }

    /// Connect with an explicit I/O timeout.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        io_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        Ok(Client {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            io_timeout,
        })
    }

    /// Send one request and read its response value.
    pub fn call(&mut self, req: &Request) -> Result<Value, ClientError> {
        write_frame(&mut self.stream, req.to_payload().as_bytes())?;
        let payload = match read_frame(
            &mut self.stream,
            self.max_frame_bytes,
            Some(self.io_timeout),
        ) {
            Ok(p) => p,
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::Timeout) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "response timed out",
                )))
            }
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
        let v = Value::parse(text).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("status").and_then(Value::as_str) {
            Some("ok") => Ok(v),
            Some("error") => {
                let code = v
                    .get("code")
                    .and_then(Value::as_str)
                    .and_then(ErrorCode::parse)
                    .unwrap_or(ErrorCode::Internal);
                Err(ClientError::Server {
                    code,
                    message: v
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    retry_after_ms: v
                        .get("retry_after_ms")
                        .and_then(Value::as_i64)
                        .and_then(|n| u64::try_from(n).ok()),
                })
            }
            _ => Err(ClientError::Protocol("response has no status".into())),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Fetch the server's Prometheus-text metrics export.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.call(&Request::Metrics)?;
        v.get("metrics")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response lacks text".into()))
    }

    /// Fetch the structured admin snapshot: per-class windowed SLO
    /// figures, in-flight/connection gauges, flight-recorder occupancy.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let v = self.call(&Request::Stats)?;
        let u = |val: &Value, key: &str| {
            val.get(key).and_then(Value::as_i64).unwrap_or(0).max(0) as u64
        };
        let windows = match v.get("windows") {
            Some(Value::Object(fields)) => fields
                .iter()
                .map(|(name, w)| {
                    (
                        name.clone(),
                        WindowStats {
                            requests: u(w, "requests"),
                            errors: u(w, "errors"),
                            shed: u(w, "shed"),
                            p50_ns: u(w, "p50_ns"),
                            p95_ns: u(w, "p95_ns"),
                            p99_ns: u(w, "p99_ns"),
                            error_rate_bps: u(w, "error_rate_bps"),
                            shed_rate_bps: u(w, "shed_rate_bps"),
                            window_ms: u(w, "window_ms"),
                        },
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        let flight = v.get("flight");
        let fu = |key: &str| flight.map(|f| u(f, key)).unwrap_or(0);
        let write = match v.get("write") {
            Some(wv) => WriteStats {
                writable: matches!(wv.get("writable"), Some(Value::Bool(true))),
                degraded: matches!(wv.get("degraded"), Some(Value::Bool(true))),
                reason: wv
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                revision: u(wv, "revision"),
                applied: u(wv, "applied"),
                deduped: u(wv, "deduped"),
                rejected: u(wv, "rejected"),
                batches: u(wv, "batches"),
                checkpoints: u(wv, "checkpoints"),
                last_fsync_ns: u(wv, "last_fsync_ns"),
                last_seq: u(wv, "last_seq"),
            },
            None => WriteStats::default(),
        };
        Ok(StatsReply {
            uptime_ms: u(&v, "uptime_ms"),
            inflight: u(&v, "inflight"),
            connections: u(&v, "connections"),
            windows,
            flight_recorded: fu("recorded"),
            flight_retained: fu("retained"),
            flight_capacity: fu("capacity"),
            write,
        })
    }

    /// Fetch recent flight-recorder entries, newest first, optionally
    /// filtered to one budget class.
    pub fn slow(
        &mut self,
        limit: usize,
        class: Option<BudgetClass>,
    ) -> Result<Vec<QueryRecord>, ClientError> {
        let v = self.call(&Request::Slow { limit, class })?;
        let entries = v
            .get("queries")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Protocol("slow response lacks queries".into()))?;
        Ok(entries.iter().filter_map(record_from_value).collect())
    }

    /// Request graceful server shutdown (only honored when the server
    /// enables the verb).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown).map(|_| ())
    }

    /// Run one query.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryReply, ClientError> {
        let v = self.call(&Request::Query(Box::new(q)))?;
        let results = v
            .get("results")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        Ok(QueryReply {
            query_id: v
                .get("query_id")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .max(0) as u64,
            answers: v
                .get("answers")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .max(0) as usize,
            returned: results.len(),
            xpath: v
                .get("xpath")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            degraded: v
                .get("degraded")
                .and_then(Value::as_str)
                .map(str::to_string),
            results,
            server_us: v
                .get("server_us")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .max(0) as u64,
        })
    }

    /// Send one mutation under an explicit idempotency key. Reusing the
    /// same key on a resend is what makes write retries safe: the
    /// server's dedupe table collapses the replay onto the original
    /// ack (`deduped: true`) instead of applying it twice.
    pub fn write_keyed(
        &mut self,
        op: WriteOp,
        class: BudgetClass,
        key: &str,
    ) -> Result<WriteReply, ClientError> {
        let v = self.call(&Request::Write(Box::new(WriteRequest {
            op,
            key: key.to_string(),
            class,
        })))?;
        let u = |k: &str| v.get(k).and_then(Value::as_i64).unwrap_or(0).max(0) as u64;
        Ok(WriteReply {
            query_id: u("query_id"),
            seq: u("seq"),
            doc_id: v
                .get("doc_id")
                .and_then(Value::as_i64)
                .and_then(|n| u64::try_from(n).ok()),
            deduped: matches!(v.get("deduped"), Some(Value::Bool(true))),
            batch_size: u("batch_size"),
            fsync_ns: u("fsync_ns"),
            server_us: u("server_us"),
        })
    }

    /// Insert a document (fresh idempotency key, batch class).
    pub fn insert_doc(
        &mut self,
        collection: &str,
        xml: &str,
    ) -> Result<WriteReply, ClientError> {
        self.write_keyed(
            WriteOp::InsertDoc {
                collection: collection.to_string(),
                xml: xml.to_string(),
            },
            BudgetClass::Batch,
            &next_write_key(),
        )
    }

    /// Delete a document by id (fresh idempotency key, batch class).
    pub fn delete_doc(
        &mut self,
        collection: &str,
        doc_id: u64,
    ) -> Result<WriteReply, ClientError> {
        self.write_keyed(
            WriteOp::DeleteDoc {
                collection: collection.to_string(),
                doc_id,
            },
            BudgetClass::Batch,
            &next_write_key(),
        )
    }

    /// Add terms to the live ontology (fresh idempotency key).
    pub fn add_term(&mut self, terms: &[&str]) -> Result<WriteReply, ClientError> {
        self.write_keyed(
            WriteOp::AddTerm {
                terms: terms.iter().map(|t| t.to_string()).collect(),
            },
            BudgetClass::Batch,
            &next_write_key(),
        )
    }

    /// Add a `below ≤ above` ontology edge (fresh idempotency key).
    pub fn add_edge(&mut self, below: &str, above: &str) -> Result<WriteReply, ClientError> {
        self.write_keyed(
            WriteOp::AddEdge {
                below: below.to_string(),
                above: above.to_string(),
            },
            BudgetClass::Batch,
            &next_write_key(),
        )
    }

    /// Ask the server to checkpoint now: snapshot, verify, fold the
    /// journal. Returns how many journal records were folded away.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        let v = self.call(&Request::Write(Box::new(WriteRequest {
            op: WriteOp::Checkpoint,
            key: String::new(),
            class: BudgetClass::Batch,
        })))?;
        Ok(v.get("folded").and_then(Value::as_i64).unwrap_or(0).max(0) as u64)
    }

    /// Run one mutation under the retry policy, reconnecting on
    /// transport failure. The idempotency key is generated **once** and
    /// attached to every resend, so an ack lost to a timeout or a
    /// dropped connection cannot double-apply: the server answers the
    /// replay from its dedupe table.
    pub fn write_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: &RetryPolicy,
        op: WriteOp,
        class: BudgetClass,
    ) -> Result<WriteReply, ClientError> {
        let key = next_write_key();
        policy.run(|_| Client::connect(addr)?.write_keyed(op.clone(), class, &key))
    }
}

/// Generate a process-unique idempotency key: a per-process random
/// prefix (wall-clock seeded) plus a monotone counter. Uniqueness
/// across processes matters only probabilistically — a collision just
/// risks one spurious dedupe within the server's bounded key window.
pub fn next_write_key() -> String {
    static SEED: AtomicU64 = AtomicU64::new(0);
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let pid = std::process::id() as u64;
        let mut s = t ^ pid.rotate_left(32) ^ 0x2545f4914f6cdd1d;
        // splatter the bits so similar clocks still diverge
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 33;
        if s == 0 {
            s = 1;
        }
        // first writer wins; everyone re-reads the published seed
        let _ = SEED.compare_exchange(0, s, Ordering::Relaxed, Ordering::Relaxed);
        seed = SEED.load(Ordering::Relaxed);
    }
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("wk-{seed:016x}-{n}")
}

/// Jittered exponential backoff: `base·2ⁿ` capped at `cap`, each delay
/// scaled by a uniform jitter in `[0.5, 1.0]` (full-jitter halves
/// synchronized retry storms), and floored at the server's
/// `retry_after_ms` hint when one was given.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts; 1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(2),
        }
    }
}

/// A tiny xorshift PRNG for jitter — deterministic given its seed, no
/// dependency, good enough for decorrelating retry storms.
struct Jitter(u64);

impl Jitter {
    fn new() -> Jitter {
        // seed from wall clock + thread identity; quality is irrelevant,
        // distinctness across clients is what decorrelates retries
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e3779b97f4a7c15);
        let tid = &t as *const _ as u64;
        Jitter(t ^ tid.rotate_left(17) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based), jittered and
    /// floored at `hint` (the server's `retry_after_ms`).
    pub fn delay(&self, attempt: u32, hint: Option<Duration>, jitter01: f64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1))
            .min(self.cap);
        let jittered = exp.mul_f64(0.5 + 0.5 * jitter01.clamp(0.0, 1.0));
        match hint {
            Some(h) => jittered.max(h),
            None => jittered,
        }
    }

    /// Run `f` until it succeeds, fails non-retryably, or the attempt
    /// budget is spent. Sleeps between attempts per [`RetryPolicy::delay`].
    pub fn run<T>(
        &self,
        mut f: impl FnMut(u32) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut jitter = Jitter::new();
        let mut attempt = 1u32;
        loop {
            match f(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.max_attempts => {
                    toss_obs::metrics::counter("toss.client.retries").inc();
                    std::thread::sleep(self.delay(
                        attempt,
                        e.retry_after(),
                        jitter.next_f64(),
                    ));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honors_hint() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        };
        // zero jitter scales to the 0.5 floor of each exponential step
        assert_eq!(p.delay(1, None, 0.0), Duration::from_millis(5));
        assert_eq!(p.delay(2, None, 0.0), Duration::from_millis(10));
        assert_eq!(p.delay(3, None, 0.0), Duration::from_millis(20));
        // capped regardless of attempt
        assert!(p.delay(30, None, 1.0) <= Duration::from_millis(200));
        // the server hint is a floor
        assert_eq!(
            p.delay(1, Some(Duration::from_millis(150)), 0.0),
            Duration::from_millis(150)
        );
    }

    #[test]
    fn retry_runs_until_success_and_respects_budget() {
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut calls = 0;
        let out = p.run(|_| {
            calls += 1;
            if calls < 3 {
                Err(ClientError::Server {
                    code: ErrorCode::Overloaded,
                    message: "busy".into(),
                    retry_after_ms: Some(1),
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);

        // the attempt budget is a ceiling
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                message: "busy".into(),
                retry_after_ms: None,
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 4);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(ClientError::Server {
                code: ErrorCode::BudgetExceeded,
                message: "deadline".into(),
                retry_after_ms: None,
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "budget errors must not be retried");
        let mut calls = 0;
        let out: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(ClientError::Protocol("garbled".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "protocol errors must not be retried");
    }

    #[test]
    fn write_keys_are_unique_and_stable_prefix() {
        let a = next_write_key();
        let b = next_write_key();
        assert_ne!(a, b, "each generated key must be fresh");
        assert!(a.starts_with("wk-") && b.starts_with("wk-"));
        // same process prefix — the counter is what varies
        assert_eq!(&a[..20], &b[..20]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(next_write_key()), "key collision");
        }
    }

    #[test]
    fn jitter_is_in_unit_interval_and_varies() {
        let mut j = Jitter::new();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let x = j.next_f64();
            assert!((0.0..1.0).contains(&x), "jitter {x} outside [0,1)");
            distinct.insert((x * 1e9) as u64);
        }
        assert!(distinct.len() > 90, "jitter must actually vary");
    }
}
