//! toss-serve — a fault-tolerant network front-end for the TOSS engine.
//!
//! This crate turns the in-process [`toss_core::Executor`] into a
//! long-running TCP service without pulling in an async runtime: a
//! thread-per-connection accept loop over `std::net`, a length-prefixed
//! JSON protocol, and the existing governance layer
//! ([`toss_core::AdmissionController`], [`toss_core::QueryGovernor`])
//! deciding who runs and who is shed.
//!
//! The robustness contract, end to end:
//!
//! - **Backpressure**: admission slots are bounded; a request that would
//!   queue past the configured wait is *rejected* with a typed
//!   `overloaded` error carrying a `retry_after_ms` hint — never an
//!   unbounded queue, never a dropped connection.
//! - **Deadlines**: every query runs under a [`budget::BudgetClass`]
//!   with a hard deadline; connections have read/write deadlines so a
//!   slow-loris client is disconnected rather than pinning a thread.
//! - **Panic isolation**: a panicking query is caught by the executor's
//!   isolation layer and surfaced as a typed `internal` error frame; the
//!   connection (and server) live on.
//! - **Graceful drain**: [`server::Server::shutdown`] stops accepting,
//!   lets in-flight queries finish up to a drain deadline, then cancels
//!   stragglers through their [`toss_core::CancelToken`]s. Responses are
//!   single-write frames, so a drained client never observes a partial
//!   frame.
//!
//! The [`client`] module is the matching `toss-client` library: typed
//! errors, and a jittered-exponential [`client::RetryPolicy`] that
//! honors the server's retry hints and refuses to retry non-retryable
//! failures — which, thanks to client-generated idempotency keys on
//! every mutation frame, now safely includes **writes**: a retried
//! write carries the same key, and the server's dedupe table collapses
//! replays onto the original ack.
//!
//! The [`write`] module is the live write path ([`server::Server::start_writable`]):
//! mutation frames (`insert_doc`, `delete_doc`, `add_term`, `add_edge`,
//! `checkpoint`) flow through a single writer thread with group-commit
//! WAL batching — a write is acknowledged only after its batch's fsync
//! — plus background verified checkpoints, and read-only **degraded**
//! mode on persistent journal faults (typed `degraded` frames with a
//! retry hint; probe writes self-heal).

pub mod budget;
pub mod client;
pub mod protocol;
pub mod server;
pub mod write;

pub use budget::BudgetClass;
pub use client::{
    next_write_key, Client, ClientError, QueryReply, RetryPolicy, StatsReply, WindowStats,
    WriteReply, WriteStats,
};
pub use protocol::{ErrorCode, FrameError, QueryRequest, Request, WriteOp, WriteRequest};
pub use server::{DrainReport, Server, ServerConfig, ShutdownHandle};
pub use write::{
    load_sidecar, recover_ontology, sidecar_path, Enhancer, WriteConfig, WriteEngine,
    WriteState,
};
