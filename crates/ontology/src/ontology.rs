//! Ontologies — Definition 3: a partial mapping from relationship names
//! (the set Σ of strings, always containing `isa` and `part-of`) to
//! hierarchies.

use crate::hierarchy::Hierarchy;
use std::collections::BTreeMap;

/// The distinguished `isa` relationship name.
pub const ISA: &str = "isa";
/// The distinguished `part-of` relationship name.
pub const PART_OF: &str = "part-of";

/// An ontology: named hierarchies. `isa` and `part-of` are always defined
/// (empty hierarchies until populated), matching the paper's standing
/// assumption after Definition 3.
#[derive(Debug, Clone)]
pub struct Ontology {
    hierarchies: BTreeMap<String, Hierarchy>,
}

impl Ontology {
    /// A new ontology with empty `isa` and `part-of` hierarchies.
    pub fn new() -> Self {
        let mut hierarchies = BTreeMap::new();
        hierarchies.insert(ISA.to_string(), Hierarchy::new());
        hierarchies.insert(PART_OF.to_string(), Hierarchy::new());
        Ontology { hierarchies }
    }

    /// The hierarchy for a relationship name, if defined (Θ is partial).
    pub fn hierarchy(&self, relation: &str) -> Option<&Hierarchy> {
        self.hierarchies.get(relation)
    }

    /// Mutable access, creating the hierarchy if absent.
    pub fn hierarchy_mut(&mut self, relation: &str) -> &mut Hierarchy {
        self.hierarchies.entry(relation.to_string()).or_default()
    }

    /// The `isa` hierarchy.
    pub fn isa(&self) -> &Hierarchy {
        self.hierarchies.get(ISA).expect("isa always defined")
    }

    /// The `part-of` hierarchy.
    pub fn part_of(&self) -> &Hierarchy {
        self.hierarchies.get(PART_OF).expect("part-of always defined")
    }

    /// Mutable `isa` hierarchy.
    pub fn isa_mut(&mut self) -> &mut Hierarchy {
        self.hierarchy_mut(ISA)
    }

    /// Mutable `part-of` hierarchy.
    pub fn part_of_mut(&mut self) -> &mut Hierarchy {
        self.hierarchy_mut(PART_OF)
    }

    /// Defined relationship names, sorted.
    pub fn relations(&self) -> Vec<&str> {
        self.hierarchies.keys().map(String::as_str).collect()
    }

    /// Total number of terms across all hierarchies.
    pub fn term_count(&self) -> usize {
        self.hierarchies.values().map(Hierarchy::term_count).sum()
    }
}

impl Default for Ontology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_and_partof_always_defined() {
        let o = Ontology::new();
        assert!(o.hierarchy(ISA).is_some());
        assert!(o.hierarchy(PART_OF).is_some());
        assert!(o.hierarchy("ora").is_none());
        assert_eq!(o.relations(), vec!["isa", "part-of"]);
    }

    #[test]
    fn custom_relations_created_on_demand() {
        let mut o = Ontology::new();
        o.hierarchy_mut("ora").add_leq("google", "company").unwrap();
        assert!(o.hierarchy("ora").unwrap().leq_terms("google", "company"));
        assert_eq!(o.relations().len(), 3);
    }

    #[test]
    fn term_count_sums_hierarchies() {
        let mut o = Ontology::new();
        o.isa_mut().add_leq("cat", "animal").unwrap();
        o.part_of_mut().add_leq("author", "article").unwrap();
        assert_eq!(o.term_count(), 4);
    }
}
