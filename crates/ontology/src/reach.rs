//! Precomputed reachability index for hierarchy graphs.
//!
//! A [`ReachIndex`] is built once per [`DiGraph`] snapshot and turns the
//! rewrite-time ontology operations into lookups:
//!
//! * `leq(a, b)` — one bit test against the ancestor bitset of `a`,
//!   instead of a fresh DFS;
//! * `below_cone(v)` / `above_cone(v)` — the full ≤-cone of a node,
//!   memoized as `Arc<[u32]>` so repeated queries are allocation-free;
//! * `below_many(targets)` — a word-parallel union of descendant rows,
//!   replacing the per-call reverse-adjacency rebuild + BFS.
//!
//! Edge direction follows the hierarchy convention: an edge `u → v`
//! means `u ≤ v`, so the *descendants* of `v` (its below-cone) are the
//! vertices that reach `v`, and the *ancestors* are the vertices `v`
//! reaches. Both cones include the node itself (≤ is reflexive).
//!
//! The index is a pure function of the graph; [`Hierarchy`] owns the
//! invalidation story (every mutation drops its cached index, so a
//! fused-and-re-enhanced ontology rebuilds on next use).
//!
//! [`Hierarchy`]: crate::hierarchy::Hierarchy

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::graph::{iter_word_bits, BitMatrix, DiGraph};

/// Dense reachability bitsets plus memoized cones for one graph snapshot.
#[derive(Debug)]
pub struct ReachIndex {
    n: usize,
    /// Row `v`: bits `u` with `u ≤ v` (descendants of `v`, self included).
    desc: BitMatrix,
    /// Row `v`: bits `u` with `v ≤ u` (ancestors of `v`, self included).
    anc: BitMatrix,
    /// Topological order of the graph, when it is a DAG (it always is for
    /// hierarchies; kept optional so the index stays total on any input).
    topo: Option<Vec<usize>>,
    below_memo: Vec<OnceLock<Arc<[u32]>>>,
    above_memo: Vec<OnceLock<Arc<[u32]>>>,
}

impl ReachIndex {
    /// Build the index from a graph snapshot. `O(V·E/64 + V²/64)`.
    pub fn build(graph: &DiGraph) -> Self {
        let t0 = Instant::now();
        let n = graph.len();
        let topo = graph.topological_order();
        let closure = graph.transitive_closure_bits();
        // ancestors of u = closure row u (forward reachability) + self
        let mut anc = closure;
        // descendants of v = transpose of forward reachability + self
        let mut desc = BitMatrix::new(n);
        for u in 0..n {
            anc.set(u, u);
            desc.set(u, u);
        }
        for u in 0..n {
            for v in anc.iter_row(u) {
                if v != u {
                    desc.set(v, u);
                }
            }
        }
        let index = ReachIndex {
            n,
            desc,
            anc,
            topo,
            below_memo: (0..n).map(|_| OnceLock::new()).collect(),
            above_memo: (0..n).map(|_| OnceLock::new()).collect(),
        };
        toss_obs::metrics::counter("toss.semantic.index_builds").inc();
        toss_obs::metrics::histogram("toss.semantic.index_build_ns")
            .observe_duration(t0.elapsed());
        index
    }

    /// Number of nodes covered by the index.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the indexed graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// A topological order of the indexed graph, if it is a DAG.
    pub fn topological_order(&self) -> Option<&[usize]> {
        self.topo.as_deref()
    }

    /// Whether `a ≤ b` (reflexive). One bit test.
    pub fn leq(&self, a: usize, b: usize) -> bool {
        a == b || (a < self.n && b < self.n && self.desc.get(b, a))
    }

    /// The below-cone of `v`: every `u` with `u ≤ v`, ascending, self
    /// included. Memoized; repeated calls return the same allocation.
    pub fn below_cone(&self, v: usize) -> Arc<[u32]> {
        Arc::clone(self.below_memo[v].get_or_init(|| {
            self.desc.iter_row(v).map(|u| u as u32).collect()
        }))
    }

    /// The above-cone of `v`: every `u` with `v ≤ u`, ascending, self
    /// included. Memoized; repeated calls return the same allocation.
    pub fn above_cone(&self, v: usize) -> Arc<[u32]> {
        Arc::clone(self.above_memo[v].get_or_init(|| {
            self.anc.iter_row(v).map(|u| u as u32).collect()
        }))
    }

    /// Union of the below-cones of `targets` (out-of-range ids ignored),
    /// ascending. The multi-target form of [`ReachIndex::below_cone`];
    /// a word-parallel OR of descendant rows.
    pub fn below_many(&self, targets: &[usize]) -> Vec<usize> {
        let words = self.n.div_ceil(64);
        let mut acc = vec![0u64; words];
        for &t in targets {
            if t < self.n {
                self.desc.or_row_into(t, &mut acc);
            }
        }
        iter_word_bits(&acc).collect()
    }

    /// Assemble an index from persisted closure matrices, skipping the
    /// topo-order DP entirely. `None` if the matrices are not both `n × n`.
    pub fn from_parts(
        n: usize,
        desc: BitMatrix,
        anc: BitMatrix,
        topo: Option<Vec<usize>>,
    ) -> Option<Self> {
        if desc.len() != n || anc.len() != n {
            return None;
        }
        if let Some(t) = &topo {
            if t.len() != n {
                return None;
            }
        }
        Some(ReachIndex {
            n,
            desc,
            anc,
            topo,
            below_memo: (0..n).map(|_| OnceLock::new()).collect(),
            above_memo: (0..n).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Serialize into a segment-section payload:
    ///
    /// ```text
    /// 0   8   n (u64 LE)
    /// 8   1   has_topo (0/1)
    /// 9   7   padding
    /// 16  4n  topo order as u32 LE (present iff has_topo), padded to 8
    /// ..      desc bitmap rows (toss_segment::BitRowsRef layout)
    /// ..      anc bitmap rows
    /// ```
    pub fn to_segment_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.push(self.topo.is_some() as u8);
        out.extend_from_slice(&[0u8; 7]);
        if let Some(topo) = &self.topo {
            for &v in topo {
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            while out.len() % 8 != 0 {
                out.push(0);
            }
        }
        for m in [&self.desc, &self.anc] {
            let wpr = m.words_per_row();
            let mut b = toss_segment::BitRowsBuilder::new(self.n, wpr);
            let words = m.words();
            for r in 0..self.n {
                b.push_row(&words[r * wpr..(r + 1) * wpr]);
            }
            b.finish(&mut out);
        }
        out
    }

    /// Rebuild an index from [`ReachIndex::to_segment_payload`] bytes.
    /// `None` on any structural mismatch (truncation, wrong matrix
    /// shape) — the caller falls back to [`ReachIndex::build`].
    pub fn from_segment_payload(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let n = usize::try_from(n).ok()?;
        let has_topo = match bytes[8] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let mut at = 16usize;
        let topo = if has_topo {
            let end = at.checked_add(n.checked_mul(4)?)?;
            if end > bytes.len() {
                return None;
            }
            let order: Vec<usize> = bytes[at..end]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as usize)
                .collect();
            if order.iter().any(|&v| v >= n) {
                return None;
            }
            at = end.div_ceil(8) * 8;
            Some(order)
        } else {
            None
        };
        let matrix = |at: &mut usize| -> Option<BitMatrix> {
            let rows = toss_segment::BitRowsRef::parse(bytes.get(*at..)?)?;
            if rows.rows() != n || rows.words_per_row() != n.div_ceil(64) {
                return None;
            }
            *at += 16 + rows.rows() * rows.words_per_row() * 8;
            BitMatrix::from_words(n, rows.to_words())
        };
        let desc = matrix(&mut at)?;
        let anc = matrix(&mut at)?;
        let loaded = ReachIndex::from_parts(n, desc, anc, topo)?;
        toss_obs::metrics::counter("toss.semantic.index_loads").inc();
        Some(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // hierarchy orientation: leaves point at the root
        // 1 → 0, 2 → 0, 3 → 1, 3 → 2  (so 3 ≤ 1 ≤ 0 and 3 ≤ 2 ≤ 0)
        let mut g = DiGraph::new(4);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        g.add_edge(3, 1);
        g.add_edge(3, 2);
        g
    }

    #[test]
    fn leq_matches_reachability() {
        let g = diamond();
        let ix = ReachIndex::build(&g);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    ix.leq(a, b),
                    a == b || g.has_path(a, b),
                    "leq({a},{b})"
                );
            }
        }
        // out-of-range is reflexive-only
        assert!(ix.leq(9, 9));
        assert!(!ix.leq(9, 0));
    }

    #[test]
    fn cones_are_sorted_and_reflexive() {
        let ix = ReachIndex::build(&diamond());
        assert_eq!(ix.below_cone(0).as_ref(), &[0, 1, 2, 3]);
        assert_eq!(ix.below_cone(1).as_ref(), &[1, 3]);
        assert_eq!(ix.above_cone(3).as_ref(), &[0, 1, 2, 3]);
        assert_eq!(ix.above_cone(0).as_ref(), &[0]);
    }

    #[test]
    fn cone_memoization_returns_shared_allocation() {
        let ix = ReachIndex::build(&diamond());
        let a = ix.below_cone(0);
        let b = ix.below_cone(0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn below_many_unions_rows() {
        let ix = ReachIndex::build(&diamond());
        assert_eq!(ix.below_many(&[1, 2]), vec![1, 2, 3]);
        assert_eq!(ix.below_many(&[3]), vec![3]);
        assert_eq!(ix.below_many(&[]), Vec::<usize>::new());
        // out-of-range targets are ignored, matching below_many's old filter
        assert_eq!(ix.below_many(&[1, 42]), vec![1, 3]);
    }

    #[test]
    fn segment_payload_round_trips() {
        let g = diamond();
        let ix = ReachIndex::build(&g);
        let payload = ix.to_segment_payload();
        let back = ReachIndex::from_segment_payload(&payload).unwrap();
        assert_eq!(back.len(), ix.len());
        assert_eq!(back.topological_order(), ix.topological_order());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(back.leq(a, b), ix.leq(a, b), "leq({a},{b})");
            }
            assert_eq!(back.below_cone(a), ix.below_cone(a));
            assert_eq!(back.above_cone(a), ix.above_cone(a));
        }
        assert_eq!(back.below_many(&[1, 2]), ix.below_many(&[1, 2]));
    }

    #[test]
    fn segment_payload_round_trips_without_topo() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        let ix = ReachIndex::build(&g);
        assert!(ix.topological_order().is_none());
        let back =
            ReachIndex::from_segment_payload(&ix.to_segment_payload()).unwrap();
        assert!(back.topological_order().is_none());
        assert!(back.leq(0, 1) && back.leq(1, 0) && !back.leq(2, 0));
    }

    #[test]
    fn truncated_or_garbled_payload_is_rejected() {
        let ix = ReachIndex::build(&diamond());
        let payload = ix.to_segment_payload();
        for cut in [0, 8, 15, payload.len() - 1] {
            assert!(
                ReachIndex::from_segment_payload(&payload[..cut]).is_none(),
                "cut at {cut} must be rejected"
            );
        }
        let mut bad = payload.clone();
        bad[8] = 7; // invalid has_topo flag
        assert!(ReachIndex::from_segment_payload(&bad).is_none());
        // a 65-node index exercises the multi-word row path
        let mut big = DiGraph::new(65);
        for u in 0..64 {
            big.add_edge(u, u + 1);
        }
        let bix = ReachIndex::build(&big);
        let bp = bix.to_segment_payload();
        let bback = ReachIndex::from_segment_payload(&bp).unwrap();
        assert!(bback.leq(0, 64));
        assert_eq!(bback.below_cone(64).len(), 65);
    }

    #[test]
    fn cyclic_graph_still_indexes() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        let ix = ReachIndex::build(&g);
        assert!(ix.topological_order().is_none());
        assert!(ix.leq(0, 1) && ix.leq(1, 0));
        assert!(ix.leq(0, 2) && !ix.leq(2, 0));
    }
}
