//! Canonical fusion of hierarchies under interoperation constraints
//! (Definitions 5–6, following the merge approach of the paper's
//! references [3, 2]).
//!
//! The construction:
//!
//! 1. Build the **hierarchy graph** (Definition 6): one vertex per
//!    `term:source` pair, edges from every source hierarchy's Hasse
//!    edges plus one edge per `≤` interoperation constraint.
//! 2. Collapse strongly connected components — vertices forced mutually
//!    `≤` by constraints become one fused node whose term set is the
//!    union of the member terms (this is where `booktitle` and
//!    `conference` merge).
//! 3. Reject if any `≠` constraint's endpoints fell into one component.
//! 4. Transitively reduce the quotient DAG, producing the canonical
//!    fused hierarchy, and record the witness maps ψᵢ (Definition 5).

use crate::constraints::Constraint;
use crate::error::{OntologyError, OntologyResult};
use crate::graph::DiGraph;
use crate::hierarchy::{HNodeId, Hierarchy};
use std::collections::HashMap;

/// The result of fusing hierarchies: the canonical fused hierarchy plus
/// the witness maps from each source hierarchy's nodes to fused nodes.
#[derive(Debug, Clone)]
pub struct Fusion {
    /// The canonical fused hierarchy.
    pub hierarchy: Hierarchy,
    /// `witness[i][source_node] = fused_node` — the ψᵢ of Definition 5.
    pub witness: Vec<HashMap<HNodeId, HNodeId>>,
}

impl Fusion {
    /// Fused node holding a source node's image.
    pub fn image(&self, source: usize, node: HNodeId) -> Option<HNodeId> {
        self.witness.get(source)?.get(&node).copied()
    }

    /// Fused node containing the given source term.
    pub fn image_of_term(
        &self,
        sources: &[Hierarchy],
        source: usize,
        term: &str,
    ) -> Option<HNodeId> {
        let node = sources.get(source)?.node_of(term)?;
        self.image(source, node)
    }
}

/// Fuse hierarchies under interoperation constraints into the canonical
/// fusion.
///
/// Errors:
/// * [`OntologyError::BadSourceIndex`] — a constraint references a
///   hierarchy index out of range.
/// * [`OntologyError::UnknownTerm`] — a constraint references a term not
///   present in its hierarchy.
/// * [`OntologyError::InequalityViolated`] — a `≠` constraint's endpoints
///   were forced into the same fused node.
pub fn fuse(hierarchies: &[Hierarchy], constraints: &[Constraint]) -> OntologyResult<Fusion> {
    let obs_span = toss_obs::span("ontology.fusion");
    obs_span.record("sources", hierarchies.len());
    obs_span.record("constraints", constraints.len());

    // ---- vertex space: (source, node) pairs ----------------------------
    let mut offsets = Vec::with_capacity(hierarchies.len());
    let mut total = 0usize;
    for h in hierarchies {
        offsets.push(total);
        total += h.len();
    }
    let vid = |source: usize, node: HNodeId| offsets[source] + node.0;

    // resolve a constraint endpoint to a vertex
    let resolve = |tr: &crate::constraints::TermRef| -> OntologyResult<usize> {
        let h = hierarchies
            .get(tr.source)
            .ok_or(OntologyError::BadSourceIndex {
                index: tr.source,
                count: hierarchies.len(),
            })?;
        let node = h
            .node_of(&tr.term)
            .ok_or_else(|| OntologyError::UnknownTerm(tr.to_string()))?;
        Ok(vid(tr.source, node))
    };

    // ---- hierarchy graph (Definition 6) --------------------------------
    let mut g = DiGraph::new(total);
    for (i, h) in hierarchies.iter().enumerate() {
        for (b, a) in h.edges() {
            g.add_edge(vid(i, b), vid(i, a));
        }
    }
    // Identical term strings across sources are implicitly equal: the
    // fused hierarchy resolves terms by string, so `year:0` and `year:1`
    // must land in one node. A `≠` constraint between same-string terms is
    // therefore unsatisfiable and reported as `InequalityViolated` below.
    {
        let mut by_term: HashMap<&str, usize> = HashMap::new();
        for (i, h) in hierarchies.iter().enumerate() {
            for node in h.nodes() {
                for t in h.terms_of(node).expect("node id from h.nodes()") {
                    let v = vid(i, node);
                    match by_term.get(t.as_str()) {
                        Some(&first) => {
                            g.add_edge(first, v);
                            g.add_edge(v, first);
                        }
                        None => {
                            by_term.insert(t.as_str(), v);
                        }
                    }
                }
            }
        }
    }
    let mut neq_pairs: Vec<(usize, usize, String, String)> = Vec::new();
    for c in constraints {
        match c {
            Constraint::Leq(x, y) => {
                let (u, v) = (resolve(x)?, resolve(y)?);
                g.add_edge(u, v);
            }
            Constraint::Neq(x, y) => {
                let (u, v) = (resolve(x)?, resolve(y)?);
                neq_pairs.push((u, v, x.to_string(), y.to_string()));
            }
        }
    }

    // ---- collapse SCCs --------------------------------------------------
    let comp = g.tarjan_scc();
    let comp_count = comp.iter().copied().max().map_or(0, |m| m + 1);

    for (u, v, l, r) in &neq_pairs {
        if comp[*u] == comp[*v] {
            return Err(OntologyError::InequalityViolated {
                left: l.clone(),
                right: r.clone(),
            });
        }
    }

    // term sets per component (deduplicated by the Hierarchy builder)
    let mut comp_terms: Vec<Vec<String>> = vec![Vec::new(); comp_count];
    for (i, h) in hierarchies.iter().enumerate() {
        for node in h.nodes() {
            let c = comp[vid(i, node)];
            for t in h.terms_of(node).expect("node id from h.nodes()") {
                if !comp_terms[c].contains(t) {
                    comp_terms[c].push(t.clone());
                }
            }
        }
    }

    // quotient DAG
    let mut q = DiGraph::new(comp_count);
    for (u, v) in g.edges() {
        if comp[u] != comp[v] {
            q.add_edge(comp[u], comp[v]);
        }
    }
    let q = q.transitive_reduction();

    // ---- materialize the fused hierarchy -------------------------------
    let mut fused = Hierarchy::new();
    let mut comp_to_fused: Vec<HNodeId> = Vec::with_capacity(comp_count);
    for terms in comp_terms {
        comp_to_fused.push(fused.add_node(terms)?);
    }
    for (u, v) in q.edges() {
        fused.add_edge(comp_to_fused[u], comp_to_fused[v])?;
    }

    let witness = hierarchies
        .iter()
        .enumerate()
        .map(|(i, h)| {
            h.nodes()
                .map(|n| (n, comp_to_fused[comp[vid(i, n)]]))
                .collect()
        })
        .collect();

    if obs_span.is_recording() {
        // merged clusters = fused nodes holding more than one source vertex
        let mut members = vec![0usize; comp_count];
        for c in comp.iter().copied() {
            members[c] += 1;
        }
        obs_span.record("nodes_in", total);
        obs_span.record("nodes_out", fused.len());
        obs_span.record(
            "merged_clusters",
            members.iter().filter(|&&m| m > 1).count(),
        );
    }
    toss_obs::metrics::counter("ontology.fusion.runs").inc();
    toss_obs::metrics::histogram("ontology.fusion.ns").observe_duration(obs_span.finish());

    Ok(Fusion {
        hierarchy: fused,
        witness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;

    /// Simplified SIGMOD part-of hierarchy (paper Figure 9a).
    fn sigmod() -> Hierarchy {
        from_pairs(&[
            ("article", "articles"),
            ("author", "article"),
            ("title", "article"),
            ("conference", "article"),
            ("year", "article"),
            ("confYear", "article"),
        ])
        .unwrap()
    }

    /// Simplified DBLP part-of hierarchy (paper Figure 9b).
    fn dblp() -> Hierarchy {
        from_pairs(&[
            ("author", "inproceedings"),
            ("title", "inproceedings"),
            ("booktitle", "inproceedings"),
            ("year", "inproceedings"),
            ("pages", "inproceedings"),
        ])
        .unwrap()
    }

    /// The Example 10 constraints: conference:0 = booktitle:1,
    /// title:0 = title:1, author:0 = author:1, year:0 = year:1,
    /// confYear:0 = year:1.
    fn example10_constraints() -> Vec<Constraint> {
        let mut cs = Vec::new();
        cs.extend(Constraint::eq("conference", 0, "booktitle", 1));
        cs.extend(Constraint::eq("title", 0, "title", 1));
        cs.extend(Constraint::eq("author", 0, "author", 1));
        cs.extend(Constraint::eq("year", 0, "year", 1));
        cs.extend(Constraint::eq("confYear", 0, "year", 1));
        cs
    }

    #[test]
    fn example10_fusion_merges_equal_terms() {
        let f = fuse(&[sigmod(), dblp()], &example10_constraints()).unwrap();
        let h = &f.hierarchy;
        // booktitle and conference share one fused node
        let bc = h.node_of("booktitle").unwrap();
        assert_eq!(h.node_of("conference"), Some(bc));
        let ts = h.terms_of(bc).unwrap();
        assert!(ts.contains(&"booktitle".to_string()));
        assert!(ts.contains(&"conference".to_string()));
        // year, confYear and year:1 all merged (confYear = year:1 = year:0)
        let y = h.node_of("year").unwrap();
        assert_eq!(h.node_of("confYear"), Some(y));
        // structure is preserved: author below both article and inproceedings
        assert!(h.leq_terms("author", "article"));
        assert!(h.leq_terms("author", "inproceedings"));
        assert!(h.leq_terms("booktitle", "inproceedings"));
        assert!(h.leq_terms("conference", "article"));
    }

    #[test]
    fn definition5_axiom1_order_preservation() {
        let sources = [sigmod(), dblp()];
        let f = fuse(&sources, &example10_constraints()).unwrap();
        for (i, src) in sources.iter().enumerate() {
            assert!(
                src.order_preserved_into(&f.hierarchy, |n| f.image(i, n)),
                "axiom 1 violated for source {i}"
            );
        }
    }

    #[test]
    fn definition5_axiom2_constraints_preserved() {
        let sources = [sigmod(), dblp()];
        let cs = example10_constraints();
        let f = fuse(&sources, &cs).unwrap();
        for c in &cs {
            if let Constraint::Leq(x, y) = c {
                let ix = f.image_of_term(&sources, x.source, &x.term).unwrap();
                let iy = f.image_of_term(&sources, y.source, &y.term).unwrap();
                assert!(f.hierarchy.leq(ix, iy), "constraint {c} not preserved");
            }
        }
    }

    #[test]
    fn witnesses_are_total() {
        let sources = [sigmod(), dblp()];
        let f = fuse(&sources, &example10_constraints()).unwrap();
        for (i, src) in sources.iter().enumerate() {
            for n in src.nodes() {
                assert!(f.image(i, n).is_some(), "ψ{i} not total at {n}");
            }
        }
    }

    #[test]
    fn neq_violation_detected() {
        let mut cs = Constraint::eq("author", 0, "author", 1);
        cs.push(Constraint::neq("author", 0, "author", 1));
        let e = fuse(&[sigmod(), dblp()], &cs).unwrap_err();
        assert!(matches!(e, OntologyError::InequalityViolated { .. }));
    }

    #[test]
    fn neq_between_distinct_terms_is_fine() {
        let mut cs = example10_constraints();
        cs.push(Constraint::neq("pages", 1, "author", 0));
        assert!(fuse(&[sigmod(), dblp()], &cs).is_ok());
    }

    #[test]
    fn unknown_term_and_bad_index_errors() {
        let cs = vec![Constraint::leq("nope", 0, "author", 1)];
        assert!(matches!(
            fuse(&[sigmod(), dblp()], &cs),
            Err(OntologyError::UnknownTerm(_))
        ));
        let cs = vec![Constraint::leq("author", 5, "author", 1)];
        assert!(matches!(
            fuse(&[sigmod(), dblp()], &cs),
            Err(OntologyError::BadSourceIndex { index: 5, count: 2 })
        ));
    }

    #[test]
    fn same_string_terms_merge_implicitly() {
        let f = fuse(&[sigmod(), dblp()], &[]).unwrap();
        let h = &f.hierarchy;
        // `author` appears in both sources and lands in one fused node
        let a = h.node_of("author").unwrap();
        assert_eq!(h.terms_of(a).unwrap(), &["author".to_string()]);
        assert!(h.leq_terms("author", "article"));
        assert!(h.leq_terms("author", "inproceedings"));
        // source-specific terms stay distinct
        assert_ne!(h.node_of("booktitle"), h.node_of("conference"));
    }

    #[test]
    fn neq_between_same_string_terms_is_unsatisfiable() {
        let cs = vec![Constraint::neq("author", 0, "author", 1)];
        let e = fuse(&[sigmod(), dblp()], &cs).unwrap_err();
        assert!(matches!(e, OntologyError::InequalityViolated { .. }));
    }

    #[test]
    fn leq_only_constraint_orders_without_merging() {
        let h1 = from_pairs(&[("a", "b")]).unwrap();
        let h2 = from_pairs(&[("c", "d")]).unwrap();
        let cs = vec![Constraint::leq("b", 0, "c", 1)];
        let f = fuse(&[h1, h2], &cs).unwrap();
        let h = &f.hierarchy;
        assert!(h.leq_terms("a", "d"));
        assert!(h.leq_terms("b", "c"));
        assert!(!h.leq_terms("c", "b"));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn constraint_cycle_merges_chain() {
        // a:0 ≤ x:1 and x:1 ≤ a:0 → merge
        let h1 = from_pairs(&[("a", "b")]).unwrap();
        let h2 = from_pairs(&[("x", "y")]).unwrap();
        let mut cs = Vec::new();
        cs.extend(Constraint::eq("a", 0, "x", 1));
        let f = fuse(&[h1, h2], &cs).unwrap();
        let n = f.hierarchy.node_of("a").unwrap();
        assert_eq!(f.hierarchy.node_of("x"), Some(n));
        assert!(f.hierarchy.leq_terms("a", "y"));
        assert!(f.hierarchy.leq_terms("x", "b"));
    }

    #[test]
    fn fused_hierarchy_is_hasse_reduced() {
        // source already has a redundant edge pattern after merge:
        // h1: a≤b≤c ; h2: p≤q ; a=p, c=q forces nothing redundant, but
        // add explicit leq a≤c-like shortcut via constraints:
        let h1 = from_pairs(&[("a", "b"), ("b", "c")]).unwrap();
        let h2 = from_pairs(&[("p", "q")]).unwrap();
        let mut cs = Vec::new();
        cs.extend(Constraint::eq("a", 0, "p", 1));
        cs.extend(Constraint::eq("c", 0, "q", 1));
        let f = fuse(&[h1, h2], &cs).unwrap();
        // p≤q becomes {a,p} ≤ {c,q}: redundant given {a,p} ≤ b ≤ {c,q}
        let edges = f.hierarchy.edges();
        assert_eq!(edges.len(), 2, "edges: {edges:?}");
    }
}
