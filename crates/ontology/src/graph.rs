//! A small digraph toolkit: Tarjan SCC, reachability, transitive closure
//! and reduction, cycle detection, and Bron-Kerbosch maximal cliques (used
//! by the SEA algorithm on the ε-similarity graph).

use std::collections::HashSet;

/// A dense `n × n` bit matrix; row-major, 64 bits per word. The closure
/// and reachability computations use it instead of `Vec<Vec<bool>>` so a
/// 5000-node hierarchy costs ~3 MB instead of ~25 MB and row unions are
/// word-parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        BitMatrix {
            n,
            words,
            bits: vec![0u64; words * n],
        }
    }

    /// Side length of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0 × 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The bit at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.words + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// Set the bit at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words + col / 64] |= 1u64 << (col % 64);
    }

    /// The words of `row`.
    pub fn row(&self, row: usize) -> &[u64] {
        &self.bits[row * self.words..(row + 1) * self.words]
    }

    /// OR `row` of this matrix into `acc` (which must have row width).
    pub fn or_row_into(&self, row: usize, acc: &mut [u64]) {
        for (a, w) in acc.iter_mut().zip(self.row(row)) {
            *a |= w;
        }
    }

    /// Column indices of the set bits in `row`, ascending.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        iter_word_bits(self.row(row))
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        self.row(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Words per row (the row stride).
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// The full matrix as row-major words — the persisted form.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuild an `n × n` matrix from row-major words, as produced by
    /// [`BitMatrix::words`]. `None` if the word count does not match.
    pub fn from_words(n: usize, bits: Vec<u64>) -> Option<Self> {
        let words = n.div_ceil(64);
        if bits.len() != words * n {
            return None;
        }
        Some(BitMatrix { n, words, bits })
    }
}

/// Iterate the set-bit indices of a word slice, ascending.
pub fn iter_word_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(i, &w)| {
        let mut rest = w;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            Some(i * 64 + bit)
        })
    })
}

/// A directed graph over dense `usize` vertex ids.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    /// Forward adjacency lists.
    succ: Vec<Vec<usize>>,
}

impl DiGraph {
    /// A graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add a vertex; returns its id.
    pub fn add_vertex(&mut self) -> usize {
        self.succ.push(Vec::new());
        self.succ.len() - 1
    }

    /// Add a directed edge `u → v` (idempotent).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if !self.succ[u].contains(&v) {
            self.succ[u].push(v);
        }
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// All edges as `(u, v)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
            .collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Vertices reachable from `start` (excluding `start` unless it lies
    /// on a cycle through itself).
    pub fn reachable_from(&self, start: usize) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut stack = self.succ[start].clone();
        while let Some(v) = stack.pop() {
            if seen.insert(v) {
                stack.extend_from_slice(&self.succ[v]);
            }
        }
        seen
    }

    /// Whether there is a non-empty path `u →+ v`.
    pub fn has_path(&self, u: usize, v: usize) -> bool {
        self.reachable_from(u).contains(&v)
    }

    /// Whether the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // colors: 0 = white, 1 = gray, 2 = black; iterative DFS
        let n = self.len();
        let mut color = vec![0u8; n];
        for s in 0..n {
            if color[s] != 0 {
                continue;
            }
            // stack of (vertex, next-successor-index)
            let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
            color[s] = 1;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.succ[u].len() {
                    let v = self.succ[u][*i];
                    *i += 1;
                    match color[v] {
                        0 => {
                            color[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    color[u] = 2;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Strongly connected components (Tarjan, iterative). Returns a vector
    /// mapping each vertex to its component index; components are numbered
    /// in reverse topological order (a component's successors have smaller
    /// indices).
    pub fn tarjan_scc(&self) -> Vec<usize> {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        for s in 0..n {
            if index[s] != usize::MAX {
                continue;
            }
            // iterative Tarjan: call stack of (vertex, successor cursor)
            let mut call: Vec<(usize, usize)> = vec![(s, 0)];
            index[s] = next_index;
            lowlink[s] = next_index;
            next_index += 1;
            stack.push(s);
            on_stack[s] = true;

            while let Some(&mut (u, ref mut cursor)) = call.last_mut() {
                if *cursor < self.succ[u].len() {
                    let v = self.succ[u][*cursor];
                    *cursor += 1;
                    if index[v] == usize::MAX {
                        index[v] = next_index;
                        lowlink[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push((v, 0));
                    } else if on_stack[v] {
                        lowlink[u] = lowlink[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[u]);
                    }
                    if lowlink[u] == index[u] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == u {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// Transitive closure as a boolean reachability matrix. Kept for
    /// callers that want the simple `Vec<Vec<bool>>` shape; the semantic
    /// fast path uses [`DiGraph::transitive_closure_bits`] directly.
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        let n = self.len();
        let bits = self.transitive_closure_bits();
        (0..n)
            .map(|u| (0..n).map(|v| bits.get(u, v)).collect())
            .collect()
    }

    /// Transitive closure as a [`BitMatrix`]: bit `(u, v)` is set iff
    /// there is a non-empty path `u →+ v`. DAGs use a bitset dynamic
    /// program over the reverse topological order (`O(V·E/64)`); cyclic
    /// graphs fall back to per-vertex DFS.
    pub fn transitive_closure_bits(&self) -> BitMatrix {
        let n = self.len();
        let mut out = BitMatrix::new(n);
        match self.topological_order() {
            Some(order) => {
                // process sinks first so successors' rows are complete
                let words = out.words;
                for &u in order.iter().rev() {
                    // collect into a scratch row to appease the borrow
                    // checker without cloning per-successor
                    let mut scratch = vec![0u64; words];
                    for &v in &self.succ[u] {
                        scratch[v / 64] |= 1u64 << (v % 64);
                        out.or_row_into(v, &mut scratch);
                    }
                    out.bits[u * words..(u + 1) * words].copy_from_slice(&scratch);
                }
            }
            None => {
                for u in 0..n {
                    for v in self.reachable_from(u) {
                        out.set(u, v);
                    }
                }
            }
        }
        out
    }

    /// A topological order of the vertices (Kahn), or `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for vs in &self.succ {
            for &v in vs {
                indeg[v] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.succ[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Transitive reduction of a DAG: the unique minimal edge set with the
    /// same reachability (the Hasse diagram when the DAG encodes ≤).
    ///
    /// Panics in debug builds if the graph has a cycle.
    pub fn transitive_reduction(&self) -> DiGraph {
        debug_assert!(!self.has_cycle(), "transitive reduction requires a DAG");
        let closure = self.transitive_closure_bits();
        let mut out = DiGraph::new(self.len());
        for (u, v) in self.edges() {
            // u→v is redundant iff some other successor w of u reaches v
            let redundant = self.succ[u]
                .iter()
                .any(|&w| w != v && closure.get(w, v));
            if !redundant {
                out.add_edge(u, v);
            }
        }
        out
    }
}

/// An undirected graph used for clique enumeration.
#[derive(Debug, Clone)]
pub struct UnGraph {
    adj: Vec<HashSet<usize>>,
}

impl UnGraph {
    /// A graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        UnGraph {
            adj: vec![HashSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add an undirected edge (self-loops ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u != v {
            self.adj[u].insert(v);
            self.adj[v].insert(u);
        }
    }

    /// Whether `u` and `v` are adjacent.
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// All maximal cliques (Bron-Kerbosch with pivoting). Every vertex
    /// appears in at least one clique (isolated vertices yield singleton
    /// cliques). Cliques are returned with sorted members, in
    /// lexicographic order of their member lists, so output is
    /// deterministic.
    pub fn maximal_cliques(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        if n == 0 {
            return Vec::new(); // the empty set is not a clique here
        }
        let mut cliques = Vec::new();
        let mut r: Vec<usize> = Vec::new();
        let p: HashSet<usize> = (0..n).collect();
        let x: HashSet<usize> = HashSet::new();
        self.bron_kerbosch(&mut r, p, x, &mut cliques);
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        cliques
    }

    fn bron_kerbosch(
        &self,
        r: &mut Vec<usize>,
        p: HashSet<usize>,
        x: HashSet<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if p.is_empty() && x.is_empty() {
            out.push(r.clone());
            return;
        }
        // pivot: vertex of P ∪ X with most neighbors in P
        let pivot = p
            .iter()
            .chain(x.iter())
            .max_by_key(|&&u| self.adj[u].intersection(&p).count())
            .copied()
            .expect("p or x nonempty");
        let candidates: Vec<usize> = p
            .iter()
            .filter(|&&v| !self.adj[pivot].contains(&v))
            .copied()
            .collect();
        let mut p = p;
        let mut x = x;
        for v in candidates {
            r.push(v);
            let np: HashSet<usize> = p.intersection(&self.adj[v]).copied().collect();
            let nx: HashSet<usize> = x.intersection(&self.adj[v]).copied().collect();
            self.bron_kerbosch(r, np, nx, out);
            r.pop();
            p.remove(&v);
            x.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 → 1 → 3, 0 → 2 → 3, plus redundant 0 → 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn reachability_and_paths() {
        let g = diamond();
        assert!(g.has_path(0, 3));
        assert!(g.has_path(1, 3));
        assert!(!g.has_path(3, 0));
        assert!(!g.has_path(1, 2));
        assert_eq!(g.reachable_from(0).len(), 3);
    }

    #[test]
    fn cycle_detection() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.has_cycle());
        g.add_edge(2, 0);
        assert!(g.has_cycle());
        // self loop
        let mut s = DiGraph::new(1);
        s.add_edge(0, 0);
        assert!(s.has_cycle());
    }

    #[test]
    fn tarjan_finds_components() {
        // two 2-cycles and an isolated vertex
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g.add_edge(1, 2); // bridge between components
        let comp = g.tarjan_scc();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        // reverse topological numbering: successors get smaller indices
        assert!(comp[2] < comp[0]);
    }

    #[test]
    fn tarjan_on_dag_gives_singletons() {
        let g = diamond();
        let comp = g.tarjan_scc();
        let distinct: HashSet<usize> = comp.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        let g = diamond();
        let r = g.transitive_reduction();
        assert_eq!(r.edge_count(), 4);
        assert!(!r.edges().contains(&(0, 3)));
        // reachability preserved
        assert!(r.has_path(0, 3));
    }

    #[test]
    fn transitive_reduction_of_chain_is_identity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.transitive_reduction();
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn closure_matrix() {
        let g = diamond();
        let c = g.transitive_closure();
        assert!(c[0][3] && c[0][1] && c[0][2]);
        assert!(!c[3][0]);
        assert!(!c[0][0]); // no self loop
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        for (u, v) in g.edges() {
            assert!(pos(u) < pos(v), "{u} must precede {v}");
        }
        let mut cyc = DiGraph::new(2);
        cyc.add_edge(0, 1);
        cyc.add_edge(1, 0);
        assert!(cyc.topological_order().is_none());
    }

    #[test]
    fn closure_on_cyclic_graph_falls_back() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        let c = g.transitive_closure();
        assert!(c[0][0] && c[0][1] && c[0][2]);
        assert!(c[1][0] && c[1][1]);
        assert!(!c[2][0]);
    }

    #[test]
    fn closure_matches_dfs_on_random_dag() {
        // a larger layered DAG: bitset DP must agree with per-vertex DFS
        let mut g = DiGraph::new(80);
        for u in 0..79 {
            g.add_edge(u, u + 1);
            if u % 3 == 0 && u + 5 < 80 {
                g.add_edge(u, u + 5);
            }
        }
        let c = g.transitive_closure();
        for (u, row) in c.iter().enumerate() {
            let r = g.reachable_from(u);
            for (v, &reachable) in row.iter().enumerate() {
                assert_eq!(reachable, r.contains(&v), "mismatch at {u},{v}");
            }
        }
    }

    #[test]
    fn bit_closure_matches_bool_closure() {
        let g = diamond();
        let bools = g.transitive_closure();
        let bits = g.transitive_closure_bits();
        for (u, brow) in bools.iter().enumerate() {
            for (v, &b) in brow.iter().enumerate() {
                assert_eq!(b, bits.get(u, v));
            }
            let row: Vec<usize> = bits.iter_row(u).collect();
            let expect: Vec<usize> = (0..g.len()).filter(|&v| brow[v]).collect();
            assert_eq!(row, expect, "iter_row is the ascending set-bit list");
            assert_eq!(bits.row_count(u), expect.len());
        }
    }

    #[test]
    fn bitmatrix_or_row_into_unions() {
        let mut m = BitMatrix::new(70);
        m.set(0, 3);
        m.set(0, 69);
        m.set(1, 3);
        m.set(1, 64);
        let mut acc = vec![0u64; 2];
        m.or_row_into(0, &mut acc);
        m.or_row_into(1, &mut acc);
        let got: Vec<usize> = iter_word_bits(&acc).collect();
        assert_eq!(got, vec![3, 64, 69]);
    }

    #[test]
    fn cliques_of_triangle_plus_pendant() {
        // triangle 0-1-2, pendant 3-0, isolated 4
        let mut g = UnGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let cliques = g.maximal_cliques();
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![0, 3], vec![4]]);
    }

    #[test]
    fn every_vertex_is_in_some_clique() {
        let mut g = UnGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let cliques = g.maximal_cliques();
        let covered: HashSet<usize> = cliques.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 6);
    }

    #[test]
    fn clique_of_complete_graph_is_single() {
        let mut g = UnGraph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(g.maximal_cliques(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn overlapping_cliques_enumerated() {
        // the paper's A-B / A-C example: d(A,B)<=ε, d(A,C)<=ε, d(B,C)>ε
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.maximal_cliques(), vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = UnGraph::new(0);
        assert!(g.maximal_cliques().is_empty());
    }
}
