//! Graphviz DOT export for hierarchies and SEOs — the quickest way to
//! eyeball what the Ontology Maker mined and what SEA merged.

use crate::hierarchy::Hierarchy;
use crate::seo::Seo;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a hierarchy as a DOT digraph (edges point from below to above,
/// i.e. along ≤).
pub fn hierarchy_to_dot(h: &Hierarchy, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for n in h.nodes() {
        let label = h
            .terms_of(n)
            .map(|ts| ts.iter().map(|t| escape(t)).collect::<Vec<_>>().join("\\n"))
            .unwrap_or_default();
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, label);
    }
    for (a, b) in h.edges() {
        let _ = writeln!(out, "  n{} -> n{};", a.0, b.0);
    }
    out.push_str("}\n");
    out
}

/// Render an SEO as a DOT digraph: enhanced nodes labelled with their
/// merged term sets, multi-term (merged) nodes highlighted.
pub fn seo_to_dot(seo: &Seo, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for e in seo.enhanced().nodes() {
        let terms = seo.terms_of_enhanced(e);
        let label = terms.iter().map(|t| escape(t)).collect::<Vec<_>>().join("\\n");
        let style = if terms.len() > 1 {
            ", style=filled, fillcolor=lightyellow"
        } else {
            ""
        };
        let _ = writeln!(out, "  e{} [label=\"{}\"{}];", e.0, label, style);
    }
    for (a, b) in seo.enhanced().edges() {
        let _ = writeln!(out, "  e{} -> e{};", a.0, b.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;
    use crate::sea::enhance;
    use toss_similarity::Levenshtein;

    #[test]
    fn hierarchy_dot_contains_nodes_and_edges() {
        let h = from_pairs(&[("author", "article"), ("title", "article")]).unwrap();
        let dot = hierarchy_to_dot(&h, "part-of");
        assert!(dot.starts_with("digraph \"part-of\" {"));
        assert!(dot.contains("label=\"author\""));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
        // edge count matches
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn seo_dot_highlights_merged_nodes() {
        let h = from_pairs(&[("model", "concept"), ("models", "concept")]).unwrap();
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        let dot = seo_to_dot(&seo, "seo");
        assert!(dot.contains("model\\nmodels") || dot.contains("models\\nmodel"));
        assert!(dot.contains("lightyellow"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut h = Hierarchy::new();
        h.add_leq("a\"quote", "top").unwrap();
        let dot = hierarchy_to_dot(&h, "x\"y");
        assert!(dot.contains("a\\\"quote"));
        assert!(dot.contains("digraph \"x\\\"y\""));
    }
}
