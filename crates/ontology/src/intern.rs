//! Interned term symbols.
//!
//! The semantic fast path works over `u32` symbols instead of owned
//! `String`s: cones and similarity classes are materialized once as
//! `Arc<[Sym]>` and resolved back to text only at the API boundary.
//! Interning order is chosen by the caller; the [`Seo`](crate::Seo)
//! interns its vocabulary in lexicographic order so that sorting by
//! symbol id is the same as sorting by term text.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned term symbol: a dense `u32` handle into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The symbol as a usize index (for memo tables keyed by symbol).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping terms to dense [`Sym`] handles and back.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: HashMap<Arc<str>, Sym>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its symbol. Re-interning an existing
    /// term returns the original symbol.
    pub fn intern(&mut self, term: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(term) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let name: Arc<str> = Arc::from(term);
        self.names.push(Arc::clone(&name));
        self.by_name.insert(name, sym);
        sym
    }

    /// Look up an already-interned term without inserting.
    pub fn lookup(&self, term: &str) -> Option<Sym> {
        self.by_name.get(term).copied()
    }

    /// Resolve a symbol back to its term text.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
    }

    #[test]
    fn lexicographic_interning_orders_symbols() {
        let mut words = ["pear", "apple", "quince", "fig"];
        words.sort_unstable();
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = words.iter().map(|w| t.intern(w)).collect();
        let mut sorted = syms.clone();
        sorted.sort_unstable();
        assert_eq!(syms, sorted, "sorted interning makes Sym order lexical");
    }
}
