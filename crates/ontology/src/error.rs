//! Errors for ontology construction, fusion and similarity enhancement.

use std::fmt;

/// Errors raised while building, fusing or enhancing hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// Adding an edge would create a cycle — hierarchies are DAGs.
    CycleDetected {
        /// Rendering of the lower node of the offending edge.
        below: String,
        /// Rendering of the upper node.
        above: String,
    },
    /// A referenced term does not exist in the hierarchy.
    UnknownTerm(String),
    /// A node id did not belong to the hierarchy.
    InvalidNode(usize),
    /// Fusion failed: a `≠` constraint's endpoints were forced equal.
    InequalityViolated {
        /// One endpoint, as `term:source`.
        left: String,
        /// Other endpoint, as `term:source`.
        right: String,
    },
    /// An interoperation constraint referenced a hierarchy index out of
    /// range.
    BadSourceIndex {
        /// The offending index.
        index: usize,
        /// The number of hierarchies being fused.
        count: usize,
    },
    /// No similarity enhancement exists for the requested measure and ε
    /// (Definition 9: the triple is *similarity inconsistent*).
    SimilarityInconsistent(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::CycleDetected { below, above } => {
                write!(f, "edge {below} ≤ {above} would create a cycle")
            }
            OntologyError::UnknownTerm(t) => write!(f, "unknown term `{t}`"),
            OntologyError::InvalidNode(i) => write!(f, "invalid hierarchy node id {i}"),
            OntologyError::InequalityViolated { left, right } => {
                write!(f, "constraint {left} ≠ {right} violated by fusion")
            }
            OntologyError::BadSourceIndex { index, count } => {
                write!(f, "constraint references hierarchy {index} of {count}")
            }
            OntologyError::SimilarityInconsistent(why) => {
                write!(f, "similarity inconsistent: {why}")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

/// Result alias for ontology operations.
pub type OntologyResult<T> = Result<T, OntologyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let e = OntologyError::CycleDetected {
            below: "a".into(),
            above: "b".into(),
        };
        assert_eq!(e.to_string(), "edge a ≤ b would create a cycle");
        assert_eq!(
            OntologyError::UnknownTerm("x".into()).to_string(),
            "unknown term `x`"
        );
        assert_eq!(
            OntologyError::BadSourceIndex { index: 3, count: 2 }.to_string(),
            "constraint references hierarchy 3 of 2"
        );
    }
}
