//! # toss-ontology — hierarchies, fusion and similarity enhancement
//!
//! Implements Section 4 of the TOSS paper:
//!
//! * [`hierarchy`] — Hasse diagrams of partial orders (Definition 3's
//!   hierarchies), with reachability, cones and transitive reduction.
//! * [`constraints`] — interoperation constraints between hierarchies
//!   (Definition 4): `x:i ≤ y:j` and `x:i ≠ y:j` (equality desugars to two
//!   `≤` constraints).
//! * [`fusion`] — the hierarchy graph (Definition 6) and the *canonical
//!   fusion* of several hierarchies under constraints (Definition 5),
//!   built by collapsing the strongly connected components of the
//!   hierarchy graph and transitively reducing the quotient.
//! * [`sea`] — the SEA algorithm (Figure 12): similarity enhancement of a
//!   hierarchy w.r.t. a node similarity measure and threshold ε, yielding
//!   a [`seo::Seo`] (Definitions 8–9, Theorems 1–2).
//! * [`graph`] — the supporting digraph toolkit (Tarjan SCC, reachability,
//!   transitive closure/reduction, Bron-Kerbosch maximal cliques).
//! * [`reach`] / [`intern`] — the semantic fast path: per-hierarchy
//!   reachability bitsets with memoized cones, and the `u32` symbol
//!   table the SEO uses to hand out cones without re-allocating terms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod dot;
pub mod error;
pub mod fusion;
pub mod graph;
pub mod hierarchy;
pub mod intern;
pub mod ontology;
pub mod persist;
pub mod poset;
pub mod reach;
pub mod sea;
pub mod seo;

pub use constraints::{Constraint, TermRef};
pub use error::{OntologyError, OntologyResult};
pub use fusion::{fuse, Fusion};
pub use hierarchy::{HNodeId, Hierarchy};
pub use intern::{Sym, SymbolTable};
pub use ontology::Ontology;
pub use reach::ReachIndex;
pub use sea::{enhance, enhance_exhaustive};
pub use seo::Seo;
