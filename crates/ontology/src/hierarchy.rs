//! Hierarchies — Hasse diagrams of partial orders (Definition 3).
//!
//! A hierarchy's nodes are *sets of strings* (after fusion or similarity
//! enhancement a node may carry several synonymous/similar terms; before,
//! nodes usually carry one term each). An edge `(u, v)` means `u ≤ v`
//! directly — e.g. for *part-of*, `author → article`; for *isa*,
//! `web search company → computer company`. The Hasse property (no
//! redundant edges) is restored on demand by [`Hierarchy::reduce`].

use crate::error::{OntologyError, OntologyResult};
use crate::graph::DiGraph;
use crate::reach::ReachIndex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Identifier of a node within one [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HNodeId(pub usize);

impl std::fmt::Display for HNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A Hasse diagram whose nodes carry term sets.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// Term sets per node, kept sorted and deduplicated.
    terms: Vec<Vec<String>>,
    /// Edge `(u, v)` means `u ≤ v` directly.
    graph: DiGraph,
    /// term → node containing it (terms are unique across nodes).
    by_term: HashMap<String, HNodeId>,
    /// Lazily built reachability index for the current graph snapshot.
    /// Every mutation drops it (and bumps `rev`), so the index can never
    /// serve stale cones after fusion or re-enhancement.
    reach: OnceLock<Arc<ReachIndex>>,
    /// Monotone revision counter, bumped on every structural mutation.
    rev: u64,
}

impl Hierarchy {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node containing a single term; returns the existing node if
    /// the term is already present.
    pub fn add_term(&mut self, term: &str) -> HNodeId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        self.add_node(vec![term.to_string()])
            .expect("fresh term cannot collide")
    }

    /// Add a node containing a set of terms. Errors with
    /// [`OntologyError::UnknownTerm`]'s sibling semantics if any term is
    /// already in another node (terms are unique across nodes).
    pub fn add_node(&mut self, mut terms: Vec<String>) -> OntologyResult<HNodeId> {
        terms.sort();
        terms.dedup();
        for t in &terms {
            if self.by_term.contains_key(t) {
                return Err(OntologyError::UnknownTerm(format!(
                    "term `{t}` already belongs to a node"
                )));
            }
        }
        self.invalidate_reach();
        let id = HNodeId(self.graph.add_vertex());
        for t in &terms {
            self.by_term.insert(t.clone(), id);
        }
        self.terms.push(terms);
        Ok(id)
    }

    /// Drop the cached reachability index after a structural mutation.
    fn invalidate_reach(&mut self) {
        self.reach = OnceLock::new();
        self.rev += 1;
    }

    /// Structural revision of this hierarchy; bumped on every mutation.
    /// Callers that cache derived structures (the rewrite cache, the SEO
    /// version stamp) key on this to detect re-enhanced ontologies.
    pub fn revision(&self) -> u64 {
        self.rev
    }

    /// The reachability index for the current graph snapshot, building it
    /// on first use. Cone queries (`below`, `above`, `below_many`) always
    /// come from here; `leq` only consults it when already built so a
    /// single ≤ probe never pays an index build.
    pub fn reach_index(&self) -> Arc<ReachIndex> {
        Arc::clone(
            self.reach
                .get_or_init(|| Arc::new(ReachIndex::build(&self.graph))),
        )
    }

    /// The reachability index if one has already been built (or
    /// installed), without triggering a build.
    pub fn cached_reach_index(&self) -> Option<Arc<ReachIndex>> {
        self.reach.get().map(Arc::clone)
    }

    /// Install a persisted reachability index for the current graph
    /// snapshot, so the first cone query skips the closure DP. Rejected
    /// (returns `false`) when the index covers a different node count or
    /// when one is already cached — the persisted copy is only trusted
    /// as a cache seed, never as an override.
    pub fn install_reach_index(&self, index: Arc<ReachIndex>) -> bool {
        if index.len() != self.graph.len() {
            return false;
        }
        self.reach.set(index).is_ok()
    }

    /// Assert `below ≤ above`. Rejects edges that would create a cycle
    /// (hierarchies are acyclic by definition).
    pub fn add_edge(&mut self, below: HNodeId, above: HNodeId) -> OntologyResult<()> {
        if below == above || self.graph.has_path(above.0, below.0) {
            return Err(OntologyError::CycleDetected {
                below: self.render_node(below),
                above: self.render_node(above),
            });
        }
        self.invalidate_reach();
        self.graph.add_edge(below.0, above.0);
        Ok(())
    }

    /// Convenience: assert `below_term ≤ above_term`, creating the nodes
    /// as needed.
    pub fn add_leq(&mut self, below_term: &str, above_term: &str) -> OntologyResult<()> {
        let b = self.add_term(below_term);
        let a = self.add_term(above_term);
        self.add_edge(b, a)
    }

    /// Node containing a term.
    pub fn node_of(&self, term: &str) -> Option<HNodeId> {
        self.by_term.get(term).copied()
    }

    /// Terms of a node.
    pub fn terms_of(&self, id: HNodeId) -> OntologyResult<&[String]> {
        self.terms
            .get(id.0)
            .map(Vec::as_slice)
            .ok_or(OntologyError::InvalidNode(id.0))
    }

    /// `a ≤ b` in the reflexive-transitive order. Answered by the
    /// reachability index when one has already been built (a single bit
    /// test); otherwise by DFS, so a lone probe never pays an index build.
    pub fn leq(&self, a: HNodeId, b: HNodeId) -> bool {
        if let Some(ix) = self.reach.get() {
            return ix.leq(a.0, b.0);
        }
        a == b || self.graph.has_path(a.0, b.0)
    }

    /// `x ≤ y` on terms; false when either term is absent.
    pub fn leq_terms(&self, x: &str, y: &str) -> bool {
        match (self.node_of(x), self.node_of(y)) {
            (Some(a), Some(b)) => self.leq(a, b),
            _ => false,
        }
    }

    /// All nodes ≤ `id` (the *below cone*, including `id`). For a type
    /// hierarchy this is the paper's `below_H(τ)` restricted to types —
    /// domain values are appended by the caller that owns the type system.
    pub fn below(&self, id: HNodeId) -> Vec<HNodeId> {
        self.below_many(&[id])
    }

    /// All nodes ≤ *some* target (union of below cones, including the
    /// targets themselves). Served from the shared reachability index —
    /// a word-parallel OR over precomputed descendant bitsets, replacing
    /// the old per-call reverse-adjacency rebuild + BFS.
    pub fn below_many(&self, targets: &[HNodeId]) -> Vec<HNodeId> {
        let ids: Vec<usize> = targets.iter().map(|t| t.0).collect();
        self.reach_index()
            .below_many(&ids)
            .into_iter()
            .map(HNodeId)
            .collect()
    }

    /// All nodes ≥ `id` (the *above cone*, including `id`), ascending.
    /// Served from the shared reachability index's memoized cone — no
    /// per-call sort/dedup allocation.
    pub fn above(&self, id: HNodeId) -> Vec<HNodeId> {
        self.reach_index()
            .above_cone(id.0)
            .iter()
            .map(|&u| HNodeId(u as usize))
            .collect()
    }

    /// All terms of all nodes ≤ the node containing `term` (including the
    /// node's own terms); empty if the term is absent.
    pub fn below_terms(&self, term: &str) -> Vec<String> {
        let Some(id) = self.node_of(term) else {
            return Vec::new();
        };
        let mut out: Vec<String> = self
            .below(id)
            .into_iter()
            .flat_map(|n| self.terms[n.0].iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the hierarchy has no nodes.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total number of terms across nodes.
    pub fn term_count(&self) -> usize {
        self.by_term.len()
    }

    /// Direct Hasse edges as `(below, above)` pairs.
    pub fn edges(&self) -> Vec<(HNodeId, HNodeId)> {
        self.graph
            .edges()
            .into_iter()
            .map(|(u, v)| (HNodeId(u), HNodeId(v)))
            .collect()
    }

    /// Direct parents (covers) of a node.
    pub fn parents(&self, id: HNodeId) -> Vec<HNodeId> {
        self.graph
            .successors(id.0)
            .iter()
            .map(|&v| HNodeId(v))
            .collect()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = HNodeId> {
        (0..self.len()).map(HNodeId)
    }

    /// All terms in the hierarchy (sorted).
    pub fn all_terms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_term.keys().cloned().collect();
        v.sort();
        v
    }

    /// Restore the Hasse property: remove edges implied by transitivity.
    /// Returns the number of edges removed.
    pub fn reduce(&mut self) -> usize {
        let before = self.graph.edge_count();
        self.invalidate_reach();
        self.graph = self.graph.transitive_reduction();
        before - self.graph.edge_count()
    }

    /// Render a node as `{t1, t2}` for error messages.
    pub fn render_node(&self, id: HNodeId) -> String {
        match self.terms.get(id.0) {
            Some(ts) => format!("{{{}}}", ts.join(", ")),
            None => format!("<invalid {id}>"),
        }
    }

    /// The underlying digraph (read-only), for algorithms that need raw
    /// access (fusion, SEA).
    pub fn digraph(&self) -> &DiGraph {
        &self.graph
    }

    /// Check the Definition-5 axiom-1 property against another hierarchy:
    /// every ordered pair of this hierarchy must be ordered in `other`
    /// under the mapping `f` from our node ids to theirs.
    pub fn order_preserved_into(
        &self,
        other: &Hierarchy,
        f: impl Fn(HNodeId) -> Option<HNodeId>,
    ) -> bool {
        for a in self.nodes() {
            for b in self.nodes() {
                if self.leq(a, b) {
                    match (f(a), f(b)) {
                        (Some(fa), Some(fb)) if other.leq(fa, fb) => {}
                        _ => return false,
                    }
                }
            }
        }
        true
    }
}

/// Build a hierarchy from `(below, above)` term pairs — the natural way to
/// write the paper's examples.
pub fn from_pairs(pairs: &[(&str, &str)]) -> OntologyResult<Hierarchy> {
    let mut h = Hierarchy::new();
    for (b, a) in pairs {
        h.add_leq(b, a)?;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 7: author ≤ article, title ≤ article (part-of).
    fn example7() -> Hierarchy {
        from_pairs(&[("author", "article"), ("title", "article")]).unwrap()
    }

    #[test]
    fn example7_structure() {
        let h = example7();
        assert_eq!(h.len(), 3);
        assert!(h.leq_terms("author", "article"));
        assert!(h.leq_terms("title", "article"));
        assert!(!h.leq_terms("article", "author"));
        assert!(!h.leq_terms("author", "title"));
        // reflexivity
        assert!(h.leq_terms("author", "author"));
    }

    #[test]
    fn add_term_is_idempotent() {
        let mut h = Hierarchy::new();
        let a = h.add_term("x");
        let b = h.add_term("x");
        assert_eq!(a, b);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn duplicate_term_across_nodes_rejected() {
        let mut h = Hierarchy::new();
        h.add_term("x");
        assert!(h.add_node(vec!["x".into(), "y".into()]).is_err());
    }

    #[test]
    fn cycles_are_rejected() {
        let mut h = Hierarchy::new();
        h.add_leq("a", "b").unwrap();
        h.add_leq("b", "c").unwrap();
        let e = h.add_leq("c", "a").unwrap_err();
        assert!(matches!(e, OntologyError::CycleDetected { .. }));
        // self edge
        let a = h.node_of("a").unwrap();
        assert!(h.add_edge(a, a).is_err());
    }

    #[test]
    fn cones() {
        // diamond: d ≤ b ≤ a, d ≤ c ≤ a
        let h = from_pairs(&[("b", "a"), ("c", "a"), ("d", "b"), ("d", "c")]).unwrap();
        let a = h.node_of("a").unwrap();
        let d = h.node_of("d").unwrap();
        assert_eq!(h.below(a).len(), 4);
        assert_eq!(h.above(d).len(), 4);
        assert_eq!(h.below(d).len(), 1);
        let below_a = h.below_terms("a");
        assert_eq!(below_a, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn below_terms_of_missing_term_is_empty() {
        let h = example7();
        assert!(h.below_terms("nope").is_empty());
    }

    #[test]
    fn reduce_restores_hasse_property() {
        let mut h = from_pairs(&[("a", "b"), ("b", "c"), ("a", "c")]).unwrap();
        assert_eq!(h.edges().len(), 3);
        let removed = h.reduce();
        assert_eq!(removed, 1);
        assert!(h.leq_terms("a", "c")); // reachability preserved
        assert_eq!(h.edges().len(), 2);
    }

    #[test]
    fn multi_term_nodes() {
        let mut h = Hierarchy::new();
        let fused = h
            .add_node(vec!["booktitle".into(), "conference".into()])
            .unwrap();
        let art = h.add_term("article");
        h.add_edge(fused, art).unwrap();
        assert_eq!(h.node_of("booktitle"), Some(fused));
        assert_eq!(h.node_of("conference"), Some(fused));
        assert!(h.leq_terms("booktitle", "article"));
        assert!(h.leq_terms("conference", "article"));
        assert_eq!(h.terms_of(fused).unwrap().len(), 2);
    }

    #[test]
    fn order_preservation_check() {
        let h = example7();
        let mut bigger = example7();
        bigger.add_leq("article", "document").unwrap();
        // identity-by-term mapping
        let ok = h.order_preserved_into(&bigger, |id| {
            let t = &h.terms_of(id).unwrap()[0];
            bigger.node_of(t)
        });
        assert!(ok);
        // map everything to one node in a flat hierarchy: orders collapse, still preserved reflexively
        let mut flat = Hierarchy::new();
        let only = flat.add_term("x");
        assert!(h.order_preserved_into(&flat, |_| Some(only)));
        // dropping a node breaks preservation
        assert!(!h.order_preserved_into(&bigger, |id| {
            let t = &h.terms_of(id).unwrap()[0];
            if t == "article" {
                None
            } else {
                bigger.node_of(t)
            }
        }));
    }

    #[test]
    fn reach_index_invalidated_on_mutation() {
        let mut h = from_pairs(&[("b", "a")]).unwrap();
        let rev0 = h.revision();
        // force the index, then mutate: cones must reflect the new edge
        assert_eq!(h.below_terms("a"), vec!["a", "b"]);
        h.add_leq("c", "b").unwrap();
        assert!(h.revision() > rev0);
        assert_eq!(h.below_terms("a"), vec!["a", "b", "c"]);
        let b = h.node_of("b").unwrap();
        let c = h.node_of("c").unwrap();
        assert!(h.leq(c, b));
        // reduce also invalidates (and preserves order)
        h.add_leq("c", "a").unwrap();
        let rev1 = h.revision();
        h.reduce();
        assert!(h.revision() > rev1);
        assert!(h.leq_terms("c", "a"));
    }

    #[test]
    fn leq_without_index_matches_leq_with_index() {
        let h = from_pairs(&[("b", "a"), ("c", "a"), ("d", "b"), ("d", "c")]).unwrap();
        let cold: Vec<bool> = h
            .nodes()
            .flat_map(|a| h.nodes().map(move |b| (a, b)))
            .map(|(a, b)| h.leq(a, b))
            .collect();
        h.reach_index(); // build, then re-ask
        let warm: Vec<bool> = h
            .nodes()
            .flat_map(|a| h.nodes().map(move |b| (a, b)))
            .map(|(a, b)| h.leq(a, b))
            .collect();
        assert_eq!(cold, warm);
    }

    #[test]
    fn install_reach_index_seeds_the_cache_once() {
        let h = from_pairs(&[("b", "a"), ("c", "a")]).unwrap();
        let built = h.reach_index();
        let payload = built.to_segment_payload();

        // a structurally identical hierarchy accepts the persisted index
        let twin = from_pairs(&[("b", "a"), ("c", "a")]).unwrap();
        assert!(twin.cached_reach_index().is_none());
        let loaded =
            Arc::new(ReachIndex::from_segment_payload(&payload).unwrap());
        assert!(twin.install_reach_index(Arc::clone(&loaded)));
        assert!(Arc::ptr_eq(&twin.reach_index(), &loaded), "no rebuild");
        assert_eq!(twin.below_terms("a"), vec!["a", "b", "c"]);

        // wrong node count is rejected; an occupied cache is not replaced
        let small = from_pairs(&[("b", "a")]).unwrap();
        assert!(!small.install_reach_index(Arc::clone(&loaded)));
        assert!(!twin.install_reach_index(loaded));
    }

    #[test]
    fn parents_are_direct_covers_only() {
        let mut h = from_pairs(&[("a", "b"), ("b", "c"), ("a", "c")]).unwrap();
        h.reduce();
        let a = h.node_of("a").unwrap();
        let b = h.node_of("b").unwrap();
        assert_eq!(h.parents(a), vec![b]);
    }
}
