//! Similarity Enhanced Ontologies — the `(H', μ)` pair of Definition 8.
//!
//! Because similarity cliques can overlap (the paper's `{A,B}` / `{A,C}`
//! discussion), one term may appear in several `H'` nodes; the enhanced
//! [`Hierarchy`] therefore carries synthetic node labels while [`Seo`]
//! itself owns the real term sets and the μ mapping.

use crate::hierarchy::{HNodeId, Hierarchy};
use crate::intern::{Sym, SymbolTable};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotone source of SEO version stamps: every constructed enhancement
/// (fresh SEA runs, persistence loads, fused-and-re-enhanced ontologies)
/// gets a distinct version, so downstream caches keyed on it can never
/// serve a rewrite computed against a different enhancement.
static SEO_VERSION: AtomicU64 = AtomicU64::new(0);

/// A similarity enhancement of a hierarchy: the enhanced Hasse diagram
/// `H'`, the mapping `μ : H → 2^{H'}` and the member term sets of each
/// enhanced node.
#[derive(Debug, Clone)]
pub struct Seo {
    original: Hierarchy,
    enhanced: Hierarchy,
    /// For each enhanced node (by id order): which original nodes it
    /// contains (`μ⁻¹`).
    members: Vec<Vec<HNodeId>>,
    /// `μ`: original node → enhanced nodes containing it.
    mu: Vec<Vec<HNodeId>>,
    /// term → enhanced nodes whose member sets contain the term.
    term_to_enhanced: HashMap<String, Vec<HNodeId>>,
    /// term sets per enhanced node.
    terms: Vec<Vec<String>>,
    epsilon: f64,
    /// Process-unique version stamp for cache keys.
    version: u64,
    /// Vocabulary interned in lexicographic order, so symbol order is
    /// term order and sorted `Sym` cones resolve to sorted term lists.
    symbols: SymbolTable,
    /// Per enhanced node, its term set as ascending symbols.
    node_syms: Vec<Vec<Sym>>,
    /// Memoized below-cone term sets, indexed by `Sym`.
    below_memo: Vec<OnceLock<Arc<[Sym]>>>,
    /// Memoized similarity classes, indexed by `Sym`.
    similar_memo: Vec<OnceLock<Arc<[Sym]>>>,
}

impl Seo {
    /// Assemble an SEO from the SEA algorithm's outputs. `cliques` holds,
    /// per enhanced node, the *original* node indices it merged; `mu`
    /// maps each original node to its enhanced nodes.
    pub(crate) fn new(
        original: Hierarchy,
        enhanced: Hierarchy,
        cliques: Vec<Vec<usize>>,
        mu: Vec<Vec<HNodeId>>,
        epsilon: f64,
    ) -> Self {
        let members: Vec<Vec<HNodeId>> = cliques
            .iter()
            .map(|c| c.iter().map(|&i| HNodeId(i)).collect())
            .collect();
        let mut terms: Vec<Vec<String>> = Vec::with_capacity(members.len());
        let mut term_to_enhanced: HashMap<String, Vec<HNodeId>> = HashMap::new();
        for (ei, mems) in members.iter().enumerate() {
            let mut ts: Vec<String> = Vec::new();
            for &m in mems {
                for t in original.terms_of(m).expect("member ids are valid") {
                    if !ts.contains(t) {
                        ts.push(t.clone());
                    }
                }
            }
            ts.sort();
            for t in &ts {
                term_to_enhanced
                    .entry(t.clone())
                    .or_default()
                    .push(HNodeId(ei));
            }
            terms.push(ts);
        }
        // intern the vocabulary in lexicographic order: Sym order then
        // coincides with term order, so cones sorted by symbol resolve
        // straight to the sorted term lists the public API promises
        let mut vocab: Vec<&String> = term_to_enhanced.keys().collect();
        vocab.sort();
        let mut symbols = SymbolTable::new();
        for t in vocab {
            symbols.intern(t);
        }
        let node_syms: Vec<Vec<Sym>> = terms
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|t| symbols.lookup(t).expect("vocabulary is interned"))
                    .collect()
            })
            .collect();
        let n_syms = symbols.len();
        Seo {
            original,
            enhanced,
            members,
            mu,
            term_to_enhanced,
            terms,
            epsilon,
            version: SEO_VERSION.fetch_add(1, Ordering::Relaxed) + 1,
            symbols,
            node_syms,
            below_memo: (0..n_syms).map(|_| OnceLock::new()).collect(),
            similar_memo: (0..n_syms).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Rebuild an SEO from its parts — used by persistence. `cliques`
    /// holds, per enhanced node in id order, the original node indices it
    /// merged; μ is derived. The caller is responsible for the parts
    /// actually satisfying Definition 8 (use [`Seo::validate`] after
    /// loading untrusted data).
    pub fn from_parts(
        original: Hierarchy,
        enhanced: Hierarchy,
        cliques: Vec<Vec<usize>>,
        epsilon: f64,
    ) -> Self {
        let mut mu: Vec<Vec<HNodeId>> = vec![Vec::new(); original.len()];
        for (ci, clique) in cliques.iter().enumerate() {
            for &a in clique {
                if a < mu.len() {
                    mu[a].push(HNodeId(ci));
                }
            }
        }
        Seo::new(original, enhanced, cliques, mu, epsilon)
    }

    /// The original hierarchy `H`.
    pub fn original(&self) -> &Hierarchy {
        &self.original
    }

    /// The enhanced hierarchy `H'` (node labels are synthetic; use
    /// [`Seo::terms_of_enhanced`] for the real term sets).
    pub fn enhanced(&self) -> &Hierarchy {
        &self.enhanced
    }

    /// The threshold ε the enhancement was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Process-unique version stamp of this enhancement. Two `Seo` values
    /// never share a version (clones excepted), so caches keyed on it
    /// invalidate automatically when an ontology is fused and re-enhanced.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The interned vocabulary of this enhancement (lexicographic symbol
    /// order).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// `μ(a)`: enhanced nodes containing original node `a`.
    pub fn mu(&self, a: HNodeId) -> &[HNodeId] {
        self.mu.get(a.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `μ⁻¹(e)`: original nodes merged into enhanced node `e`.
    pub fn members_of(&self, e: HNodeId) -> &[HNodeId] {
        self.members.get(e.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Term set of an enhanced node.
    pub fn terms_of_enhanced(&self, e: HNodeId) -> &[String] {
        self.terms.get(e.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Enhanced nodes whose term set contains `term`.
    pub fn enhanced_nodes_of_term(&self, term: &str) -> &[HNodeId] {
        self.term_to_enhanced
            .get(term)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The paper's `~` operator: true iff some enhanced node contains
    /// both terms.
    pub fn similar(&self, a: &str, b: &str) -> bool {
        let ea = self.enhanced_nodes_of_term(a);
        if ea.is_empty() {
            return a == b;
        }
        self.enhanced_nodes_of_term(b).iter().any(|e| ea.contains(e))
    }

    /// All terms similar to `term`: the union of term sets of every
    /// enhanced node containing it (always includes `term` itself when
    /// the term is known; returns just `term` for unknown terms).
    pub fn similar_terms(&self, term: &str) -> Vec<String> {
        match self.similar_terms_interned(term) {
            Some(cone) => self.resolve_all(&cone),
            None => vec![term.to_string()],
        }
    }

    /// The similarity class of a known term as memoized symbols (sorted
    /// ascending — lexicographic term order), or `None` for unknown
    /// terms. Repeated calls return the same allocation.
    pub fn similar_terms_interned(&self, term: &str) -> Option<Arc<[Sym]>> {
        let sym = self.symbols.lookup(term)?;
        Some(Arc::clone(self.similar_memo[sym.index()].get_or_init(
            || {
                let mut syms: Vec<Sym> = self
                    .enhanced_nodes_of_term(term)
                    .iter()
                    .flat_map(|&e| self.node_syms[e.0].iter().copied())
                    .collect();
                syms.sort_unstable();
                syms.dedup();
                syms.into()
            },
        )))
    }

    /// Resolve a symbol cone back to owned term strings (order kept).
    fn resolve_all(&self, syms: &[Sym]) -> Vec<String> {
        syms.iter()
            .map(|&s| self.symbols.resolve(s).to_string())
            .collect()
    }

    /// Terms similar to a *probe* string that may be absent from the
    /// ontology: for a known probe this is [`Seo::similar_terms`]; for an
    /// unknown probe, the terms `t` with `d_s(probe, t) ≤ ε` under the
    /// supplied metric (plus the probe itself) — the node set SEA would
    /// have produced had the probe been a term. This is how a query for
    /// "J. Ullman" reaches documents that only ever wrote
    /// "Jeffrey D. Ullman".
    pub fn similar_terms_probe<M: toss_similarity::StringMetric>(
        &self,
        probe: &str,
        metric: &M,
    ) -> Vec<String> {
        if !self.enhanced_nodes_of_term(probe).is_empty() {
            return self.similar_terms(probe);
        }
        let mut out = vec![probe.to_string()];
        for t in self.original.all_terms() {
            if metric.within(probe, &t, self.epsilon) {
                out.push(t);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Ordering on terms through the enhancement: `x ≤ y` iff some
    /// enhanced node containing `x` has a path (length ≥ 0) to some
    /// enhanced node containing `y`.
    pub fn leq_terms(&self, x: &str, y: &str) -> bool {
        let ex = self.enhanced_nodes_of_term(x);
        let ey = self.enhanced_nodes_of_term(y);
        if ex.is_empty() || ey.is_empty() {
            return false;
        }
        // force the shared reachability index so the nested ≤ probes are
        // bit tests rather than per-pair DFS walks
        let ix = self.enhanced.reach_index();
        ex.iter().any(|&a| ey.iter().any(|&b| ix.leq(a.0, b.0)))
    }

    /// All terms at or below `term` in the enhanced order — the term
    /// expansion the Query Executor uses for `isa`/`below` conditions.
    pub fn below_terms(&self, term: &str) -> Vec<String> {
        match self.below_terms_interned(term) {
            Some(cone) => self.resolve_all(&cone),
            None => vec![term.to_string()],
        }
    }

    /// The below-cone of a known term as memoized symbols (sorted
    /// ascending — lexicographic term order), or `None` for unknown
    /// terms. This is the allocation-free hot path: repeated calls
    /// return the same `Arc<[Sym]>`.
    pub fn below_terms_interned(&self, term: &str) -> Option<Arc<[Sym]>> {
        let sym = self.symbols.lookup(term)?;
        Some(Arc::clone(self.below_memo[sym.index()].get_or_init(
            || {
                let targets: Vec<usize> = self
                    .enhanced_nodes_of_term(term)
                    .iter()
                    .map(|e| e.0)
                    .collect();
                let mut syms: Vec<Sym> = self
                    .enhanced
                    .reach_index()
                    .below_many(&targets)
                    .into_iter()
                    .flat_map(|e| self.node_syms[e].iter().copied())
                    .collect();
                syms.sort_unstable();
                syms.dedup();
                syms.into()
            },
        )))
    }

    /// Number of enhanced nodes.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the enhancement has no nodes.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Validate the Definition-8 conditions against a metric — used by
    /// property tests (Theorem 2) and available to callers who construct
    /// enhancements through other routes.
    pub fn validate<M: toss_similarity::StringMetric>(
        &self,
        metric: &M,
    ) -> Result<(), String> {
        use toss_similarity::node::node_within;
        let h = &self.original;
        let n = h.len();
        // condition 2: members of one enhanced node pairwise within ε
        for (ei, mems) in self.members.iter().enumerate() {
            for &a in mems {
                for &b in mems {
                    if a != b
                        && !node_within(
                            metric,
                            h.terms_of(a).map_err(|e| e.to_string())?,
                            h.terms_of(b).map_err(|e| e.to_string())?,
                            self.epsilon,
                        )
                    {
                        return Err(format!(
                            "condition 2: node {ei} holds dissimilar {a} and {b}"
                        ));
                    }
                }
            }
        }
        // condition 3: similar pairs co-resident somewhere
        for a in 0..n {
            for b in 0..n {
                let (na, nb) = (HNodeId(a), HNodeId(b));
                if node_within(
                    metric,
                    h.terms_of(na).map_err(|e| e.to_string())?,
                    h.terms_of(nb).map_err(|e| e.to_string())?,
                    self.epsilon,
                ) {
                    let shared = self.mu(na).iter().any(|e| self.mu(nb).contains(e));
                    if !shared {
                        return Err(format!(
                            "condition 3: similar {na} and {nb} share no enhanced node"
                        ));
                    }
                }
            }
        }
        // condition 4: no member set subsumed by another
        for (i, mi) in self.members.iter().enumerate() {
            for (j, mj) in self.members.iter().enumerate() {
                if i != j && mi.iter().all(|m| mj.contains(m)) {
                    return Err(format!("condition 4: node {i} ⊆ node {j}"));
                }
            }
        }
        // condition 1, both directions
        for a in 0..n {
            for b in 0..n {
                let (na, nb) = (HNodeId(a), HNodeId(b));
                if h.leq(na, nb) {
                    for &ea in self.mu(na) {
                        for &eb in self.mu(nb) {
                            if !self.enhanced.leq(ea, eb) {
                                return Err(format!(
                                    "condition 1 fwd: {na}≤{nb} but {ea}̸≤{eb}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        for ea in self.enhanced.nodes() {
            for eb in self.enhanced.nodes() {
                if ea != eb && self.enhanced.leq(ea, eb) {
                    for &a in self.members_of(ea) {
                        for &b in self.members_of(eb) {
                            if a != b && !h.leq(a, b) {
                                return Err(format!(
                                    "condition 1 rev: {ea}≤{eb} but {a}̸≤{b}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;
    use crate::sea::enhance;
    use toss_similarity::Levenshtein;

    fn example11_seo() -> Seo {
        let h = from_pairs(&[
            ("relation", "concept"),
            ("relational", "concept"),
            ("model", "concept"),
            ("models", "concept"),
        ])
        .unwrap();
        enhance(&h, &Levenshtein, 2.0).unwrap()
    }

    #[test]
    fn validate_passes_for_sea_output() {
        let seo = example11_seo();
        seo.validate(&Levenshtein).unwrap();
    }

    #[test]
    fn unknown_terms_behave_identically() {
        let seo = example11_seo();
        assert!(seo.similar("ghost", "ghost"));
        assert!(!seo.similar("ghost", "relation"));
        assert_eq!(seo.similar_terms("ghost"), vec!["ghost".to_string()]);
        assert_eq!(seo.below_terms("ghost"), vec!["ghost".to_string()]);
        assert!(!seo.leq_terms("ghost", "concept"));
    }

    #[test]
    fn below_terms_expands_through_merged_nodes() {
        let seo = example11_seo();
        let below = seo.below_terms("concept");
        for t in ["relation", "relational", "model", "models", "concept"] {
            assert!(below.contains(&t.to_string()), "missing {t}");
        }
    }

    #[test]
    fn probe_expansion_for_unknown_terms() {
        let seo = example11_seo();
        // "relatio" is not a term; within ε=2 of both relation (1) and
        // relational (3 — too far)
        let got = seo.similar_terms_probe("relatio", &Levenshtein);
        assert!(got.contains(&"relatio".to_string()));
        assert!(got.contains(&"relation".to_string()));
        assert!(!got.contains(&"relational".to_string())); // d = 3 > ε
        // known probes defer to similar_terms
        let known = seo.similar_terms_probe("relation", &Levenshtein);
        assert_eq!(known, seo.similar_terms("relation"));
    }

    #[test]
    fn epsilon_is_recorded() {
        assert_eq!(example11_seo().epsilon(), 2.0);
    }

    #[test]
    fn versions_are_unique_per_enhancement() {
        let a = example11_seo();
        let b = example11_seo();
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn interned_cones_are_memoized_and_match_strings() {
        let seo = example11_seo();
        let c1 = seo.below_terms_interned("concept").unwrap();
        let c2 = seo.below_terms_interned("concept").unwrap();
        assert!(std::sync::Arc::ptr_eq(&c1, &c2), "cone is shared");
        let resolved: Vec<String> = c1
            .iter()
            .map(|&s| seo.symbols().resolve(s).to_string())
            .collect();
        assert_eq!(resolved, seo.below_terms("concept"));
        let s1 = seo.similar_terms_interned("relation").unwrap();
        let resolved: Vec<String> = s1
            .iter()
            .map(|&s| seo.symbols().resolve(s).to_string())
            .collect();
        assert_eq!(resolved, seo.similar_terms("relation"));
        assert!(seo.below_terms_interned("ghost").is_none());
    }

    #[test]
    fn similar_is_reflexive_for_known_terms() {
        let seo = example11_seo();
        for t in seo.original().all_terms() {
            assert!(seo.similar(&t, &t));
        }
    }
}
