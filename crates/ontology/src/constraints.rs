//! Interoperation constraints (Definition 4).
//!
//! A constraint relates a term in one source hierarchy to a term in
//! another: `x:i ≤ y:j` or `x:i ≠ y:j`. Per the paper's note after
//! Definition 4, equality `x:i = y:j` desugars to the two `≤` constraints,
//! which [`Constraint::eq`] performs.

use std::fmt;

/// A term qualified by the index of the hierarchy it comes from —
/// the paper's `x : i` notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermRef {
    /// The term string.
    pub term: String,
    /// Index of the source hierarchy.
    pub source: usize,
}

impl TermRef {
    /// Build a `term:source` reference.
    pub fn new(term: impl Into<String>, source: usize) -> Self {
        TermRef {
            term: term.into(),
            source,
        }
    }
}

impl fmt::Display for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.term, self.source)
    }
}

/// One interoperation constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `x:i ≤ y:j` — the fused image of `x:i` must lie below that of
    /// `y:j`.
    Leq(TermRef, TermRef),
    /// `x:i ≠ y:j` — the fusion must not identify the two terms.
    Neq(TermRef, TermRef),
}

impl Constraint {
    /// `x:i ≤ y:j`.
    pub fn leq(x: impl Into<String>, i: usize, y: impl Into<String>, j: usize) -> Self {
        Constraint::Leq(TermRef::new(x, i), TermRef::new(y, j))
    }

    /// `x:i ≠ y:j`.
    pub fn neq(x: impl Into<String>, i: usize, y: impl Into<String>, j: usize) -> Self {
        Constraint::Neq(TermRef::new(x, i), TermRef::new(y, j))
    }

    /// `x:i = y:j`, desugared to the two `≤` constraints.
    pub fn eq(x: impl Into<String>, i: usize, y: impl Into<String>, j: usize) -> Vec<Self> {
        let x = x.into();
        let y = y.into();
        vec![
            Constraint::Leq(TermRef::new(x.clone(), i), TermRef::new(y.clone(), j)),
            Constraint::Leq(TermRef::new(y, j), TermRef::new(x, i)),
        ]
    }

    /// The two endpoints of the constraint.
    pub fn endpoints(&self) -> (&TermRef, &TermRef) {
        match self {
            Constraint::Leq(a, b) | Constraint::Neq(a, b) => (a, b),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Leq(a, b) => write!(f, "{a} ≤ {b}"),
            Constraint::Neq(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_desugars_to_two_leqs() {
        let cs = Constraint::eq("booktitle", 0, "conference", 1);
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0],
            Constraint::leq("booktitle", 0, "conference", 1)
        );
        assert_eq!(
            cs[1],
            Constraint::leq("conference", 1, "booktitle", 0)
        );
    }

    #[test]
    fn display_renders_paper_notation() {
        assert_eq!(
            Constraint::leq("x", 1, "y", 2).to_string(),
            "x:1 ≤ y:2"
        );
        assert_eq!(Constraint::neq("x", 1, "y", 2).to_string(), "x:1 ≠ y:2");
    }

    #[test]
    fn endpoints_accessor() {
        let c = Constraint::neq("a", 0, "b", 1);
        let (l, r) = c.endpoints();
        assert_eq!(l.term, "a");
        assert_eq!(r.source, 1);
    }
}
