//! Partial orders and Hasse diagrams (Section 4.1).
//!
//! "A *hierarchy* for `(S, ≤)` is the Hasse diagram for `(S, ≤)` … a
//! directed acyclic graph whose set of nodes is `S` \[with\] a minimal set
//! of edges such that there is a path from `u` to `v` iff `u ≤ v`."
//!
//! This module provides the explicit poset side: validating that a
//! relation given as pairs really is a partial order, deriving the Hasse
//! diagram from a full order (Example 7 turns five `≤` pairs into two
//! Hasse edges), and recovering the full order back from a hierarchy.

use crate::error::{OntologyError, OntologyResult};
use crate::hierarchy::Hierarchy;
use std::collections::{BTreeMap, BTreeSet};

/// A finite binary relation on strings, as explicit pairs `(a, b)`
/// meaning `a ≤ b`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    pairs: BTreeSet<(String, String)>,
    elements: BTreeSet<String>,
}

impl Relation {
    /// Build from pairs; elements are everything mentioned.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut r = Relation::default();
        for (a, b) in pairs {
            r.elements.insert(a.to_string());
            r.elements.insert(b.to_string());
            r.pairs.insert((a.to_string(), b.to_string()));
        }
        r
    }

    /// Whether `a ≤ b` is in the relation (as given, no closure).
    pub fn contains(&self, a: &str, b: &str) -> bool {
        self.pairs.contains(&(a.to_string(), b.to_string()))
    }

    /// The elements.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.elements.iter().map(String::as_str)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Check the partial-order axioms. Returns the first violation found:
    /// a missing reflexive pair, an antisymmetry violation `a ≤ b ≤ a`
    /// with `a ≠ b`, or a missing transitive pair.
    pub fn check_partial_order(&self) -> Result<(), String> {
        for e in &self.elements {
            if !self.contains(e, e) {
                return Err(format!("not reflexive: missing {e} ≤ {e}"));
            }
        }
        for (a, b) in &self.pairs {
            if a != b && self.contains(b, a) {
                return Err(format!("not antisymmetric: {a} ≤ {b} and {b} ≤ {a}"));
            }
        }
        for (a, b) in &self.pairs {
            for (b2, c) in &self.pairs {
                if b == b2 && !self.contains(a, c) {
                    return Err(format!(
                        "not transitive: {a} ≤ {b} and {b} ≤ {c} but {a} ≤ {c} missing"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reflexive-transitive closure of the relation (always a preorder;
    /// a partial order iff antisymmetry holds afterwards).
    pub fn closure(&self) -> Relation {
        let mut pairs = self.pairs.clone();
        // reflexive
        for e in &self.elements {
            pairs.insert((e.clone(), e.clone()));
        }
        // transitive (Warshall on the pair set)
        let elems: Vec<&String> = self.elements.iter().collect();
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot: Vec<(String, String)> = pairs.iter().cloned().collect();
            let by_lhs: BTreeMap<&str, Vec<&str>> = {
                let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
                for (a, b) in &snapshot {
                    m.entry(a.as_str()).or_default().push(b.as_str());
                }
                m
            };
            for (a, b) in &snapshot {
                for c in by_lhs.get(b.as_str()).into_iter().flatten() {
                    if pairs.insert((a.clone(), c.to_string())) {
                        changed = true;
                    }
                }
            }
        }
        let _ = elems;
        Relation {
            pairs,
            elements: self.elements.clone(),
        }
    }

    /// Build the hierarchy (Hasse diagram) of this partial order: strict
    /// pairs minus those implied by transitivity. Errors if the closure
    /// violates antisymmetry (the relation has a cycle).
    pub fn hasse(&self) -> OntologyResult<Hierarchy> {
        let closed = self.closure();
        // antisymmetry on the closure
        for (a, b) in &closed.pairs {
            if a != b && closed.contains(b, a) {
                return Err(OntologyError::CycleDetected {
                    below: a.clone(),
                    above: b.clone(),
                });
            }
        }
        let mut h = Hierarchy::new();
        for e in &self.elements {
            h.add_term(e);
        }
        for (a, b) in &closed.pairs {
            if a == b {
                continue;
            }
            // covering pair: no strictly-between element
            let between = closed.pairs.iter().any(|(x, y)| {
                x == a && y != a && y != b && closed.contains(y, b)
            });
            if !between {
                h.add_leq(a, b)?;
            }
        }
        Ok(h)
    }
}

/// Recover the full partial order (as explicit pairs, reflexive included)
/// from a hierarchy — the inverse direction of [`Relation::hasse`].
pub fn order_of(h: &Hierarchy) -> Relation {
    let mut r = Relation::default();
    let terms = h.all_terms();
    for a in &terms {
        r.elements.insert(a.clone());
        for b in &terms {
            if h.leq_terms(a, b) {
                r.pairs.insert((a.clone(), b.clone()));
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 7: the natural part-of order on
    /// {article, author, title} and its unique hierarchy.
    #[test]
    fn example7_order_to_hasse() {
        let r = Relation::from_pairs([
            ("author", "article"),
            ("title", "article"),
            ("article", "article"),
            ("author", "author"),
            ("title", "title"),
        ]);
        r.check_partial_order().unwrap();
        let h = r.hasse().unwrap();
        // "There is only one hierarchy associated with this partial
        // ordering, viz. {(author, article), (title, article)}."
        assert_eq!(h.edges().len(), 2);
        assert!(h.leq_terms("author", "article"));
        assert!(h.leq_terms("title", "article"));
        assert!(!h.leq_terms("author", "title"));
    }

    #[test]
    fn axiom_violations_are_reported() {
        // missing reflexivity
        let r = Relation::from_pairs([("a", "b")]);
        assert!(r.check_partial_order().unwrap_err().contains("reflexive"));
        // antisymmetry
        let r = Relation::from_pairs([("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")]);
        assert!(r
            .check_partial_order()
            .unwrap_err()
            .contains("antisymmetric"));
        // transitivity
        let r = Relation::from_pairs([
            ("a", "b"),
            ("b", "c"),
            ("a", "a"),
            ("b", "b"),
            ("c", "c"),
        ]);
        assert!(r.check_partial_order().unwrap_err().contains("transitive"));
    }

    #[test]
    fn closure_completes_the_axioms() {
        let r = Relation::from_pairs([("a", "b"), ("b", "c")]);
        let c = r.closure();
        c.check_partial_order().unwrap();
        assert!(c.contains("a", "c"));
        assert!(c.contains("a", "a"));
    }

    #[test]
    fn hasse_drops_transitive_edges() {
        let r = Relation::from_pairs([("a", "b"), ("b", "c"), ("a", "c")]);
        let h = r.hasse().unwrap();
        assert_eq!(h.edges().len(), 2);
        assert!(h.leq_terms("a", "c"));
    }

    #[test]
    fn cyclic_relation_has_no_hasse() {
        let r = Relation::from_pairs([("a", "b"), ("b", "a")]);
        assert!(matches!(
            r.hasse(),
            Err(OntologyError::CycleDetected { .. })
        ));
    }

    #[test]
    fn hasse_and_order_are_inverse() {
        let r = Relation::from_pairs([
            ("d", "b"),
            ("d", "c"),
            ("b", "a"),
            ("c", "a"),
        ]);
        let h = r.hasse().unwrap();
        let back = order_of(&h);
        // the closure of the input equals the recovered order
        assert_eq!(back, r.closure());
    }

    #[test]
    fn isolated_elements_survive() {
        let mut r = Relation::from_pairs([("a", "b")]);
        r.elements.insert("lonely".to_string());
        let h = r.hasse().unwrap();
        assert!(h.node_of("lonely").is_some());
        assert_eq!(order_of(&h).elements().count(), 3);
    }
}
