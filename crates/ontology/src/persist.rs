//! Persistence for hierarchies and SEOs.
//!
//! The paper's architecture *precomputes* the similarity enhanced (fused)
//! ontology during integration and reuses it across queries; a deployment
//! therefore needs to save it. Serialization goes through plain data
//! transfer structs (term lists + edge lists + clique index lists) so the
//! on-disk format is independent of in-memory layout, and loading
//! re-validates structure (acyclicity via the hierarchy builder).

use crate::error::{OntologyError, OntologyResult};
use crate::hierarchy::{HNodeId, Hierarchy};
use crate::seo::Seo;
use toss_json::Value;

/// Serializable form of a [`Hierarchy`].
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyDto {
    /// Term sets per node, in node-id order.
    pub nodes: Vec<Vec<String>>,
    /// Hasse edges as `(below, above)` node indices.
    pub edges: Vec<(usize, usize)>,
}

impl HierarchyDto {
    /// Capture a hierarchy.
    pub fn from_hierarchy(h: &Hierarchy) -> Self {
        HierarchyDto {
            nodes: h
                .nodes()
                .map(|n| h.terms_of(n).expect("dense ids").to_vec())
                .collect(),
            edges: h.edges().into_iter().map(|(a, b)| (a.0, b.0)).collect(),
        }
    }

    /// Rebuild the hierarchy, re-checking term uniqueness and acyclicity.
    pub fn into_hierarchy(self) -> OntologyResult<Hierarchy> {
        let mut h = Hierarchy::new();
        for terms in self.nodes {
            h.add_node(terms)?;
        }
        for (a, b) in self.edges {
            if a >= h.len() || b >= h.len() {
                return Err(OntologyError::InvalidNode(a.max(b)));
            }
            h.add_edge(HNodeId(a), HNodeId(b))?;
        }
        Ok(h)
    }
}

/// Serializable form of an [`Seo`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeoDto {
    /// The original hierarchy `H`.
    pub original: HierarchyDto,
    /// Edges of the enhanced hierarchy `H'` as `(below, above)` pairs of
    /// enhanced-node indices.
    pub enhanced_edges: Vec<(usize, usize)>,
    /// Per enhanced node: the original node indices it merged (μ⁻¹).
    pub cliques: Vec<Vec<usize>>,
    /// The ε the enhancement was built with.
    pub epsilon: f64,
}

impl SeoDto {
    /// Capture an SEO.
    pub fn from_seo(seo: &Seo) -> Self {
        SeoDto {
            original: HierarchyDto::from_hierarchy(seo.original()),
            enhanced_edges: seo
                .enhanced()
                .edges()
                .into_iter()
                .map(|(a, b)| (a.0, b.0))
                .collect(),
            cliques: (0..seo.len())
                .map(|e| {
                    seo.members_of(HNodeId(e))
                        .iter()
                        .map(|m| m.0)
                        .collect()
                })
                .collect(),
            epsilon: seo.epsilon(),
        }
    }

    /// Rebuild the SEO. Structure (acyclicity, id ranges) is re-checked;
    /// semantic validity against a metric can be re-checked with
    /// [`Seo::validate`].
    pub fn into_seo(self) -> OntologyResult<Seo> {
        let original = self.original.into_hierarchy()?;
        let mut enhanced = Hierarchy::new();
        for i in 0..self.cliques.len() {
            enhanced.add_node(vec![format!("\u{1}clique{i}")])?;
        }
        for (a, b) in self.enhanced_edges {
            if a >= enhanced.len() || b >= enhanced.len() {
                return Err(OntologyError::InvalidNode(a.max(b)));
            }
            enhanced.add_edge(HNodeId(a), HNodeId(b))?;
        }
        for clique in &self.cliques {
            for &m in clique {
                if m >= original.len() {
                    return Err(OntologyError::InvalidNode(m));
                }
            }
        }
        Ok(Seo::from_parts(original, enhanced, self.cliques, self.epsilon))
    }
}

// -------------------------------------------------------------------
// JSON mapping (hand-rolled over `toss_json::Value`; field names match
// the original serde derive layout so existing SEO files keep loading)
// -------------------------------------------------------------------

fn pairs_to_value(pairs: &[(usize, usize)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(a, b)| Value::Array(vec![a.into(), b.into()]))
            .collect(),
    )
}

fn value_to_pairs(v: &Value, what: &str) -> OntologyResult<Vec<(usize, usize)>> {
    let malformed = || OntologyError::UnknownTerm(format!("malformed SEO JSON: bad `{what}`"));
    v.as_array()
        .ok_or_else(malformed)?
        .iter()
        .map(|pair| match pair.as_array() {
            Some([a, b]) => Ok((
                a.as_usize().ok_or_else(malformed)?,
                b.as_usize().ok_or_else(malformed)?,
            )),
            _ => Err(malformed()),
        })
        .collect()
}

impl HierarchyDto {
    fn to_value(&self) -> Value {
        Value::object(vec![
            (
                "nodes",
                Value::Array(
                    self.nodes
                        .iter()
                        .map(|terms| {
                            Value::Array(terms.iter().map(|t| t.as_str().into()).collect())
                        })
                        .collect(),
                ),
            ),
            ("edges", pairs_to_value(&self.edges)),
        ])
    }

    fn from_value(v: &Value) -> OntologyResult<Self> {
        let malformed =
            |w: &str| OntologyError::UnknownTerm(format!("malformed SEO JSON: bad `{w}`"));
        let nodes = v
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| malformed("nodes"))?
            .iter()
            .map(|terms| {
                terms
                    .as_array()
                    .ok_or_else(|| malformed("nodes"))?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| malformed("nodes"))
                    })
                    .collect::<OntologyResult<Vec<String>>>()
            })
            .collect::<OntologyResult<Vec<Vec<String>>>>()?;
        let edges = value_to_pairs(v.get("edges").ok_or_else(|| malformed("edges"))?, "edges")?;
        Ok(HierarchyDto { nodes, edges })
    }
}

impl SeoDto {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("original", self.original.to_value()),
            ("enhanced_edges", pairs_to_value(&self.enhanced_edges)),
            (
                "cliques",
                Value::Array(
                    self.cliques
                        .iter()
                        .map(|c| Value::Array(c.iter().map(|&m| m.into()).collect()))
                        .collect(),
                ),
            ),
            ("epsilon", self.epsilon.into()),
        ])
    }

    fn from_value(v: &Value) -> OntologyResult<Self> {
        let malformed =
            |w: &str| OntologyError::UnknownTerm(format!("malformed SEO JSON: bad `{w}`"));
        let original =
            HierarchyDto::from_value(v.get("original").ok_or_else(|| malformed("original"))?)?;
        let enhanced_edges = value_to_pairs(
            v.get("enhanced_edges")
                .ok_or_else(|| malformed("enhanced_edges"))?,
            "enhanced_edges",
        )?;
        let cliques = v
            .get("cliques")
            .and_then(Value::as_array)
            .ok_or_else(|| malformed("cliques"))?
            .iter()
            .map(|c| {
                c.as_array()
                    .ok_or_else(|| malformed("cliques"))?
                    .iter()
                    .map(|m| m.as_usize().ok_or_else(|| malformed("cliques")))
                    .collect::<OntologyResult<Vec<usize>>>()
            })
            .collect::<OntologyResult<Vec<Vec<usize>>>>()?;
        let epsilon = v
            .get("epsilon")
            .and_then(Value::as_f64)
            .ok_or_else(|| malformed("epsilon"))?;
        Ok(SeoDto {
            original,
            enhanced_edges,
            cliques,
            epsilon,
        })
    }
}

/// Serialize an SEO to JSON.
pub fn seo_to_json(seo: &Seo) -> String {
    SeoDto::from_seo(seo).to_value().to_json()
}

/// Load an SEO from JSON produced by [`seo_to_json`].
pub fn seo_from_json(json: &str) -> OntologyResult<Seo> {
    let value = Value::parse(json)
        .map_err(|e| OntologyError::UnknownTerm(format!("malformed SEO JSON: {e}")))?;
    SeoDto::from_value(&value)?.into_seo()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;
    use crate::sea::enhance;
    use toss_similarity::Levenshtein;

    fn sample_seo() -> Seo {
        let h = from_pairs(&[
            ("relation", "concept"),
            ("relational", "concept"),
            ("model", "concept"),
            ("models", "concept"),
        ])
        .unwrap();
        enhance(&h, &Levenshtein, 2.0).unwrap()
    }

    #[test]
    fn hierarchy_round_trip() {
        let h = from_pairs(&[("a", "b"), ("b", "c"), ("x", "c")]).unwrap();
        let dto = HierarchyDto::from_hierarchy(&h);
        let h2 = dto.clone().into_hierarchy().unwrap();
        assert_eq!(dto, HierarchyDto::from_hierarchy(&h2));
        assert!(h2.leq_terms("a", "c"));
        assert!(!h2.leq_terms("c", "a"));
    }

    #[test]
    fn seo_round_trip_preserves_semantics() {
        let seo = sample_seo();
        let json = seo_to_json(&seo);
        let back = seo_from_json(&json).unwrap();
        assert_eq!(back.epsilon(), 2.0);
        // similarity relation identical on every term pair
        for a in seo.original().all_terms() {
            for b in seo.original().all_terms() {
                assert_eq!(seo.similar(&a, &b), back.similar(&a, &b), "{a} ~ {b}");
                assert_eq!(seo.leq_terms(&a, &b), back.leq_terms(&a, &b), "{a} ≤ {b}");
            }
        }
        // and it still validates against the metric
        back.validate(&Levenshtein).unwrap();
    }

    #[test]
    fn corrupt_json_is_rejected() {
        assert!(seo_from_json("{").is_err());
        // out-of-range clique member
        let mut dto = SeoDto::from_seo(&sample_seo());
        dto.cliques[0].push(999);
        assert!(dto.into_seo().is_err());
    }

    #[test]
    fn cyclic_edges_rejected_on_load() {
        let mut dto = SeoDto::from_seo(&sample_seo());
        // add a back edge among enhanced nodes to force a cycle
        if let Some(&(a, b)) = dto.enhanced_edges.first() {
            dto.enhanced_edges.push((b, a));
            assert!(matches!(
                dto.into_seo(),
                Err(OntologyError::CycleDetected { .. })
            ));
        }
    }
}
