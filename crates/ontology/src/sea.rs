//! The Similarity Enhancement Algorithm (paper Figure 12).
//!
//! Given a hierarchy `H`, a node similarity measure `d` (lifted from a
//! string measure per Definition 7) and a threshold ε, produce the
//! similarity enhancement `(H', μ)` of Definition 8 — or report similarity
//! inconsistency (Definition 9) when none exists.
//!
//! Construction (matching the proof sketch of Theorem 1, which pins down
//! the node set uniquely):
//!
//! 1. Build the ε-similarity graph over `H`'s nodes (`A ~ B` iff
//!    `d(A, B) ≤ ε`) and enumerate its **maximal cliques**. These are
//!    exactly the node sets satisfying conditions 2 (pairwise similar),
//!    3 (every similar pair co-resident somewhere) and 4 (no subsumed
//!    node) — each clique becomes one `H'` node whose term set is the
//!    union of its members' terms.
//! 2. `μ(A)` = the cliques containing `A`.
//! 3. Required paths (condition 1, forward): for every `H`-path `A → B`
//!    and every `A₀ ∈ μ(A)`, `B₀ ∈ μ(B)` with `A₀ ≠ B₀`, `H'` must have a
//!    path `A₀ → B₀`. Take the transitive closure of these requirements.
//! 4. Validate condition 1's reverse direction on the closure: a path
//!    `A' → B'` in `H'` demands `a →* b` in `H` for *all* `a ∈ μ⁻¹(A')`,
//!    `b ∈ μ⁻¹(B')`. Any failure, or a cycle in the requirements, means
//!    no enhancement exists (the minimal requirement set is contained in
//!    every candidate `H'`, so failure is conclusive).
//! 5. Transitively reduce to obtain the Hasse diagram `H'`.

use crate::error::{OntologyError, OntologyResult};
use crate::graph::{DiGraph, UnGraph};
use crate::hierarchy::{HNodeId, Hierarchy};
use crate::seo::Seo;
use toss_similarity::node::node_within;
use toss_similarity::StringMetric;

/// Run the SEA algorithm: enhance `h` with similarity under `metric` and
/// threshold `epsilon`.
///
/// Returns [`OntologyError::SimilarityInconsistent`] when `(H, d, ε)` is
/// similarity inconsistent (Definition 9).
pub fn enhance<M: StringMetric>(
    h: &Hierarchy,
    metric: &M,
    epsilon: f64,
) -> OntologyResult<Seo> {
    let n = h.len();
    let obs_span = toss_obs::span("ontology.sea");
    obs_span.record("nodes", n);
    obs_span.record("epsilon", epsilon);

    // ---- step 1: ε-similarity graph and its maximal cliques -----------
    let sim_span = toss_obs::span("ontology.sea.similarity_graph");
    let mut sim = UnGraph::new(n);
    let mut sim_edges = 0usize;
    for a in 0..n {
        for b in a + 1..n {
            let ta = h.terms_of(HNodeId(a)).expect("dense ids");
            let tb = h.terms_of(HNodeId(b)).expect("dense ids");
            if node_within(metric, ta, tb, epsilon) {
                sim.add_edge(a, b);
                sim_edges += 1;
            }
        }
    }
    sim_span.record("sim_edges", sim_edges);
    drop(sim_span);
    let clique_span = toss_obs::span("ontology.sea.cliques");
    let cliques = sim.maximal_cliques();
    clique_span.record("cliques", cliques.len());
    drop(clique_span);

    // ---- step 2: μ ------------------------------------------------------
    let mut mu: Vec<Vec<usize>> = vec![Vec::new(); n]; // original -> clique ids
    for (ci, clique) in cliques.iter().enumerate() {
        for &a in clique {
            mu[a].push(ci);
        }
    }

    // ---- step 3: required paths ----------------------------------------
    let closure = h.digraph().transitive_closure();
    let mut req = DiGraph::new(cliques.len());
    for a in 0..n {
        for b in 0..n {
            if a != b && closure[a][b] {
                for &ca in &mu[a] {
                    for &cb in &mu[b] {
                        if ca != cb {
                            req.add_edge(ca, cb);
                        }
                    }
                }
            }
        }
    }
    if req.has_cycle() {
        return Err(OntologyError::SimilarityInconsistent(
            "required orderings between similarity cliques form a cycle".into(),
        ));
    }
    let req_closure = req.transitive_closure();

    // ---- step 4: reverse direction of condition 1 -----------------------
    for (ca, row) in req_closure.iter().enumerate() {
        for (cb, &reach) in row.iter().enumerate() {
            if !reach {
                continue;
            }
            for &a in &cliques[ca] {
                for &b in &cliques[cb] {
                    if a != b && !closure[a][b] {
                        return Err(OntologyError::SimilarityInconsistent(format!(
                            "clique path {} → {} requires {} ≤ {} which does not hold in H",
                            render(h, &cliques[ca]),
                            render(h, &cliques[cb]),
                            h.render_node(HNodeId(a)),
                            h.render_node(HNodeId(b)),
                        )));
                    }
                    if a == b {
                        // a node in both cliques: path both ways would be
                        // needed only if also cb→ca; a→a trivially holds
                        continue;
                    }
                }
            }
        }
    }

    // ---- step 5: materialize H' ------------------------------------------
    let reduced = req.transitive_reduction();
    let mut hp = Hierarchy::new();
    let mut clique_nodes: Vec<HNodeId> = Vec::with_capacity(cliques.len());
    for clique in &cliques {
        let mut terms: Vec<String> = Vec::new();
        for &a in clique {
            for t in h.terms_of(HNodeId(a)).expect("dense ids") {
                if !terms.contains(t) {
                    terms.push(t.clone());
                }
            }
        }
        // Multiple cliques can share terms (overlapping cliques, e.g. the
        // paper's {A,B}/{A,C} case). Hierarchy requires globally unique
        // terms, so Seo stores term sets itself; here we must bypass the
        // uniqueness check by building the hierarchy nodes without term
        // registration conflicts. We register the node with a synthetic
        // unique alias and keep the real term sets in the Seo.
        clique_nodes.push(
            hp.add_node(vec![format!("\u{1}clique{}", clique_nodes.len())])
                .expect("synthetic term is unique"),
        );
        let _ = terms;
    }
    for (u, v) in reduced.edges() {
        hp.add_edge(clique_nodes[u], clique_nodes[v])
            .expect("req graph is acyclic");
    }

    if obs_span.is_recording() {
        obs_span.record("sim_edges", sim_edges);
        obs_span.record("cliques", cliques.len());
        obs_span.record(
            "merged_clusters",
            cliques.iter().filter(|c| c.len() > 1).count(),
        );
    }
    toss_obs::metrics::counter("ontology.sea.runs").inc();
    toss_obs::metrics::histogram("ontology.sea.ns").observe_duration(obs_span.finish());

    Ok(Seo::new(
        h.clone(),
        hp,
        cliques,
        mu.into_iter()
            .map(|cs| cs.into_iter().map(|c| clique_nodes[c]).collect())
            .collect(),
        epsilon,
    ))
}

fn render(h: &Hierarchy, clique: &[usize]) -> String {
    let parts: Vec<String> = clique
        .iter()
        .map(|&a| h.render_node(HNodeId(a)))
        .collect();
    format!("[{}]", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;
    use toss_similarity::Levenshtein;

    /// The paper's Example 11 toy isa hierarchy:
    /// relation, relational, model, models under a common root "concept",
    /// shaped so that relation/relational and model/models merge at ε=2.
    fn example11() -> Hierarchy {
        from_pairs(&[
            ("relation", "concept"),
            ("relational", "concept"),
            ("model", "concept"),
            ("models", "concept"),
        ])
        .unwrap()
    }

    #[test]
    fn example11_merges_similar_leaves() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 2.0).unwrap();
        // relation+relational live together; model+models live together
        assert!(seo.similar_terms("relation").contains(&"relational".to_string()));
        assert!(seo.similar_terms("model").contains(&"models".to_string()));
        assert!(!seo.similar_terms("model").contains(&"relation".to_string()));
        // similar ~ holds exactly within nodes
        assert!(seo.similar("relation", "relational"));
        assert!(seo.similar("model", "models"));
        assert!(!seo.similar("relation", "models"));
    }

    #[test]
    fn epsilon_zero_is_identity_shape() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 0.0).unwrap();
        assert_eq!(seo.enhanced().len(), h.len());
        for t in h.all_terms() {
            assert_eq!(seo.similar_terms(&t), vec![t.clone()]);
        }
        // ordering preserved
        assert!(seo.leq_terms("relation", "concept"));
        assert!(!seo.leq_terms("concept", "relation"));
    }

    #[test]
    fn overlapping_cliques_from_the_papers_discussion() {
        // A/B similar, A/C similar, B/C not: expect nodes {A,B} and {A,C}
        let mut h = Hierarchy::new();
        h.add_term("abcd");   // A
        h.add_term("abcde");  // B: d(A,B)=1
        h.add_term("abcf");   // C: d(A,C)=1, d(B,C)=2
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert_eq!(seo.enhanced().len(), 2);
        let sa = seo.similar_terms("abcd");
        assert!(sa.contains(&"abcde".to_string()) && sa.contains(&"abcf".to_string()));
        assert!(seo.similar("abcd", "abcde"));
        assert!(seo.similar("abcd", "abcf"));
        assert!(!seo.similar("abcde", "abcf"));
    }

    #[test]
    fn ordering_is_preserved_through_enhancement() {
        let h = from_pairs(&[("cat", "animal"), ("animal", "entity")]).unwrap();
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert!(seo.leq_terms("cat", "entity"));
        assert!(seo.leq_terms("cat", "animal"));
        assert!(!seo.leq_terms("entity", "cat"));
    }

    #[test]
    fn inconsistency_when_merge_would_collapse_an_order() {
        // a ≤ b with d(a,b) ≤ ε merges a,b into one node — that is fine
        // (path of length zero). But a ≤ m ≤ b with d(a,b) ≤ ε and m far
        // from both forces clique {a,b} both above and below {m}: cycle.
        let mut h = Hierarchy::new();
        h.add_leq("aaaa", "zzzzzzzz").unwrap();
        h.add_leq("zzzzzzzz", "aaab").unwrap();
        let e = enhance(&h, &Levenshtein, 1.0).unwrap_err();
        assert!(matches!(e, OntologyError::SimilarityInconsistent(_)));
    }

    #[test]
    fn direct_edge_between_similar_nodes_is_consistent() {
        // a ≤ b and d(a,b) ≤ ε: clique {a,b}; required paths are within
        // one clique (length zero) → consistent.
        let mut h = Hierarchy::new();
        h.add_leq("model", "models").unwrap();
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert_eq!(seo.enhanced().len(), 1);
        assert!(seo.similar("model", "models"));
        assert!(seo.leq_terms("model", "models"));
        assert!(seo.leq_terms("models", "model")); // merged ⇒ both ways
    }

    #[test]
    fn partial_overlap_blocking_order_is_inconsistent() {
        // H: a → b. c similar to both a and b? Then cliques {a,c},{b,c}
        // (if a,b dissimilar). Path a→b requires {a,c}→{b,c}, whose
        // reverse check demands c→b and a→... c has no path to b: inconsistent.
        let mut h = Hierarchy::new();
        h.add_leq("xxxxxaaaa", "yyyyybbbb").unwrap(); // far apart
        h.add_term("xxxxxaaab"); // close to first only... need close to both — impossible with strong metric when endpoints far apart and ε small; use a medium ε
        // instead craft: a="aaaa", b="aaaaaaaa" (d=4), c="aaaaaa" (d=2 to both), ε=2
        let mut h2 = Hierarchy::new();
        h2.add_leq("aaaa", "aaaaaaaa").unwrap();
        h2.add_term("aaaaaa");
        let e = enhance(&h2, &Levenshtein, 2.0).unwrap_err();
        assert!(matches!(e, OntologyError::SimilarityInconsistent(_)));
        drop(h);
    }

    #[test]
    fn unrelated_chains_enhance_independently() {
        let h = from_pairs(&[("cat", "animal"), ("dog", "animal"), ("red", "color")]).unwrap();
        let seo = enhance(&h, &Levenshtein, 0.5).unwrap();
        assert!(seo.leq_terms("cat", "animal"));
        assert!(seo.leq_terms("red", "color"));
        assert!(!seo.leq_terms("cat", "color"));
    }

    #[test]
    fn mu_total_and_consistent_with_cliques() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 2.0).unwrap();
        for node in h.nodes() {
            let images = seo.mu(node);
            assert!(!images.is_empty(), "μ must be total");
            for &img in images {
                assert!(
                    seo.members_of(img).contains(&node),
                    "μ image must contain its source"
                );
            }
        }
    }
}
