//! The Similarity Enhancement Algorithm (paper Figure 12).
//!
//! Given a hierarchy `H`, a node similarity measure `d` (lifted from a
//! string measure per Definition 7) and a threshold ε, produce the
//! similarity enhancement `(H', μ)` of Definition 8 — or report similarity
//! inconsistency (Definition 9) when none exists.
//!
//! Construction (matching the proof sketch of Theorem 1, which pins down
//! the node set uniquely):
//!
//! 1. Build the ε-similarity graph over `H`'s nodes (`A ~ B` iff
//!    `d(A, B) ≤ ε`) and enumerate its **maximal cliques**. These are
//!    exactly the node sets satisfying conditions 2 (pairwise similar),
//!    3 (every similar pair co-resident somewhere) and 4 (no subsumed
//!    node) — each clique becomes one `H'` node whose term set is the
//!    union of its members' terms.
//! 2. `μ(A)` = the cliques containing `A`.
//! 3. Required paths (condition 1, forward): for every `H`-path `A → B`
//!    and every `A₀ ∈ μ(A)`, `B₀ ∈ μ(B)` with `A₀ ≠ B₀`, `H'` must have a
//!    path `A₀ → B₀`. Take the transitive closure of these requirements.
//! 4. Validate condition 1's reverse direction on the closure: a path
//!    `A' → B'` in `H'` demands `a →* b` in `H` for *all* `a ∈ μ⁻¹(A')`,
//!    `b ∈ μ⁻¹(B')`. Any failure, or a cycle in the requirements, means
//!    no enhancement exists (the minimal requirement set is contained in
//!    every candidate `H'`, so failure is conclusive).
//! 5. Transitively reduce to obtain the Hasse diagram `H'`.

use crate::error::{OntologyError, OntologyResult};
use crate::graph::{DiGraph, UnGraph};
use crate::hierarchy::{HNodeId, Hierarchy};
use crate::seo::Seo;
use std::collections::HashMap;
use toss_similarity::node::node_within;
use toss_similarity::StringMetric;

/// Run the SEA algorithm: enhance `h` with similarity under `metric` and
/// threshold `epsilon`.
///
/// When the metric declares blocking bounds ([`StringMetric::length_lower_bound`]
/// / [`StringMetric::bigram_edits_bound`]), the ε-similarity graph is built
/// from a candidate set pruned by a length window and an inverted bigram
/// index, so only plausible pairs reach the exact `node_within` check.
/// Metrics without bounds (rule-based, min-combinators) transparently use
/// the exhaustive all-pairs loop. Output is identical either way — see
/// [`enhance_exhaustive`] and the equivalence proptests.
///
/// Returns [`OntologyError::SimilarityInconsistent`] when `(H, d, ε)` is
/// similarity inconsistent (Definition 9).
pub fn enhance<M: StringMetric>(
    h: &Hierarchy,
    metric: &M,
    epsilon: f64,
) -> OntologyResult<Seo> {
    enhance_impl(h, metric, epsilon, true)
}

/// The reference SEA: always runs the all-pairs ε-similarity loop,
/// ignoring any blocking bounds the metric declares. Exists so benches
/// and equivalence tests can compare against [`enhance`]'s pruned path.
pub fn enhance_exhaustive<M: StringMetric>(
    h: &Hierarchy,
    metric: &M,
    epsilon: f64,
) -> OntologyResult<Seo> {
    enhance_impl(h, metric, epsilon, false)
}

fn enhance_impl<M: StringMetric>(
    h: &Hierarchy,
    metric: &M,
    epsilon: f64,
    blocked: bool,
) -> OntologyResult<Seo> {
    let n = h.len();
    let obs_span = toss_obs::span("ontology.sea");
    obs_span.record("nodes", n);
    obs_span.record("epsilon", epsilon);

    // ---- step 1: ε-similarity graph and its maximal cliques -----------
    let sim_span = toss_obs::span("ontology.sea.similarity_graph");
    let mut sim = UnGraph::new(n);
    let mut sim_edges = 0usize;
    let candidates = if blocked {
        candidate_node_pairs(h, metric, epsilon)
    } else {
        None
    };
    match &candidates {
        Some(pairs) => {
            sim_span.record("strategy", "blocked");
            sim_span.record("candidate_pairs", pairs.len());
            toss_obs::metrics::counter("toss.semantic.sea.blocked_runs").inc();
            toss_obs::metrics::counter("toss.semantic.sea.candidate_pairs")
                .add(pairs.len() as u64);
            for &(a, b) in pairs {
                let ta = h.terms_of(HNodeId(a)).expect("dense ids");
                let tb = h.terms_of(HNodeId(b)).expect("dense ids");
                if node_within(metric, ta, tb, epsilon) {
                    sim.add_edge(a, b);
                    sim_edges += 1;
                }
            }
        }
        None => {
            sim_span.record("strategy", "exhaustive");
            for a in 0..n {
                for b in a + 1..n {
                    let ta = h.terms_of(HNodeId(a)).expect("dense ids");
                    let tb = h.terms_of(HNodeId(b)).expect("dense ids");
                    if node_within(metric, ta, tb, epsilon) {
                        sim.add_edge(a, b);
                        sim_edges += 1;
                    }
                }
            }
        }
    }
    sim_span.record("sim_edges", sim_edges);
    drop(sim_span);
    let clique_span = toss_obs::span("ontology.sea.cliques");
    let cliques = sim.maximal_cliques();
    clique_span.record("cliques", cliques.len());
    drop(clique_span);

    // ---- step 2: μ ------------------------------------------------------
    let mut mu: Vec<Vec<usize>> = vec![Vec::new(); n]; // original -> clique ids
    for (ci, clique) in cliques.iter().enumerate() {
        for &a in clique {
            mu[a].push(ci);
        }
    }

    // ---- step 3: required paths ----------------------------------------
    // Seeding the requirement graph with the *Hasse edges* alone gives the
    // same transitive closure as seeding with every closure pair: a path
    // A →* B decomposes into Hasse steps, and an induction on its length
    // shows every μ-image of A reaches every distinct μ-image of B through
    // the step edges (μ is total, so intermediate nodes always contribute
    // images to route through). Same closure ⇒ same cycles ⇒ the same
    // unique transitive reduction, at O(E·|μ|²) instead of O(V²·|μ|²).
    let mut req = DiGraph::new(cliques.len());
    for (u, v) in h.digraph().edges() {
        for &ca in &mu[u] {
            for &cb in &mu[v] {
                if ca != cb {
                    req.add_edge(ca, cb);
                }
            }
        }
    }
    if req.has_cycle() {
        return Err(OntologyError::SimilarityInconsistent(
            "required orderings between similarity cliques form a cycle".into(),
        ));
    }
    let closure = h.digraph().transitive_closure_bits();
    let req_closure = req.transitive_closure_bits();

    // ---- step 4: reverse direction of condition 1 -----------------------
    for ca in 0..cliques.len() {
        for cb in req_closure.iter_row(ca) {
            for &a in &cliques[ca] {
                for &b in &cliques[cb] {
                    if a != b && !closure.get(a, b) {
                        return Err(OntologyError::SimilarityInconsistent(format!(
                            "clique path {} → {} requires {} ≤ {} which does not hold in H",
                            render(h, &cliques[ca]),
                            render(h, &cliques[cb]),
                            h.render_node(HNodeId(a)),
                            h.render_node(HNodeId(b)),
                        )));
                    }
                }
            }
        }
    }

    // ---- step 5: materialize H' ------------------------------------------
    let reduced = req.transitive_reduction();
    let mut hp = Hierarchy::new();
    let mut clique_nodes: Vec<HNodeId> = Vec::with_capacity(cliques.len());
    for clique in &cliques {
        let mut terms: Vec<String> = Vec::new();
        for &a in clique {
            for t in h.terms_of(HNodeId(a)).expect("dense ids") {
                if !terms.contains(t) {
                    terms.push(t.clone());
                }
            }
        }
        // Multiple cliques can share terms (overlapping cliques, e.g. the
        // paper's {A,B}/{A,C} case). Hierarchy requires globally unique
        // terms, so Seo stores term sets itself; here we must bypass the
        // uniqueness check by building the hierarchy nodes without term
        // registration conflicts. We register the node with a synthetic
        // unique alias and keep the real term sets in the Seo.
        clique_nodes.push(
            hp.add_node(vec![format!("\u{1}clique{}", clique_nodes.len())])
                .expect("synthetic term is unique"),
        );
        let _ = terms;
    }
    for (u, v) in reduced.edges() {
        hp.add_edge(clique_nodes[u], clique_nodes[v])
            .expect("req graph is acyclic");
    }

    if obs_span.is_recording() {
        obs_span.record("sim_edges", sim_edges);
        obs_span.record("cliques", cliques.len());
        obs_span.record(
            "merged_clusters",
            cliques.iter().filter(|c| c.len() > 1).count(),
        );
    }
    toss_obs::metrics::counter("ontology.sea.runs").inc();
    toss_obs::metrics::histogram("ontology.sea.ns").observe_duration(obs_span.finish());

    Ok(Seo::new(
        h.clone(),
        hp,
        cliques,
        mu.into_iter()
            .map(|cs| cs.into_iter().map(|c| clique_nodes[c]).collect())
            .collect(),
        epsilon,
    ))
}

/// One term of the hierarchy, flattened for the blocking index.
struct BlockTerm {
    node: usize,
    /// Char count (the unit the length bound speaks in).
    len: usize,
    /// Sorted `(bigram, multiplicity)` pairs; bigram = two chars packed.
    grams: Vec<(u64, u32)>,
}

fn bigram_counts(chars: &[char]) -> Vec<(u64, u32)> {
    let mut keys: Vec<u64> = chars
        .windows(2)
        .map(|w| ((w[0] as u64) << 32) | w[1] as u64)
        .collect();
    keys.sort_unstable();
    let mut out: Vec<(u64, u32)> = Vec::new();
    for k in keys {
        match out.last_mut() {
            Some((prev, c)) if *prev == k => *c += 1,
            _ => out.push((k, 1)),
        }
    }
    out
}

/// Candidate node pairs `(a, b)` with `a < b` that could possibly be
/// within ε, derived from the metric's declared blocking bounds:
///
/// * **length window** — `d(x, y) ≥ c·|len(x) − len(y)|` means any pair
///   whose char lengths differ by more than `ε/c` is out;
/// * **bigram count filter** — `shared_bigrams(x, y) ≥ max(len) − 1 − B·d`
///   (the classic q-gram lemma with q = 2) means a surviving pair must
///   share at least `max(len) − 1 − B·ε` bigrams, which an inverted
///   bigram index finds without touching non-overlapping pairs. Length
///   pairs where that threshold is ≤ 0 (short strings) are enumerated
///   wholesale — the filter has no power there.
///
/// Both filters are *necessary* conditions for `d ≤ ε` on each term pair,
/// and a within-ε node pair has every (strong metric: the first) cross
/// term pair within ε, so the pair surfaces through its own terms; the
/// exact `node_within` verification then decides. Returns `None` when the
/// metric declares no length bound — the caller falls back to the
/// exhaustive loop, keeping unsupported metrics (rule-based,
/// min-combinators) correct by construction.
fn candidate_node_pairs<M: StringMetric>(
    h: &Hierarchy,
    metric: &M,
    epsilon: f64,
) -> Option<Vec<(usize, usize)>> {
    let n = h.len();
    if epsilon < 0.0 || n < 2 {
        // a metric never goes below 0, and fewer than two nodes have no pairs
        return Some(Vec::new());
    }
    let len_cost = metric.length_lower_bound()?;
    if len_cost <= 0.0 || len_cost.is_nan() {
        return None; // declared bound carries no information
    }
    let bigram_bound = metric.bigram_edits_bound();

    let mut terms: Vec<BlockTerm> = Vec::new();
    for node in 0..n {
        for t in h.terms_of(HNodeId(node)).expect("dense ids") {
            let chars: Vec<char> = t.chars().collect();
            terms.push(BlockTerm {
                node,
                len: chars.len(),
                grams: bigram_counts(&chars),
            });
        }
    }
    let m = terms.len();
    let max_len_diff = (epsilon / len_cost).floor() as usize;
    // Pairs at or below this length bypass the bigram filter: beyond it,
    // the threshold max(la,lb) − 1 − B·ε exceeds 1, so every surviving
    // pair shares at least one bigram and the inverted index cannot miss
    // it (a cutoff at threshold 0 would drop pairs with no shared bigram
    // whose threshold rounds to 0).
    let short_cutoff = match bigram_bound {
        Some(b) if b > 0.0 => (2.0 + b * epsilon).floor() as usize,
        _ => usize::MAX, // no bigram filter: length window only
    };

    let mut cand: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut push = |na: usize, nb: usize| {
        if na != nb {
            cand.insert((na.min(nb), na.max(nb)));
        }
    };

    // short-short pairs: length window only
    let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, t) in terms.iter().enumerate() {
        if t.len <= short_cutoff {
            by_len.entry(t.len).or_default().push(i);
        }
    }
    let mut lens: Vec<usize> = by_len.keys().copied().collect();
    lens.sort_unstable();
    for &la in &lens {
        for lb in la..=la.saturating_add(max_len_diff).min(short_cutoff) {
            let Some(bucket_b) = by_len.get(&lb) else {
                continue;
            };
            for &i in &by_len[&la] {
                for &j in bucket_b {
                    if la < lb || i < j {
                        push(terms[i].node, terms[j].node);
                    }
                }
            }
        }
    }

    // everything else must share ≥ max(la,lb) − 1 − B·ε ≥ 1 bigrams:
    // probe an inverted bigram index, accumulating the exact shared
    // multiset count Σ min(cnt_a, cnt_b) per already-indexed term
    if short_cutoff != usize::MAX {
        let bigram_b = bigram_bound.expect("cutoff is finite only with a bigram bound");
        let mut postings: HashMap<u64, Vec<(usize, u32)>> = HashMap::new();
        let mut shared = vec![0u32; m];
        let mut touched: Vec<usize> = Vec::new();
        for (i, t) in terms.iter().enumerate() {
            for &(g, ca) in &t.grams {
                if let Some(list) = postings.get(&g) {
                    for &(j, cb) in list {
                        if shared[j] == 0 {
                            touched.push(j);
                        }
                        shared[j] += ca.min(cb);
                    }
                }
            }
            for &j in &touched {
                let (la, lb) = (t.len, terms[j].len);
                let max_len = la.max(lb);
                if max_len > short_cutoff && la.abs_diff(lb) <= max_len_diff {
                    let threshold = max_len as f64 - 1.0 - bigram_b * epsilon;
                    if f64::from(shared[j]) >= threshold - 1e-9 {
                        push(t.node, terms[j].node);
                    }
                }
                shared[j] = 0;
            }
            touched.clear();
            for &(g, ca) in &t.grams {
                postings.entry(g).or_default().push((i, ca));
            }
        }
    }

    let mut out: Vec<(usize, usize)> = cand.into_iter().collect();
    out.sort_unstable();
    Some(out)
}

fn render(h: &Hierarchy, clique: &[usize]) -> String {
    let parts: Vec<String> = clique
        .iter()
        .map(|&a| h.render_node(HNodeId(a)))
        .collect();
    format!("[{}]", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::from_pairs;
    use toss_similarity::Levenshtein;

    /// The paper's Example 11 toy isa hierarchy:
    /// relation, relational, model, models under a common root "concept",
    /// shaped so that relation/relational and model/models merge at ε=2.
    fn example11() -> Hierarchy {
        from_pairs(&[
            ("relation", "concept"),
            ("relational", "concept"),
            ("model", "concept"),
            ("models", "concept"),
        ])
        .unwrap()
    }

    #[test]
    fn example11_merges_similar_leaves() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 2.0).unwrap();
        // relation+relational live together; model+models live together
        assert!(seo.similar_terms("relation").contains(&"relational".to_string()));
        assert!(seo.similar_terms("model").contains(&"models".to_string()));
        assert!(!seo.similar_terms("model").contains(&"relation".to_string()));
        // similar ~ holds exactly within nodes
        assert!(seo.similar("relation", "relational"));
        assert!(seo.similar("model", "models"));
        assert!(!seo.similar("relation", "models"));
    }

    #[test]
    fn epsilon_zero_is_identity_shape() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 0.0).unwrap();
        assert_eq!(seo.enhanced().len(), h.len());
        for t in h.all_terms() {
            assert_eq!(seo.similar_terms(&t), vec![t.clone()]);
        }
        // ordering preserved
        assert!(seo.leq_terms("relation", "concept"));
        assert!(!seo.leq_terms("concept", "relation"));
    }

    #[test]
    fn overlapping_cliques_from_the_papers_discussion() {
        // A/B similar, A/C similar, B/C not: expect nodes {A,B} and {A,C}
        let mut h = Hierarchy::new();
        h.add_term("abcd");   // A
        h.add_term("abcde");  // B: d(A,B)=1
        h.add_term("abcf");   // C: d(A,C)=1, d(B,C)=2
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert_eq!(seo.enhanced().len(), 2);
        let sa = seo.similar_terms("abcd");
        assert!(sa.contains(&"abcde".to_string()) && sa.contains(&"abcf".to_string()));
        assert!(seo.similar("abcd", "abcde"));
        assert!(seo.similar("abcd", "abcf"));
        assert!(!seo.similar("abcde", "abcf"));
    }

    #[test]
    fn ordering_is_preserved_through_enhancement() {
        let h = from_pairs(&[("cat", "animal"), ("animal", "entity")]).unwrap();
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert!(seo.leq_terms("cat", "entity"));
        assert!(seo.leq_terms("cat", "animal"));
        assert!(!seo.leq_terms("entity", "cat"));
    }

    #[test]
    fn inconsistency_when_merge_would_collapse_an_order() {
        // a ≤ b with d(a,b) ≤ ε merges a,b into one node — that is fine
        // (path of length zero). But a ≤ m ≤ b with d(a,b) ≤ ε and m far
        // from both forces clique {a,b} both above and below {m}: cycle.
        let mut h = Hierarchy::new();
        h.add_leq("aaaa", "zzzzzzzz").unwrap();
        h.add_leq("zzzzzzzz", "aaab").unwrap();
        let e = enhance(&h, &Levenshtein, 1.0).unwrap_err();
        assert!(matches!(e, OntologyError::SimilarityInconsistent(_)));
    }

    #[test]
    fn direct_edge_between_similar_nodes_is_consistent() {
        // a ≤ b and d(a,b) ≤ ε: clique {a,b}; required paths are within
        // one clique (length zero) → consistent.
        let mut h = Hierarchy::new();
        h.add_leq("model", "models").unwrap();
        let seo = enhance(&h, &Levenshtein, 1.0).unwrap();
        assert_eq!(seo.enhanced().len(), 1);
        assert!(seo.similar("model", "models"));
        assert!(seo.leq_terms("model", "models"));
        assert!(seo.leq_terms("models", "model")); // merged ⇒ both ways
    }

    #[test]
    fn partial_overlap_blocking_order_is_inconsistent() {
        // H: a → b. c similar to both a and b? Then cliques {a,c},{b,c}
        // (if a,b dissimilar). Path a→b requires {a,c}→{b,c}, whose
        // reverse check demands c→b and a→... c has no path to b: inconsistent.
        let mut h = Hierarchy::new();
        h.add_leq("xxxxxaaaa", "yyyyybbbb").unwrap(); // far apart
        h.add_term("xxxxxaaab"); // close to first only... need close to both — impossible with strong metric when endpoints far apart and ε small; use a medium ε
        // instead craft: a="aaaa", b="aaaaaaaa" (d=4), c="aaaaaa" (d=2 to both), ε=2
        let mut h2 = Hierarchy::new();
        h2.add_leq("aaaa", "aaaaaaaa").unwrap();
        h2.add_term("aaaaaa");
        let e = enhance(&h2, &Levenshtein, 2.0).unwrap_err();
        assert!(matches!(e, OntologyError::SimilarityInconsistent(_)));
        drop(h);
    }

    #[test]
    fn unrelated_chains_enhance_independently() {
        let h = from_pairs(&[("cat", "animal"), ("dog", "animal"), ("red", "color")]).unwrap();
        let seo = enhance(&h, &Levenshtein, 0.5).unwrap();
        assert!(seo.leq_terms("cat", "animal"));
        assert!(seo.leq_terms("red", "color"));
        assert!(!seo.leq_terms("cat", "color"));
    }

    #[test]
    fn mu_total_and_consistent_with_cliques() {
        let h = example11();
        let seo = enhance(&h, &Levenshtein, 2.0).unwrap();
        for node in h.nodes() {
            let images = seo.mu(node);
            assert!(!images.is_empty(), "μ must be total");
            for &img in images {
                assert!(
                    seo.members_of(img).contains(&node),
                    "μ image must contain its source"
                );
            }
        }
    }
}
