//! Allocation-light traversal iterators over the arena representation.

use crate::arena::{Arena, NodeId};

/// Iterator over the children of a node, in document order.
pub struct Children<'a> {
    arena: &'a Arena,
    next: Option<NodeId>,
}

impl<'a> Children<'a> {
    pub(crate) fn new(arena: &'a Arena, parent: NodeId) -> Self {
        let next = arena.slot(parent).ok().and_then(|s| s.first_child);
        Children { arena, next }
    }
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.arena.slot(cur).ok().and_then(|s| s.next_sibling);
        Some(cur)
    }
}

/// Preorder iterator over `start` and its subtree.
pub struct Preorder<'a> {
    arena: &'a Arena,
    /// Explicit stack of nodes still to visit; children are pushed in
    /// reverse so the leftmost pops first.
    stack: Vec<NodeId>,
}

impl<'a> Preorder<'a> {
    pub(crate) fn new(arena: &'a Arena, start: Option<NodeId>) -> Self {
        let stack = match start {
            Some(s) => vec![s],
            None => Vec::new(),
        };
        Preorder { arena, stack }
    }
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        // push children reversed
        let mut children = Vec::new();
        if let Ok(slot) = self.arena.slot(cur) {
            let mut c = slot.first_child;
            while let Some(id) = c {
                children.push(id);
                c = self.arena.slot(id).ok().and_then(|s| s.next_sibling);
            }
        }
        for &c in children.iter().rev() {
            self.stack.push(c);
        }
        Some(cur)
    }
}

/// Preorder minus the starting node itself.
pub struct Descendants<'a> {
    inner: Preorder<'a>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(arena: &'a Arena, start: NodeId) -> Self {
        let mut inner = Preorder::new(arena, Some(start));
        inner.next(); // skip `start`
        Descendants { inner }
    }
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.inner.next()
    }
}

/// Strict ancestors of a node, nearest first.
pub struct Ancestors<'a> {
    arena: &'a Arena,
    cur: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(arena: &'a Arena, start: NodeId) -> Self {
        let cur = arena.slot(start).ok().and_then(|s| s.parent);
        Ancestors { arena, cur }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.cur?;
        self.cur = self.arena.slot(cur).ok().and_then(|s| s.parent);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::node::NodeData;
    use crate::tree::Tree;

    #[test]
    fn empty_iterators() {
        let t = Tree::new();
        assert_eq!(t.preorder().count(), 0);
    }

    #[test]
    fn wide_tree_preorder() {
        let mut t = Tree::with_root(NodeData::element("r"));
        let r = t.root().unwrap();
        let mut expected = vec![r];
        for i in 0..10 {
            let c = t.add_child(r, NodeData::element(format!("c{i}"))).unwrap();
            expected.push(c);
        }
        let got: Vec<_> = t.preorder().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deep_tree_preorder_and_ancestors() {
        let mut t = Tree::with_root(NodeData::element("d0"));
        let mut cur = t.root().unwrap();
        let mut chain = vec![cur];
        for i in 1..100 {
            cur = t.add_child(cur, NodeData::element(format!("d{i}"))).unwrap();
            chain.push(cur);
        }
        let got: Vec<_> = t.preorder().collect();
        assert_eq!(got, chain);
        let anc: Vec<_> = t.ancestors(cur).collect();
        let mut rev = chain.clone();
        rev.pop();
        rev.reverse();
        assert_eq!(anc, rev);
    }

    #[test]
    fn mixed_shape_preorder_matches_document_order() {
        // r -> (a -> (b, c), d -> (e))
        let mut t = Tree::with_root(NodeData::element("r"));
        let r = t.root().unwrap();
        let a = t.add_child(r, NodeData::element("a")).unwrap();
        let b = t.add_child(a, NodeData::element("b")).unwrap();
        let c = t.add_child(a, NodeData::element("c")).unwrap();
        let d = t.add_child(r, NodeData::element("d")).unwrap();
        let e = t.add_child(d, NodeData::element("e")).unwrap();
        let got: Vec<_> = t.preorder().collect();
        assert_eq!(got, vec![r, a, b, c, d, e]);
        let ch: Vec<_> = t.children(r).collect();
        assert_eq!(ch, vec![a, d]);
    }
}
