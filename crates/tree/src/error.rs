//! Error types for the tree crate.

use std::fmt;

/// Errors raised by tree construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A [`crate::NodeId`] referred to a node not present in the arena
    /// (stale id or id from a different tree).
    InvalidNodeId(usize),
    /// An operation required a root but the tree had none.
    EmptyTree,
    /// Attaching a node would create a cycle or a second parent.
    StructureViolation(String),
    /// A type was referenced that is not registered in the [`crate::TypeSystem`].
    UnknownType(String),
    /// A value did not belong to the domain of its declared type.
    DomainViolation {
        /// Name of the violated type.
        type_name: String,
        /// Rendering of the offending value.
        value: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::InvalidNodeId(id) => write!(f, "invalid node id {id}"),
            TreeError::EmptyTree => write!(f, "operation requires a non-empty tree"),
            TreeError::StructureViolation(msg) => write!(f, "structure violation: {msg}"),
            TreeError::UnknownType(name) => write!(f, "unknown type `{name}`"),
            TreeError::DomainViolation { type_name, value } => {
                write!(f, "value `{value}` is not in dom({type_name})")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Result alias used throughout the crate.
pub type TreeResult<T> = Result<T, TreeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TreeError::InvalidNodeId(3).to_string(), "invalid node id 3");
        assert_eq!(
            TreeError::EmptyTree.to_string(),
            "operation requires a non-empty tree"
        );
        assert_eq!(
            TreeError::UnknownType("mm".into()).to_string(),
            "unknown type `mm`"
        );
        let e = TreeError::DomainViolation {
            type_name: "int".into(),
            value: "x".into(),
        };
        assert_eq!(e.to_string(), "value `x` is not in dom(int)");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TreeError>();
    }
}
