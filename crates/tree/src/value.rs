//! Typed attribute values.
//!
//! Every object attribute (tag or content) in a semistructured instance
//! carries a value plus a type from the [`crate::TypeSystem`]. Values are
//! deliberately a small closed enum: the paper's model only needs strings,
//! integers, reals and unit-bearing quantities (e.g. `mm`, `USD`) — the
//! latter are represented as a numeric payload whose *type* identifies the
//! unit, so conversion functions in `toss-core` can reinterpret them.

use std::cmp::Ordering;
use std::fmt;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A UTF-8 string (the dominant case in XML content).
    Str(String),
    /// A 64-bit integer (years, page numbers, …).
    Int(i64),
    /// A 64-bit float (unit-bearing quantities after conversion).
    Real(f64),
}

impl Value {
    /// View the value as a string slice if it is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View the value as an integer, converting a whole `Real` losslessly.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Real(r) if r.fract() == 0.0 && r.is_finite() => Some(*r as i64),
            _ => None,
        }
    }

    /// View the value as a float (integers widen losslessly).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Render the value the way it would appear as XML text content.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parse a string into the "most specific" value: integer, then real,
    /// then string. This mirrors how the XML loader assigns types to raw
    /// text content.
    pub fn parse_lexical(text: &str) -> Value {
        let t = text.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(r) = t.parse::<f64>() {
            if r.is_finite() {
                return Value::Real(r);
            }
        }
        Value::Str(text.to_string())
    }

    /// Compare two values under the natural order of their common
    /// supertype: numerics compare numerically, strings lexicographically.
    /// Mixed string/number comparisons are not ordered (returns `None`),
    /// matching the paper's well-typedness requirement that comparands have
    /// a least common supertype.
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_real()?, b.as_real()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_lexical_prefers_int() {
        assert_eq!(Value::parse_lexical("1999"), Value::Int(1999));
        assert_eq!(Value::parse_lexical(" 42 "), Value::Int(42));
    }

    #[test]
    fn parse_lexical_falls_back_to_real_then_string() {
        assert_eq!(Value::parse_lexical("3.5"), Value::Real(3.5));
        assert_eq!(
            Value::parse_lexical("SIGMOD Conference"),
            Value::Str("SIGMOD Conference".into())
        );
    }

    #[test]
    fn parse_lexical_rejects_nonfinite_reals() {
        // "inf" parses as f64 infinity; we keep it a string.
        assert_eq!(Value::parse_lexical("inf"), Value::Str("inf".into()));
        assert_eq!(Value::parse_lexical("NaN"), Value::Str("NaN".into()));
    }

    #[test]
    fn as_int_accepts_whole_reals() {
        assert_eq!(Value::Real(2.0).as_int(), Some(2));
        assert_eq!(Value::Real(2.5).as_int(), None);
        assert_eq!(Value::Str("2".into()).as_int(), None);
    }

    #[test]
    fn typed_comparison_mixes_numerics_only() {
        assert_eq!(
            Value::Int(3).partial_cmp_typed(&Value::Real(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_typed(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("3".into()).partial_cmp_typed(&Value::Int(3)), None);
    }

    #[test]
    fn display_round_trips_ints() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
    }
}
