//! Forests: ordered collections of trees.
//!
//! A semistructured instance per Definition 1 is a *set of rooted directed
//! trees*; TAX operators consume and produce such collections. [`Forest`]
//! keeps trees in a stable order (document order for loaded XML, output
//! order for operator results) and offers set-theoretic helpers built on
//! ordered-isomorphism equality.

use crate::eq::{fingerprint, trees_equal};
use crate::tree::Tree;
use std::collections::HashSet;

/// An ordered collection of trees — a semistructured instance, a TAX
/// operator input, or a TAX operator output.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    trees: Vec<Tree>,
}

impl Forest {
    /// An empty forest.
    pub fn new() -> Self {
        Forest { trees: Vec::new() }
    }

    /// A forest holding the given trees in order.
    pub fn from_trees(trees: Vec<Tree>) -> Self {
        Forest { trees }
    }

    /// Append a tree.
    pub fn push(&mut self, t: Tree) {
        self.trees.push(t);
    }

    /// The trees, in order.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Mutable access to the trees.
    pub fn trees_mut(&mut self) -> &mut Vec<Tree> {
        &mut self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether there are no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Iterate over the trees.
    pub fn iter(&self) -> std::slice::Iter<'_, Tree> {
        self.trees.iter()
    }

    /// Total node count across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::node_count).sum()
    }

    /// Whether some member tree equals `t` under ordered isomorphism.
    pub fn contains_tree(&self, t: &Tree) -> bool {
        self.trees.iter().any(|x| trees_equal(x, t))
    }

    /// Set union: all trees of `self`, then trees of `other` not already
    /// present (by ordered isomorphism). Duplicates within each operand are
    /// also collapsed, matching set semantics.
    pub fn set_union(&self, other: &Forest) -> Forest {
        let mut seen = HashSet::new();
        let mut out = Forest::new();
        for t in self.trees.iter().chain(other.trees.iter()) {
            if seen.insert(fingerprint(t)) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Set intersection under ordered isomorphism (order follows `self`).
    pub fn set_intersection(&self, other: &Forest) -> Forest {
        let theirs: HashSet<String> = other.trees.iter().map(fingerprint).collect();
        let mut seen = HashSet::new();
        let mut out = Forest::new();
        for t in &self.trees {
            let fp = fingerprint(t);
            if theirs.contains(&fp) && seen.insert(fp) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Set difference `self − other` under ordered isomorphism.
    pub fn set_difference(&self, other: &Forest) -> Forest {
        let theirs: HashSet<String> = other.trees.iter().map(fingerprint).collect();
        let mut seen = HashSet::new();
        let mut out = Forest::new();
        for t in &self.trees {
            let fp = fingerprint(t);
            if !theirs.contains(&fp) && seen.insert(fp) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Remove duplicate trees (ordered isomorphism), keeping first
    /// occurrences.
    pub fn dedup(&self) -> Forest {
        self.set_union(&Forest::new())
    }
}

impl IntoIterator for Forest {
    type Item = Tree;
    type IntoIter = std::vec::IntoIter<Tree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl<'a> IntoIterator for &'a Forest {
    type Item = &'a Tree;
    type IntoIter = std::slice::Iter<'a, Tree>;

    fn into_iter(self) -> Self::IntoIter {
        self.trees.iter()
    }
}

impl FromIterator<Tree> for Forest {
    fn from_iter<I: IntoIterator<Item = Tree>>(iter: I) -> Self {
        Forest {
            trees: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn t(tag: &str, val: &str) -> Tree {
        TreeBuilder::new("p").leaf(tag, val).build()
    }

    #[test]
    fn union_dedups_across_and_within() {
        let a = Forest::from_trees(vec![t("a", "1"), t("a", "1"), t("b", "2")]);
        let b = Forest::from_trees(vec![t("b", "2"), t("c", "3")]);
        let u = a.set_union(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn intersection_keeps_common_only() {
        let a = Forest::from_trees(vec![t("a", "1"), t("b", "2")]);
        let b = Forest::from_trees(vec![t("b", "2"), t("c", "3")]);
        let i = a.set_intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains_tree(&t("b", "2")));
    }

    #[test]
    fn difference_removes_common() {
        let a = Forest::from_trees(vec![t("a", "1"), t("b", "2")]);
        let b = Forest::from_trees(vec![t("b", "2")]);
        let d = a.set_difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains_tree(&t("a", "1")));
    }

    #[test]
    fn empty_operands() {
        let a = Forest::from_trees(vec![t("a", "1")]);
        let e = Forest::new();
        assert_eq!(a.set_union(&e).len(), 1);
        assert_eq!(e.set_union(&a).len(), 1);
        assert_eq!(a.set_intersection(&e).len(), 0);
        assert_eq!(a.set_difference(&e).len(), 1);
        assert_eq!(e.set_difference(&a).len(), 0);
    }

    #[test]
    fn total_nodes_sums() {
        let a = Forest::from_trees(vec![t("a", "1"), t("b", "2")]);
        assert_eq!(a.total_nodes(), 4);
    }

    #[test]
    fn from_iterator_collects() {
        let f: Forest = vec![t("a", "1"), t("b", "2")].into_iter().collect();
        assert_eq!(f.len(), 2);
    }
}
