//! Ordered-isomorphism equality between trees.
//!
//! TAX's set-theoretic operators (union, intersection, difference) need a
//! notion of when two *data trees* are identical: the paper requires an
//! isomorphism between node sets that preserves edges and sibling order and
//! makes every value-based atom true at `u` iff it is true at `ι(u)` —
//! which for ground data reduces to equal tags, contents and attributes at
//! corresponding positions.

use crate::arena::NodeId;
use crate::node::NodeData;
use crate::tree::Tree;

/// Whether two node payloads are equal for the purposes of tree equality.
fn data_eq(a: &NodeData, b: &NodeData) -> bool {
    a.tag == b.tag && a.content == b.content && a.attrs == b.attrs
}

/// Ordered-isomorphism test between the subtrees rooted at `na` / `nb`.
fn subtree_eq(ta: &Tree, na: NodeId, tb: &Tree, nb: NodeId) -> bool {
    let (Ok(da), Ok(db)) = (ta.data(na), tb.data(nb)) else {
        return false;
    };
    if !data_eq(da, db) {
        return false;
    }
    let ca: Vec<NodeId> = ta.children(na).collect();
    let cb: Vec<NodeId> = tb.children(nb).collect();
    if ca.len() != cb.len() {
        return false;
    }
    ca.iter().zip(cb.iter()).all(|(&x, &y)| subtree_eq(ta, x, tb, y))
}

/// Whether two trees are equal under ordered isomorphism.
pub fn trees_equal(a: &Tree, b: &Tree) -> bool {
    match (a.root(), b.root()) {
        (None, None) => true,
        (Some(ra), Some(rb)) => subtree_eq(a, ra, b, rb),
        _ => false,
    }
}

/// A canonical fingerprint of a tree such that
/// `fingerprint(a) == fingerprint(b)` iff [`trees_equal`]`(a, b)`.
///
/// Used to hash trees into sets for the set-theoretic operators without
/// quadratic pairwise comparison.
pub fn fingerprint(t: &Tree) -> String {
    fn go(t: &Tree, n: NodeId, out: &mut String) {
        let Ok(d) = t.data(n) else { return };
        out.push('(');
        // Escape the delimiter characters so distinct payloads can never
        // collide structurally.
        push_escaped(out, &d.tag);
        out.push('|');
        if let Some(c) = &d.content {
            push_escaped(out, &c.render());
        }
        for (k, v) in &d.attrs {
            out.push('@');
            push_escaped(out, k);
            out.push('=');
            push_escaped(out, v);
        }
        for c in t.children(n) {
            go(t, c, out);
        }
        out.push(')');
    }
    fn push_escaped(out: &mut String, s: &str) {
        for ch in s.chars() {
            if matches!(ch, '(' | ')' | '|' | '@' | '=' | '\\') {
                out.push('\\');
            }
            out.push(ch);
        }
    }
    let mut out = String::new();
    if let Some(r) = t.root() {
        go(t, r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn paper(author: &str, title: &str) -> Tree {
        TreeBuilder::new("inproceedings")
            .leaf("author", author)
            .leaf("title", title)
            .build()
    }

    #[test]
    fn identical_trees_are_equal() {
        let a = paper("X", "T");
        let b = paper("X", "T");
        assert!(trees_equal(&a, &b));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn content_difference_breaks_equality() {
        let a = paper("X", "T");
        let b = paper("X", "U");
        assert!(!trees_equal(&a, &b));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn sibling_order_matters() {
        let a = TreeBuilder::new("r").leaf("a", "1").leaf("b", "2").build();
        let b = TreeBuilder::new("r").leaf("b", "2").leaf("a", "1").build();
        assert!(!trees_equal(&a, &b));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn shape_difference_breaks_equality() {
        let a = TreeBuilder::new("r").open("a").leaf("b", "1").close().build();
        let b = TreeBuilder::new("r").leaf("a", "").leaf("b", "1").build();
        assert!(!trees_equal(&a, &b));
    }

    #[test]
    fn attrs_participate_in_equality() {
        let a = TreeBuilder::new("r").attr("k", "1").build();
        let b = TreeBuilder::new("r").attr("k", "2").build();
        let c = TreeBuilder::new("r").attr("k", "1").build();
        assert!(!trees_equal(&a, &b));
        assert!(trees_equal(&a, &c));
    }

    #[test]
    fn empty_trees_are_equal() {
        assert!(trees_equal(&Tree::new(), &Tree::new()));
        assert!(!trees_equal(&Tree::new(), &paper("X", "T")));
    }

    #[test]
    fn fingerprint_escapes_delimiters() {
        // A tag containing ')' must not collide with structure.
        let a = TreeBuilder::new("r)").build();
        let b = TreeBuilder::new("r").build();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = TreeBuilder::new("x").leaf("a|b", "").build();
        let d = TreeBuilder::new("x").leaf("a", "b").build();
        assert_ne!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn equality_ignores_detached_slots() {
        let mut a = TreeBuilder::new("r").leaf("a", "1").leaf("b", "2").build();
        let b = TreeBuilder::new("r").leaf("b", "2").build();
        let ra = a.root().unwrap();
        let first = a.children(ra).next().unwrap();
        a.detach(first).unwrap();
        assert!(trees_equal(&a, &b));
    }
}
