//! Node payloads: tag + content attributes with their types.

use crate::types::{TypeId, TypeSystem};
use crate::value::Value;

/// The data stored at one object of a semistructured instance.
///
/// Per Definition 1, an object `o` has two attributes: `o.tag` (the label of
/// the edge between `o` and its parent) and `o.content` (possibly empty for
/// interior elements). The mapping `t` assigns each attribute a type.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeData {
    /// The element tag, e.g. `author`, `inproceedings`.
    pub tag: String,
    /// Type of the tag attribute (`t(o, tag)`), normally `string`.
    pub tag_type: TypeId,
    /// Text content of the object, if any.
    pub content: Option<Value>,
    /// Type of the content attribute (`t(o, content)`), if content exists.
    pub content_type: Option<TypeId>,
    /// XML attributes (`name="value"` pairs), preserved in document order.
    /// TAX folds attributes into the tree model; we retain them so XML
    /// round-trips losslessly.
    pub attrs: Vec<(String, String)>,
}

impl NodeData {
    /// Create an element node with a tag and no content.
    pub fn element(tag: impl Into<String>) -> Self {
        NodeData {
            tag: tag.into(),
            tag_type: TypeSystem::STRING,
            content: None,
            content_type: None,
            attrs: Vec::new(),
        }
    }

    /// Create a node with a tag and text content, inferring the content type.
    pub fn with_content(tag: impl Into<String>, content: impl Into<Value>) -> Self {
        let content = content.into();
        let content_type = TypeSystem::infer(&content);
        NodeData {
            tag: tag.into(),
            tag_type: TypeSystem::STRING,
            content: Some(content),
            content_type: Some(content_type),
            attrs: Vec::new(),
        }
    }

    /// Attach an XML attribute, builder-style.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Content rendered as a string ("" when absent).
    pub fn content_str(&self) -> String {
        self.content.as_ref().map(Value::render).unwrap_or_default()
    }

    /// Content as `&str` when it is a string value.
    pub fn content_as_str(&self) -> Option<&str> {
        self.content.as_ref().and_then(Value::as_str)
    }

    /// Value of a named XML attribute.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_has_no_content() {
        let n = NodeData::element("article");
        assert_eq!(n.tag, "article");
        assert!(n.content.is_none());
        assert!(n.content_type.is_none());
        assert_eq!(n.content_str(), "");
    }

    #[test]
    fn with_content_infers_type() {
        let n = NodeData::with_content("year", 1999i64);
        assert_eq!(n.content, Some(Value::Int(1999)));
        assert_eq!(n.content_type, Some(TypeSystem::INT));
        let s = NodeData::with_content("author", "Paolo Ciancarini");
        assert_eq!(s.content_type, Some(TypeSystem::STRING));
        assert_eq!(s.content_as_str(), Some("Paolo Ciancarini"));
    }

    #[test]
    fn attrs_are_ordered_and_queryable() {
        let n = NodeData::element("article").attr("key", "a/1").attr("mdate", "2004");
        assert_eq!(n.attr_value("key"), Some("a/1"));
        assert_eq!(n.attr_value("mdate"), Some("2004"));
        assert_eq!(n.attr_value("missing"), None);
        assert_eq!(n.attrs[0].0, "key");
    }
}
