//! The type system `T` with domains `dom(τ)`.
//!
//! The paper assumes a set `T` of named types, each with a domain. Besides
//! the builtin `string`, `int` and `real`, applications register *unit*
//! types such as `mm` or `USD` (whose domains are subsets of the numeric
//! values) and *singleton* types: "each value of a type may also be viewed
//! as a type" (Section 5), which is how instance values participate in the
//! `below_H` cone of a type hierarchy.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a registered type — a dense index into the [`TypeSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index of this type within its [`TypeSystem`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Which values belong to `dom(τ)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// All strings.
    AnyString,
    /// All 64-bit integers.
    AnyInt,
    /// All finite reals.
    AnyReal,
    /// Non-negative numeric values — the paper's `mm` example.
    NonNegative,
    /// Exactly one value — singleton types "each value of a type may also
    /// be viewed as a type".
    Singleton(Value),
    /// A finite enumeration of values.
    Enumeration(Vec<Value>),
}

impl Domain {
    /// Membership test `v ∈ dom(τ)`.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::AnyString => matches!(v, Value::Str(_)),
            Domain::AnyInt => matches!(v, Value::Int(_)),
            Domain::AnyReal => v.as_real().is_some_and(f64::is_finite),
            Domain::NonNegative => v.as_real().is_some_and(|r| r >= 0.0 && r.is_finite()),
            Domain::Singleton(s) => v == s,
            Domain::Enumeration(vals) => vals.contains(v),
        }
    }
}

/// A registered type: a name plus a domain.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// The type's name (unique within a [`TypeSystem`]).
    pub name: String,
    /// The membership predicate for `dom(τ)`.
    pub domain: Domain,
}

/// Registry of types. Creating a system pre-registers the builtins
/// `string`, `int` and `real` (accessible via [`TypeSystem::STRING`] etc.).
#[derive(Debug, Clone)]
pub struct TypeSystem {
    defs: Vec<TypeDef>,
    by_name: HashMap<String, TypeId>,
}

impl TypeSystem {
    /// The builtin `string` type.
    pub const STRING: TypeId = TypeId(0);
    /// The builtin `int` type.
    pub const INT: TypeId = TypeId(1);
    /// The builtin `real` type.
    pub const REAL: TypeId = TypeId(2);

    /// Create a system containing only the builtins.
    pub fn new() -> Self {
        let mut ts = TypeSystem {
            defs: Vec::new(),
            by_name: HashMap::new(),
        };
        ts.register("string", Domain::AnyString);
        ts.register("int", Domain::AnyInt);
        ts.register("real", Domain::AnyReal);
        ts
    }

    /// Register a type; returns its id. Re-registering an existing name
    /// returns the existing id unchanged (registration is idempotent by
    /// name; the original domain wins).
    pub fn register(&mut self, name: &str, domain: Domain) -> TypeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TypeId(self.defs.len() as u32);
        self.defs.push(TypeDef {
            name: name.to_string(),
            domain,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Register the singleton type for a value (Section 5: values as types).
    pub fn register_singleton(&mut self, name: &str, value: Value) -> TypeId {
        self.register(name, Domain::Singleton(value))
    }

    /// Look up a type by name.
    pub fn lookup(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The definition for an id, if the id belongs to this system.
    pub fn def(&self, id: TypeId) -> Option<&TypeDef> {
        self.defs.get(id.index())
    }

    /// The name for an id (panics on a foreign id in debug builds only
    /// through `expect`-free Option handling).
    pub fn name(&self, id: TypeId) -> &str {
        self.def(id).map(|d| d.name.as_str()).unwrap_or("<unknown>")
    }

    /// Membership test `v ∈ dom(τ)`; `false` for unknown ids.
    pub fn value_in_domain(&self, v: &Value, ty: TypeId) -> bool {
        self.def(ty).is_some_and(|d| d.domain.contains(v))
    }

    /// Infer the builtin type for a lexical value.
    pub fn infer(v: &Value) -> TypeId {
        match v {
            Value::Str(_) => Self::STRING,
            Value::Int(_) => Self::INT,
            Value::Real(_) => Self::REAL,
        }
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether only builtins are present is never true (builtins exist), so
    /// this reports whether *no* types exist at all — kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterate over `(TypeId, &TypeDef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (TypeId(i as u32), d))
    }
}

impl Default for TypeSystem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_preregistered() {
        let ts = TypeSystem::new();
        assert_eq!(ts.lookup("string"), Some(TypeSystem::STRING));
        assert_eq!(ts.lookup("int"), Some(TypeSystem::INT));
        assert_eq!(ts.lookup("real"), Some(TypeSystem::REAL));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn register_is_idempotent_by_name() {
        let mut ts = TypeSystem::new();
        let a = ts.register("mm", Domain::NonNegative);
        let b = ts.register("mm", Domain::AnyInt);
        assert_eq!(a, b);
        // original domain wins
        assert!(ts.value_in_domain(&Value::Real(1.5), a));
    }

    #[test]
    fn nonnegative_domain() {
        let mut ts = TypeSystem::new();
        let mm = ts.register("mm", Domain::NonNegative);
        assert!(ts.value_in_domain(&Value::Int(0), mm));
        assert!(ts.value_in_domain(&Value::Real(2.5), mm));
        assert!(!ts.value_in_domain(&Value::Int(-1), mm));
        assert!(!ts.value_in_domain(&Value::Str("5".into()), mm));
    }

    #[test]
    fn singleton_types_view_values_as_types() {
        let mut ts = TypeSystem::new();
        let author = ts.register_singleton("author", Value::Str("author".into()));
        assert!(ts.value_in_domain(&Value::Str("author".into()), author));
        assert!(!ts.value_in_domain(&Value::Str("title".into()), author));
    }

    #[test]
    fn enumeration_domain() {
        let mut ts = TypeSystem::new();
        let month = ts.register(
            "month",
            Domain::Enumeration(vec![Value::Str("Jan".into()), Value::Str("Feb".into())]),
        );
        assert!(ts.value_in_domain(&Value::Str("Jan".into()), month));
        assert!(!ts.value_in_domain(&Value::Str("Mar".into()), month));
    }

    #[test]
    fn infer_builtin_types() {
        assert_eq!(TypeSystem::infer(&Value::Str("x".into())), TypeSystem::STRING);
        assert_eq!(TypeSystem::infer(&Value::Int(1)), TypeSystem::INT);
        assert_eq!(TypeSystem::infer(&Value::Real(1.0)), TypeSystem::REAL);
    }

    #[test]
    fn unknown_ids_are_handled() {
        let ts = TypeSystem::new();
        let bogus = TypeId(999);
        assert_eq!(ts.def(bogus), None);
        assert_eq!(ts.name(bogus), "<unknown>");
        assert!(!ts.value_in_domain(&Value::Int(1), bogus));
    }
}
