//! XML serialization of trees.
//!
//! Produces XML that the `toss-xmldb` parser round-trips: element tags,
//! attributes, text content with the five standard entity escapes, and
//! optional pretty-printing. Content and children can coexist (mixed
//! content is emitted with text first, matching how the model stores it).

use crate::arena::NodeId;
use crate::forest::Forest;
use crate::tree::Tree;
use std::fmt::Write as _;

/// Escape text content for XML.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape an attribute value for XML (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Serialization style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// No insignificant whitespace — the form used for storage and hashing.
    Compact,
    /// Two-space indentation per depth level.
    Pretty,
}

fn write_node(t: &Tree, n: NodeId, style: Style, depth: usize, out: &mut String) {
    let Ok(d) = t.data(n) else { return };
    if style == Style::Pretty {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push('<');
    out.push_str(&d.tag);
    for (k, v) in &d.attrs {
        let _ = write!(out, " {}=\"{}\"", k, escape_attr(v));
    }
    let kids: Vec<NodeId> = t.children(n).collect();
    let text = d.content.as_ref().map(|c| c.render());
    if kids.is_empty() && text.is_none() {
        out.push_str("/>");
        if style == Style::Pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    if let Some(txt) = &text {
        out.push_str(&escape_text(txt));
    }
    if !kids.is_empty() {
        if style == Style::Pretty {
            out.push('\n');
        }
        for k in kids {
            write_node(t, k, style, depth + 1, out);
        }
        if style == Style::Pretty {
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    }
    out.push_str("</");
    out.push_str(&d.tag);
    out.push('>');
    if style == Style::Pretty {
        out.push('\n');
    }
}

/// Serialize one tree.
pub fn tree_to_xml(t: &Tree, style: Style) -> String {
    let mut out = String::new();
    if let Some(r) = t.root() {
        write_node(t, r, style, 0, &mut out);
    }
    out
}

/// Serialize a forest as a sequence of documents separated by newlines
/// (compact) or directly concatenated pretty blocks.
pub fn forest_to_xml(f: &Forest, style: Style) -> String {
    let mut out = String::new();
    for (i, t) in f.iter().enumerate() {
        if i > 0 && style == Style::Compact {
            out.push('\n');
        }
        out.push_str(&tree_to_xml(t, style));
    }
    out
}

/// Approximate on-disk size of the forest in bytes (compact XML length).
/// Used by the scalability harness to report data sizes the way the paper
/// does (bytes of XML).
pub fn xml_size_bytes(f: &Forest) -> usize {
    f.iter().map(|t| tree_to_xml(t, Style::Compact).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    #[test]
    fn compact_leaf() {
        let t = TreeBuilder::new("a").leaf("b", "x").build();
        assert_eq!(tree_to_xml(&t, Style::Compact), "<a><b>x</b></a>");
    }

    #[test]
    fn empty_element_self_closes() {
        let t = TreeBuilder::new("a").empty("b").build();
        assert_eq!(tree_to_xml(&t, Style::Compact), "<a><b/></a>");
    }

    #[test]
    fn attributes_and_escaping() {
        let t = TreeBuilder::new("a")
            .attr("k", "x\"<&")
            .leaf("b", "1 < 2 & 3")
            .build();
        let xml = tree_to_xml(&t, Style::Compact);
        assert_eq!(
            xml,
            "<a k=\"x&quot;&lt;&amp;\"><b>1 &lt; 2 &amp; 3</b></a>"
        );
    }

    #[test]
    fn pretty_is_indented() {
        let t = TreeBuilder::new("a").open("b").leaf("c", "x").close().build();
        let xml = tree_to_xml(&t, Style::Pretty);
        assert!(xml.contains("\n  <b>"));
        assert!(xml.contains("\n    <c>"));
    }

    #[test]
    fn mixed_content_emits_text_then_children() {
        let t = TreeBuilder::new("a").content("hello").leaf("b", "x").build();
        assert_eq!(tree_to_xml(&t, Style::Compact), "<a>hello<b>x</b></a>");
    }

    #[test]
    fn forest_serialization_and_size() {
        let f = Forest::from_trees(vec![
            TreeBuilder::new("a").build(),
            TreeBuilder::new("b").build(),
        ]);
        assert_eq!(forest_to_xml(&f, Style::Compact), "<a/>\n<b/>");
        assert_eq!(xml_size_bytes(&f), 8);
    }
}
