//! Arena storage for ordered trees.
//!
//! All nodes of a [`crate::Tree`] live in one contiguous `Vec`; structure is
//! encoded with first-child / next-sibling / parent indices, which keeps the
//! representation compact and preorder traversal allocation-free. Node ids
//! are indices into the arena and are stable for the life of the tree
//! (removal is by *detach*, which unlinks a subtree without reusing slots —
//! detached slots are skipped by traversals).

use crate::error::{TreeError, TreeResult};
use crate::node::NodeData;
use std::fmt;

/// Identifier of a node inside one tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Only meaningful for ids obtained from
    /// the same tree; intended for serialization layers.
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One slot in the arena.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub data: NodeData,
    pub parent: Option<NodeId>,
    pub first_child: Option<NodeId>,
    pub last_child: Option<NodeId>,
    pub next_sibling: Option<NodeId>,
    pub prev_sibling: Option<NodeId>,
    /// True once the node has been detached from the tree.
    pub detached: bool,
}

/// The arena: a flat vector of slots.
#[derive(Debug, Clone, Default)]
pub struct Arena {
    pub(crate) slots: Vec<Slot>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { slots: Vec::new() }
    }

    /// Pre-allocate capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(n),
        }
    }

    /// Allocate a new unattached node.
    pub fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Slot {
            data,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            detached: false,
        });
        id
    }

    pub(crate) fn slot(&self, id: NodeId) -> TreeResult<&Slot> {
        self.slots
            .get(id.index())
            .ok_or(TreeError::InvalidNodeId(id.index()))
    }

    pub(crate) fn slot_mut(&mut self, id: NodeId) -> TreeResult<&mut Slot> {
        self.slots
            .get_mut(id.index())
            .ok_or(TreeError::InvalidNodeId(id.index()))
    }

    /// Append `child` as the last child of `parent`.
    ///
    /// Errors if either id is invalid, `child` already has a parent, or the
    /// append would create a cycle (i.e. `child` is an ancestor of
    /// `parent`).
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> TreeResult<()> {
        if parent == child {
            return Err(TreeError::StructureViolation(
                "cannot append a node to itself".into(),
            ));
        }
        if self.slot(child)?.parent.is_some() {
            return Err(TreeError::StructureViolation(format!(
                "node {child} already has a parent"
            )));
        }
        // cycle check: walk up from parent
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if c == child {
                return Err(TreeError::StructureViolation(format!(
                    "appending {child} under {parent} would create a cycle"
                )));
            }
            cur = self.slot(c)?.parent;
        }
        let old_last = self.slot(parent)?.last_child;
        {
            let cs = self.slot_mut(child)?;
            cs.parent = Some(parent);
            cs.prev_sibling = old_last;
            cs.next_sibling = None;
        }
        if let Some(last) = old_last {
            self.slot_mut(last)?.next_sibling = Some(child);
        } else {
            self.slot_mut(parent)?.first_child = Some(child);
        }
        self.slot_mut(parent)?.last_child = Some(child);
        Ok(())
    }

    /// Unlink `node` (and implicitly its whole subtree) from its parent.
    /// The subtree stays allocated but is marked detached; traversals from
    /// the root will no longer reach it.
    pub fn detach(&mut self, node: NodeId) -> TreeResult<()> {
        let (parent, prev, next) = {
            let s = self.slot(node)?;
            (s.parent, s.prev_sibling, s.next_sibling)
        };
        if let Some(p) = prev {
            self.slot_mut(p)?.next_sibling = next;
        } else if let Some(par) = parent {
            self.slot_mut(par)?.first_child = next;
        }
        if let Some(n) = next {
            self.slot_mut(n)?.prev_sibling = prev;
        } else if let Some(par) = parent {
            self.slot_mut(par)?.last_child = prev;
        }
        let s = self.slot_mut(node)?;
        s.parent = None;
        s.prev_sibling = None;
        s.next_sibling = None;
        s.detached = true;
        Ok(())
    }

    /// Number of allocated slots (including detached ones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(tag: &str) -> NodeData {
        NodeData::element(tag)
    }

    #[test]
    fn alloc_and_append() {
        let mut a = Arena::new();
        let root = a.alloc(data("root"));
        let c1 = a.alloc(data("c1"));
        let c2 = a.alloc(data("c2"));
        a.append_child(root, c1).unwrap();
        a.append_child(root, c2).unwrap();
        assert_eq!(a.slot(root).unwrap().first_child, Some(c1));
        assert_eq!(a.slot(root).unwrap().last_child, Some(c2));
        assert_eq!(a.slot(c1).unwrap().next_sibling, Some(c2));
        assert_eq!(a.slot(c2).unwrap().prev_sibling, Some(c1));
        assert_eq!(a.slot(c2).unwrap().parent, Some(root));
    }

    #[test]
    fn append_rejects_second_parent() {
        let mut a = Arena::new();
        let r1 = a.alloc(data("r1"));
        let r2 = a.alloc(data("r2"));
        let c = a.alloc(data("c"));
        a.append_child(r1, c).unwrap();
        assert!(matches!(
            a.append_child(r2, c),
            Err(TreeError::StructureViolation(_))
        ));
    }

    #[test]
    fn append_rejects_cycles() {
        let mut a = Arena::new();
        let r = a.alloc(data("r"));
        let c = a.alloc(data("c"));
        a.append_child(r, c).unwrap();
        assert!(matches!(
            a.append_child(c, r),
            Err(TreeError::StructureViolation(_))
        ));
        assert!(matches!(
            a.append_child(r, r),
            Err(TreeError::StructureViolation(_))
        ));
    }

    #[test]
    fn detach_unlinks_middle_sibling() {
        let mut a = Arena::new();
        let r = a.alloc(data("r"));
        let c1 = a.alloc(data("c1"));
        let c2 = a.alloc(data("c2"));
        let c3 = a.alloc(data("c3"));
        for c in [c1, c2, c3] {
            a.append_child(r, c).unwrap();
        }
        a.detach(c2).unwrap();
        assert_eq!(a.slot(c1).unwrap().next_sibling, Some(c3));
        assert_eq!(a.slot(c3).unwrap().prev_sibling, Some(c1));
        assert!(a.slot(c2).unwrap().detached);
        assert_eq!(a.slot(r).unwrap().first_child, Some(c1));
        assert_eq!(a.slot(r).unwrap().last_child, Some(c3));
    }

    #[test]
    fn detach_first_and_last() {
        let mut a = Arena::new();
        let r = a.alloc(data("r"));
        let c1 = a.alloc(data("c1"));
        let c2 = a.alloc(data("c2"));
        a.append_child(r, c1).unwrap();
        a.append_child(r, c2).unwrap();
        a.detach(c1).unwrap();
        assert_eq!(a.slot(r).unwrap().first_child, Some(c2));
        a.detach(c2).unwrap();
        assert_eq!(a.slot(r).unwrap().first_child, None);
        assert_eq!(a.slot(r).unwrap().last_child, None);
    }

    #[test]
    fn invalid_ids_error() {
        let a = Arena::new();
        assert!(matches!(
            a.slot(NodeId(5)),
            Err(TreeError::InvalidNodeId(5))
        ));
    }
}
