//! Rooted ordered trees over an [`Arena`].

use crate::arena::{Arena, NodeId};
use crate::error::{TreeError, TreeResult};
use crate::iter::{Ancestors, Children, Descendants, Preorder};
use crate::node::NodeData;

/// One rooted, ordered, labelled tree — a member of a semistructured
/// instance per Definition 1.
#[derive(Debug, Clone)]
pub struct Tree {
    pub(crate) arena: Arena,
    pub(crate) root: Option<NodeId>,
}

impl Tree {
    /// An empty tree (no root yet).
    pub fn new() -> Self {
        Tree {
            arena: Arena::new(),
            root: None,
        }
    }

    /// A tree whose root carries `data`.
    pub fn with_root(data: NodeData) -> Self {
        let mut arena = Arena::new();
        let root = arena.alloc(data);
        Tree {
            arena,
            root: Some(root),
        }
    }

    /// The root node id.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// The root id, or an error for an empty tree.
    pub fn root_or_err(&self) -> TreeResult<NodeId> {
        self.root.ok_or(TreeError::EmptyTree)
    }

    /// Set the root of an empty tree.
    pub fn set_root(&mut self, data: NodeData) -> TreeResult<NodeId> {
        if self.root.is_some() {
            return Err(TreeError::StructureViolation("tree already has a root".into()));
        }
        let id = self.arena.alloc(data);
        self.root = Some(id);
        Ok(id)
    }

    /// Allocate a node carrying `data` and append it as the last child of
    /// `parent`.
    pub fn add_child(&mut self, parent: NodeId, data: NodeData) -> TreeResult<NodeId> {
        let id = self.arena.alloc(data);
        self.arena.append_child(parent, id)?;
        Ok(id)
    }

    /// Detach the subtree rooted at `node`. Detaching the root empties the
    /// tree.
    pub fn detach(&mut self, node: NodeId) -> TreeResult<()> {
        self.arena.detach(node)?;
        if self.root == Some(node) {
            self.root = None;
        }
        Ok(())
    }

    /// Payload of a node.
    pub fn data(&self, id: NodeId) -> TreeResult<&NodeData> {
        Ok(&self.arena.slot(id)?.data)
    }

    /// Mutable payload of a node.
    pub fn data_mut(&mut self, id: NodeId) -> TreeResult<&mut NodeData> {
        Ok(&mut self.arena.slot_mut(id)?.data)
    }

    /// Parent of a node (None at the root).
    pub fn parent(&self, id: NodeId) -> TreeResult<Option<NodeId>> {
        Ok(self.arena.slot(id)?.parent)
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children::new(&self.arena, id)
    }

    /// Strict descendants of a node in preorder (excludes `id` itself).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(&self.arena, id)
    }

    /// `id` followed by its descendants in preorder.
    pub fn subtree(&self, id: NodeId) -> Preorder<'_> {
        Preorder::new(&self.arena, Some(id))
    }

    /// All nodes of the tree in preorder.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder::new(&self.arena, self.root)
    }

    /// Strict ancestors of a node, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(&self.arena, id)
    }

    /// Whether `anc` is a *strict* ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.ancestors(desc).any(|a| a == anc)
    }

    /// Whether `desc` lies in the subtree of `anc` (reflexive).
    pub fn in_subtree(&self, anc: NodeId, desc: NodeId) -> bool {
        anc == desc || self.is_ancestor(anc, desc)
    }

    /// Number of live (attached, root-reachable) nodes.
    pub fn node_count(&self) -> usize {
        self.preorder().count()
    }

    /// Whether the tree has no root.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// First child with the given tag.
    pub fn child_by_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        self.children(id)
            .find(|&c| self.data(c).map(|d| d.tag == tag).unwrap_or(false))
    }

    /// Deep-copy the subtree rooted at `src` of `other` into this tree,
    /// appending it under `parent` (or making it the root of an empty
    /// tree when `parent` is `None`). Returns the id of the copied root.
    pub fn graft(
        &mut self,
        parent: Option<NodeId>,
        other: &Tree,
        src: NodeId,
    ) -> TreeResult<NodeId> {
        let data = other.data(src)?.clone();
        let new_id = match parent {
            Some(p) => self.add_child(p, data)?,
            None => self.set_root(data)?,
        };
        let children: Vec<NodeId> = other.children(src).collect();
        for c in children {
            self.graft(Some(new_id), other, c)?;
        }
        Ok(new_id)
    }

    /// Extract the subtree rooted at `id` as a standalone tree.
    pub fn extract(&self, id: NodeId) -> TreeResult<Tree> {
        let mut t = Tree::new();
        t.graft(None, self, id)?;
        Ok(t)
    }
}

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Tree, NodeId, NodeId, NodeId, NodeId) {
        // article -> (author, title -> sub)
        let mut t = Tree::with_root(NodeData::element("article"));
        let r = t.root().unwrap();
        let a = t.add_child(r, NodeData::with_content("author", "J. Ullman")).unwrap();
        let ti = t.add_child(r, NodeData::element("title")).unwrap();
        let sub = t.add_child(ti, NodeData::with_content("sub", "x")).unwrap();
        (t, r, a, ti, sub)
    }

    #[test]
    fn preorder_visits_document_order() {
        let (t, r, a, ti, sub) = sample();
        let order: Vec<NodeId> = t.preorder().collect();
        assert_eq!(order, vec![r, a, ti, sub]);
    }

    #[test]
    fn descendants_excludes_self() {
        let (t, r, a, ti, sub) = sample();
        let d: Vec<NodeId> = t.descendants(r).collect();
        assert_eq!(d, vec![a, ti, sub]);
        assert_eq!(t.descendants(sub).count(), 0);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (t, r, _a, ti, sub) = sample();
        let anc: Vec<NodeId> = t.ancestors(sub).collect();
        assert_eq!(anc, vec![ti, r]);
    }

    #[test]
    fn ancestry_predicates() {
        let (t, r, a, ti, sub) = sample();
        assert!(t.is_ancestor(r, sub));
        assert!(!t.is_ancestor(sub, r));
        assert!(!t.is_ancestor(a, ti));
        assert!(t.in_subtree(ti, sub));
        assert!(t.in_subtree(ti, ti));
    }

    #[test]
    fn depth_and_count() {
        let (t, r, _a, _ti, sub) = sample();
        assert_eq!(t.depth(r), 0);
        assert_eq!(t.depth(sub), 2);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn detach_subtree_hides_descendants() {
        let (mut t, _r, _a, ti, _sub) = sample();
        t.detach(ti).unwrap();
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn detach_root_empties() {
        let (mut t, r, ..) = sample();
        t.detach(r).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn set_root_twice_fails() {
        let mut t = Tree::with_root(NodeData::element("a"));
        assert!(t.set_root(NodeData::element("b")).is_err());
    }

    #[test]
    fn graft_deep_copies() {
        let (src, _r, _a, ti, _sub) = sample();
        let mut dst = Tree::with_root(NodeData::element("holder"));
        let hr = dst.root().unwrap();
        let copied = dst.graft(Some(hr), &src, ti).unwrap();
        assert_eq!(dst.data(copied).unwrap().tag, "title");
        assert_eq!(dst.node_count(), 3); // holder, title, sub
        // mutation of the copy does not affect the source
        dst.data_mut(copied).unwrap().tag = "renamed".into();
        assert_eq!(src.data(ti).unwrap().tag, "title");
    }

    #[test]
    fn extract_produces_standalone_tree() {
        let (src, _r, _a, ti, _sub) = sample();
        let ex = src.extract(ti).unwrap();
        assert_eq!(ex.node_count(), 2);
        assert_eq!(ex.data(ex.root().unwrap()).unwrap().tag, "title");
    }

    #[test]
    fn child_by_tag() {
        let (t, r, a, ti, _sub) = sample();
        assert_eq!(t.child_by_tag(r, "author"), Some(a));
        assert_eq!(t.child_by_tag(r, "title"), Some(ti));
        assert_eq!(t.child_by_tag(r, "nope"), None);
    }
}
