//! Ergonomic tree construction.
//!
//! [`TreeBuilder`] maintains a cursor so trees can be written in the order
//! they appear in an XML document:
//!
//! ```
//! use toss_tree::TreeBuilder;
//!
//! let tree = TreeBuilder::new("inproceedings")
//!     .leaf("author", "Jeffrey D. Ullman")
//!     .leaf("title", "A Survey of Deductive Database Systems")
//!     .open("venue")
//!     .leaf("booktitle", "SIGMOD Conference")
//!     .close()
//!     .leaf("year", "1999")
//!     .build();
//! assert_eq!(tree.node_count(), 6);
//! ```

use crate::arena::NodeId;
use crate::node::NodeData;
use crate::tree::Tree;
use crate::value::Value;

/// Cursor-based builder for [`Tree`].
#[derive(Debug)]
pub struct TreeBuilder {
    tree: Tree,
    /// Stack of open elements; the top is the current insertion point.
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Start a tree whose root element has tag `root_tag`.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let tree = Tree::with_root(NodeData::element(root_tag));
        let root = tree.root().expect("with_root always sets a root");
        TreeBuilder {
            tree,
            stack: vec![root],
        }
    }

    /// Start a tree from prebuilt root data (e.g. carrying attributes).
    pub fn from_data(root: NodeData) -> Self {
        let tree = Tree::with_root(root);
        let r = tree.root().expect("with_root always sets a root");
        TreeBuilder {
            tree,
            stack: vec![r],
        }
    }

    fn cursor(&self) -> NodeId {
        *self.stack.last().expect("builder stack is never empty")
    }

    /// Open a child element and descend into it.
    pub fn open(mut self, tag: impl Into<String>) -> Self {
        let id = self
            .tree
            .add_child(self.cursor(), NodeData::element(tag))
            .expect("cursor is always valid");
        self.stack.push(id);
        self
    }

    /// Open a child element built from explicit [`NodeData`].
    pub fn open_data(mut self, data: NodeData) -> Self {
        let id = self
            .tree
            .add_child(self.cursor(), data)
            .expect("cursor is always valid");
        self.stack.push(id);
        self
    }

    /// Close the current element, moving the cursor to its parent.
    ///
    /// Closing the root is a no-op (the cursor stays at the root), so a
    /// builder chain can never underflow.
    pub fn close(mut self) -> Self {
        if self.stack.len() > 1 {
            self.stack.pop();
        }
        self
    }

    /// Append a leaf element with text content under the cursor.
    pub fn leaf(mut self, tag: impl Into<String>, content: impl Into<Value>) -> Self {
        self.tree
            .add_child(self.cursor(), NodeData::with_content(tag, content))
            .expect("cursor is always valid");
        self
    }

    /// Append an empty leaf element under the cursor.
    pub fn empty(mut self, tag: impl Into<String>) -> Self {
        self.tree
            .add_child(self.cursor(), NodeData::element(tag))
            .expect("cursor is always valid");
        self
    }

    /// Set text content on the currently open element.
    pub fn content(mut self, content: impl Into<Value>) -> Self {
        let cur = self.cursor();
        let value = content.into();
        let ty = crate::types::TypeSystem::infer(&value);
        let data = self.tree.data_mut(cur).expect("cursor is always valid");
        data.content = Some(value);
        data.content_type = Some(ty);
        self
    }

    /// Set an XML attribute on the currently open element.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let cur = self.cursor();
        self.tree
            .data_mut(cur)
            .expect("cursor is always valid")
            .attrs
            .push((name.into(), value.into()));
        self
    }

    /// Finish, closing any still-open elements.
    pub fn build(self) -> Tree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_build_shapes() {
        let t = TreeBuilder::new("r")
            .open("a")
            .leaf("b", "1")
            .close()
            .leaf("c", "2")
            .build();
        let r = t.root().unwrap();
        let kids: Vec<String> = t
            .children(r)
            .map(|c| t.data(c).unwrap().tag.clone())
            .collect();
        assert_eq!(kids, vec!["a", "c"]);
        let a = t.child_by_tag(r, "a").unwrap();
        assert_eq!(t.child_by_tag(a, "b").is_some(), true);
    }

    #[test]
    fn close_at_root_is_noop() {
        let t = TreeBuilder::new("r").close().close().leaf("x", "1").build();
        let r = t.root().unwrap();
        assert!(t.child_by_tag(r, "x").is_some());
    }

    #[test]
    fn unclosed_elements_are_fine() {
        let t = TreeBuilder::new("r").open("a").open("b").build();
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn content_and_attrs_on_open_element() {
        let t = TreeBuilder::new("article")
            .attr("key", "x/1")
            .open("title")
            .content("TOSS")
            .close()
            .build();
        let r = t.root().unwrap();
        assert_eq!(t.data(r).unwrap().attr_value("key"), Some("x/1"));
        let title = t.child_by_tag(r, "title").unwrap();
        assert_eq!(t.data(title).unwrap().content_str(), "TOSS");
    }

    #[test]
    fn doc_example_counts() {
        let tree = TreeBuilder::new("inproceedings")
            .leaf("author", "Jeffrey D. Ullman")
            .leaf("title", "A Survey of Deductive Database Systems")
            .open("venue")
            .leaf("booktitle", "SIGMOD Conference")
            .close()
            .leaf("year", "1999")
            .build();
        assert_eq!(tree.node_count(), 6 + 1 - 1); // root + 4 leaves + venue
    }
}
