//! # toss-tree — the semistructured data model
//!
//! This crate implements the data model of Definition 1 in the TOSS paper
//! (Hung, Deng, Subrahmanian, SIGMOD 2004): a *semistructured instance* is a
//! set of rooted, ordered, directed trees whose objects carry two attributes
//! — a **tag** (the label of the edge to the parent) and a **content** — each
//! of which has a *type* drawn from a type system `T` with domains
//! `dom(τ)`.
//!
//! The central abstractions:
//!
//! * [`Tree`] — one rooted ordered tree, stored in an arena ([`arena`]).
//! * [`Forest`] — an ordered collection of trees; a semistructured database
//!   (SDB) is a [`Forest`] (the paper's finite set of instances).
//! * [`Value`] / [`TypeId`] / [`TypeSystem`] — typed attribute values and the
//!   type registry used by the TOSS type hierarchy and conversion functions.
//! * [`TreeBuilder`] — ergonomic construction of trees.
//! * ordered-isomorphism equality ([`eq`]) used by TAX's set-theoretic
//!   operators (union, intersection, difference).
//!
//! The XML serialization in [`serialize`] round-trips with the parser in the
//! `toss-xmldb` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod eq;
pub mod error;
pub mod forest;
pub mod iter;
pub mod node;
pub mod serialize;
pub mod tree;
pub mod types;
pub mod value;

pub use arena::NodeId;
pub use builder::TreeBuilder;
pub use error::{TreeError, TreeResult};
pub use forest::Forest;
pub use node::NodeData;
pub use tree::Tree;
pub use types::{TypeId, TypeSystem};
pub use value::Value;
