//! # toss-json — dependency-free JSON for the TOSS persistence layers
//!
//! The snapshot store (`toss-xmldb`), SEO persistence (`toss-ontology`) and
//! the benchmark result writer all speak JSON. This crate supplies the
//! shared value model, a strict parser with byte-offset errors, and compact
//! and pretty writers — with no external dependencies, so the workspace
//! builds in fully offline environments.
//!
//! Object key order is preserved (insertion order), which keeps snapshot
//! bytes deterministic — a property the checksummed snapshot format in
//! `toss-xmldb` relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

/// A parse error: byte offset plus description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type JsonResult<T> = Result<T, JsonError>;

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> JsonResult<Value> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Compact serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/Infinity; null is the least-bad option.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained integer, if this is a number representable as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// The contained number as `usize`, if non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// The contained number as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The contained boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The contained object's fields.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(f) => Some(f),
            _ => None,
        }
    }

    /// Look up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Build an object from key/value pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> JsonResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> JsonResult<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> JsonResult<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> JsonResult<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> JsonResult<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> JsonResult<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid number `{text}`")))
        } else {
            // fall back to float on i64 overflow
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err(format!("invalid number `{text}`")))
            })
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_i64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r π 漢 \u{1F600}";
        let v = Value::Str(s.to_string());
        let json = v.to_json();
        assert_eq!(Value::parse(&json).unwrap(), v);
        // explicit surrogate pair decodes
        assert_eq!(
            Value::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"\\x\"", "\"", "01a", "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Value::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::object(vec![
            ("name", "dblp".into()),
            ("n", 3usize.into()),
            ("eps", 2.5.into()),
            ("tags", vec!["a", "b"].into()),
            ("nested", Value::object(vec![("empty", Value::Array(vec![]))])),
        ]);
        for json in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(Value::parse(&json).unwrap(), v);
        }
        assert_eq!(
            v.to_json(),
            r#"{"name":"dblp","n":3,"eps":2.5,"tags":["a","b"],"nested":{"empty":[]}}"#
        );
    }

    #[test]
    fn key_order_is_preserved() {
        let json = r#"{"z":1,"a":2,"m":3}"#;
        let v = Value::parse(json).unwrap();
        assert_eq!(v.to_json(), json);
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = Value::parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }
}
