//! CRC-32 (IEEE 802.3 polynomial) used to checksum journal records and
//! snapshot payloads.
//!
//! Table-driven, reflected, initial value `0xFFFF_FFFF`, final XOR
//! `0xFFFF_FFFF` — the same parameterization as zlib's `crc32()`, so the
//! on-disk format can be verified with standard tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        let mut flipped = b"hello world".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} flip went undetected");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }

    #[test]
    fn incremental_equals_whole() {
        // Sanity: the function is deterministic over concatenated input.
        assert_eq!(crc32(b"abcdef"), crc32("abcdef".as_bytes()));
    }
}
