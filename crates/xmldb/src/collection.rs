//! Named collections of XML documents.
//!
//! A [`Collection`] owns a set of documents (trees), assigns them stable
//! [`DocumentId`]s, tracks its serialized size against a configurable limit
//! (Xindice's 5 MB by default, set at the [`crate::Database`] level) and
//! maintains the inverted indexes used by the XPath engine's
//! descendant-axis fast path.

use crate::error::{DbError, DbResult};
use crate::index::{CollectionIndex, IndexView};
use crate::segidx::FrozenIndex;
use toss_tree::serialize::{tree_to_xml, Style};
use toss_tree::Tree;

/// Stable identifier of a document within a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocumentId(pub u64);

impl std::fmt::Display for DocumentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// A stored document: the parsed tree plus its compact-XML byte size.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    /// The document id.
    pub id: DocumentId,
    /// The parsed tree.
    pub tree: Tree,
    /// Size of the compact XML serialization in bytes.
    pub size_bytes: usize,
}

/// Which backend currently answers index probes for a collection.
///
/// * `Building` — the live pointer index, updated on every mutation (the
///   only state a collection mutated since open can be in);
/// * `Deferred` — snapshot restore in progress: documents are being
///   inserted without indexing, because a frozen segment may attach when
///   the restore finishes (or a single rebuild runs if it can't);
/// * `Frozen` — a zero-copy segment-backed index is attached. The first
///   mutation thaws it: the pointer index is rebuilt from the documents
///   and takes over seamlessly.
#[derive(Debug)]
enum IndexState {
    Building(CollectionIndex),
    Deferred,
    Frozen(FrozenIndex),
}

/// A named collection of documents.
#[derive(Debug)]
pub struct Collection {
    name: String,
    docs: Vec<StoredDocument>,
    next_id: u64,
    size_bytes: usize,
    size_limit: Option<usize>,
    index: IndexState,
}

impl Collection {
    /// Create an empty collection. `size_limit` of `None` means unlimited.
    pub fn new(name: impl Into<String>, size_limit: Option<usize>) -> Self {
        Collection {
            name: name.into(),
            docs: Vec::new(),
            next_id: 0,
            size_bytes: 0,
            size_limit,
            index: IndexState::Building(CollectionIndex::new()),
        }
    }

    /// The mutable pointer index, thawing a frozen or deferred index
    /// first (one rebuild from the stored documents). Every mutation
    /// path funnels through this, which is what makes the frozen →
    /// pointer handover seamless.
    fn index_mut(&mut self) -> &mut CollectionIndex {
        if !matches!(self.index, IndexState::Building(_)) {
            let mut ix = CollectionIndex::new();
            for d in &self.docs {
                ix.add_document(d.id, &d.tree);
            }
            if matches!(self.index, IndexState::Frozen(_)) {
                toss_obs::metrics::counter("xmldb.segment.thaws").inc();
            }
            self.index = IndexState::Building(ix);
        }
        match &mut self.index {
            IndexState::Building(ix) => ix,
            _ => unreachable!("index state set to Building above"),
        }
    }

    /// Switch into deferred-restore mode: subsequent
    /// [`Collection::insert_with_id`] calls skip indexing. Only the
    /// snapshot loader uses this; it must end the restore with
    /// [`Collection::attach_frozen`] or [`Collection::ensure_index`].
    pub(crate) fn begin_deferred_restore(&mut self) {
        self.index = IndexState::Deferred;
    }

    /// Attach a frozen segment-backed index, ending a deferred restore.
    /// Refuses (and leaves the state deferred) when the segment's
    /// recorded document count disagrees with what was restored.
    pub(crate) fn attach_frozen(&mut self, frozen: FrozenIndex) -> bool {
        if frozen.doc_count() != self.docs.len() as u64 {
            return false;
        }
        self.index = IndexState::Frozen(frozen);
        true
    }

    /// Make sure a pointer index exists (rebuilding from documents if
    /// the state is deferred). The fallback end of a restore.
    pub(crate) fn ensure_index(&mut self) {
        if matches!(self.index, IndexState::Deferred) {
            let mut ix = CollectionIndex::new();
            for d in &self.docs {
                ix.add_document(d.id, &d.tree);
            }
            self.index = IndexState::Building(ix);
        }
    }

    /// Whether probes currently read from a frozen segment.
    pub fn is_frozen(&self) -> bool {
        matches!(self.index, IndexState::Frozen(_))
    }

    /// Approximate resident bytes of the index backend: pointer-index
    /// heap estimate, or this collection's section bytes within the
    /// loaded segment. `(pointer, segment)` — one of the two is 0.
    pub fn index_bytes(&self) -> (usize, usize) {
        match &self.index {
            IndexState::Building(ix) => (ix.approx_bytes(), 0),
            IndexState::Deferred => (0, 0),
            IndexState::Frozen(f) => (0, f.section_bytes()),
        }
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert a parsed document; returns its id.
    ///
    /// Fails with [`DbError::CollectionFull`] when the compact XML size
    /// of the collection would exceed the configured limit.
    pub fn insert(&mut self, tree: Tree) -> DbResult<DocumentId> {
        let id = DocumentId(self.next_id);
        self.insert_with_id(id, tree)?;
        Ok(id)
    }

    /// Insert a parsed document under a caller-chosen id. Used by snapshot
    /// restore, where ids must survive a save/load cycle exactly (a
    /// remove leaves a permanent gap in the id sequence, and a
    /// re-numbering load would silently re-point every later id). The id
    /// counter advances past `id`, so ids are never reused; note that a
    /// gap *above* the largest live id is invisible here and must be
    /// restored separately (see the snapshot's `next_id` field).
    pub fn insert_with_id(&mut self, id: DocumentId, tree: Tree) -> DbResult<()> {
        // Ids are monotonic, so the common case (id above every stored
        // id) is one tail check; only out-of-order ids pay a full scan.
        let maybe_dup = self.docs.last().is_some_and(|d| d.id >= id);
        if maybe_dup && self.docs.iter().any(|d| d.id == id) {
            return Err(DbError::Storage(format!(
                "duplicate document id {id} in collection `{}`",
                self.name
            )));
        }
        let size = tree_to_xml(&tree, Style::Compact).len();
        if let Some(limit) = self.size_limit {
            if self.size_bytes + size > limit {
                return Err(DbError::CollectionFull {
                    collection: self.name.clone(),
                    limit,
                    attempted: self.size_bytes + size,
                });
            }
        }
        self.next_id = self.next_id.max(id.0 + 1);
        if !matches!(self.index, IndexState::Deferred) {
            self.index_mut().add_document(id, &tree);
        }
        self.size_bytes += size;
        self.docs.push(StoredDocument {
            id,
            tree,
            size_bytes: size,
        });
        Ok(())
    }

    /// Insert raw XML text (parsed with [`crate::parse_document`]).
    pub fn insert_xml(&mut self, xml: &str) -> DbResult<DocumentId> {
        let tree = crate::parser::parse_document(xml)?;
        self.insert(tree)
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocumentId) -> DbResult<&StoredDocument> {
        self.docs
            .iter()
            .find(|d| d.id == id)
            .ok_or(DbError::NoSuchDocument(id.0))
    }

    /// Replace a document's tree in place, keeping its id. Re-checks the
    /// size limit against the new total and re-indexes.
    pub fn replace(&mut self, id: DocumentId, tree: Tree) -> DbResult<Tree> {
        let pos = self
            .docs
            .iter()
            .position(|d| d.id == id)
            .ok_or(DbError::NoSuchDocument(id.0))?;
        let new_size = tree_to_xml(&tree, Style::Compact).len();
        let old_size = self.docs[pos].size_bytes;
        if let Some(limit) = self.size_limit {
            if self.size_bytes - old_size + new_size > limit {
                return Err(DbError::CollectionFull {
                    collection: self.name.clone(),
                    limit,
                    attempted: self.size_bytes - old_size + new_size,
                });
            }
        }
        let ix = self.index_mut();
        ix.remove_document(id);
        ix.add_document(id, &tree);
        self.size_bytes = self.size_bytes - old_size + new_size;
        let old = std::mem::replace(&mut self.docs[pos].tree, tree);
        self.docs[pos].size_bytes = new_size;
        Ok(old)
    }

    /// Remove a document by id; returns the removed tree.
    pub fn remove(&mut self, id: DocumentId) -> DbResult<Tree> {
        let pos = self
            .docs
            .iter()
            .position(|d| d.id == id)
            .ok_or(DbError::NoSuchDocument(id.0))?;
        // Thaw before removing from `docs` so a frozen rebuild still
        // sees the document it must then un-index.
        self.index_mut().remove_document(id);
        let doc = self.docs.remove(pos);
        self.size_bytes -= doc.size_bytes;
        Ok(doc.tree)
    }

    /// All stored documents, in insertion order.
    pub fn documents(&self) -> &[StoredDocument] {
        &self.docs
    }

    /// The id the next inserted document will receive. Monotonic: removes
    /// leave gaps, ids are never reused.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Raise the id counter to at least `n` — snapshot restore uses this
    /// to reinstate a gap above the largest live id (e.g. after the
    /// highest-numbered document was removed).
    pub(crate) fn set_next_id_at_least(&mut self, n: u64) {
        self.next_id = self.next_id.max(n);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total compact-XML size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// The configured size limit, if any.
    pub fn size_limit(&self) -> Option<usize> {
        self.size_limit
    }

    /// The collection's inverted index (tag → document/node postings) —
    /// a facade over the live pointer index or, right after a snapshot
    /// load with a valid `.seg` sidecar, a zero-copy frozen segment.
    pub fn index(&self) -> IndexView<'_> {
        static EMPTY: std::sync::OnceLock<CollectionIndex> = std::sync::OnceLock::new();
        match &self.index {
            IndexState::Building(ix) => IndexView::Pointer(ix),
            // mid-restore; nothing probes here, but stay total
            IndexState::Deferred => {
                IndexView::Pointer(EMPTY.get_or_init(CollectionIndex::new))
            }
            IndexState::Frozen(f) => IndexView::Frozen(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_tree::TreeBuilder;

    fn doc(n: usize) -> Tree {
        TreeBuilder::new("article")
            .leaf("title", format!("Paper {n}"))
            .build()
    }

    #[test]
    fn insert_get_remove_cycle() {
        let mut c = Collection::new("dblp", None);
        let id0 = c.insert(doc(0)).unwrap();
        let id1 = c.insert(doc(1)).unwrap();
        assert_ne!(id0, id1);
        assert_eq!(c.len(), 2);
        assert!(c.size_bytes() > 0);
        let removed = c.remove(id0).unwrap();
        assert_eq!(removed.node_count(), 2);
        assert_eq!(c.len(), 1);
        assert!(matches!(c.get(id0), Err(DbError::NoSuchDocument(_))));
        assert!(c.get(id1).is_ok());
    }

    #[test]
    fn ids_are_not_reused_after_removal() {
        let mut c = Collection::new("x", None);
        let id0 = c.insert(doc(0)).unwrap();
        c.remove(id0).unwrap();
        let id1 = c.insert(doc(1)).unwrap();
        assert_ne!(id0, id1);
    }

    #[test]
    fn size_limit_enforced_like_xindice() {
        let mut c = Collection::new("tiny", Some(60));
        c.insert(doc(0)).unwrap(); // ~45 bytes
        let e = c.insert(doc(1)).unwrap_err();
        assert!(matches!(e, DbError::CollectionFull { limit: 60, .. }));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn size_accounting_tracks_removals() {
        let mut c = Collection::new("x", None);
        let id = c.insert(doc(0)).unwrap();
        let sz = c.size_bytes();
        c.insert(doc(1)).unwrap();
        assert!(c.size_bytes() > sz);
        c.remove(id).unwrap();
        assert!(c.size_bytes() < sz * 2);
    }

    #[test]
    fn replace_keeps_id_and_reindexes() {
        let mut c = Collection::new("x", None);
        let id = c.insert(doc(0)).unwrap();
        let old = c
            .replace(
                id,
                TreeBuilder::new("article").leaf("title", "Replaced").build(),
            )
            .unwrap();
        assert_eq!(old.node_count(), 2);
        assert_eq!(c.get(id).unwrap().tree.data(c.get(id).unwrap().tree.root().unwrap()).unwrap().tag, "article");
        // index reflects the new content only
        assert_eq!(c.index().by_tag_content("title", "Paper 0").len(), 0);
        assert_eq!(c.index().by_tag_content("title", "Replaced").len(), 1);
        assert!(matches!(
            c.replace(DocumentId(99), doc(1)),
            Err(DbError::NoSuchDocument(99))
        ));
    }

    #[test]
    fn replace_respects_size_limit() {
        let mut c = Collection::new("tiny", Some(60));
        let id = c.insert(doc(0)).unwrap();
        let huge = TreeBuilder::new("article")
            .leaf("title", "x".repeat(100))
            .build();
        assert!(matches!(
            c.replace(id, huge),
            Err(DbError::CollectionFull { .. })
        ));
        // shrinking replacement is fine
        c.replace(id, TreeBuilder::new("a").build()).unwrap();
        assert!(c.size_bytes() < 60);
    }

    #[test]
    fn insert_xml_parses() {
        let mut c = Collection::new("x", None);
        let id = c.insert_xml("<a><b>1</b></a>").unwrap();
        assert_eq!(c.get(id).unwrap().tree.node_count(), 2);
        assert!(c.insert_xml("<a><b>").is_err());
    }
}
