//! The XPath-subset engine.
//!
//! Grammar (the fragment TOSS's Query Executor emits — Section 6 of the
//! paper says pattern trees are rewritten into XPath queries against
//! Xindice):
//!
//! ```text
//! xpath    := path ('|' path)*
//! path     := ('/' | '//') step (('/' | '//') step)*
//! step     := nametest pred*
//! nametest := NAME | '*'
//! pred     := '[' expr ']'
//! expr     := orexpr
//! orexpr   := andexpr ('or' andexpr)*
//! andexpr  := unary ('and' unary)*
//! unary    := 'not' '(' expr ')' | comparison | INTEGER | relpath
//! comparison := value ('=' | '!=') STRING
//! value    := 'text' '(' ')' | '@' NAME | relpath
//!           | 'contains' '(' value ',' STRING ')'
//! relpath  := ('.' '//')? step ('/' step)*
//! ```
//!
//! A bare `relpath` predicate tests existence; an `INTEGER` predicate
//! tests position among the step's matches (1-based, per XPath).
//!
//! Deviation from the W3C semantics, documented for users of positional
//! predicates: on a path-initial descendant step (`//a[2]`) the position
//! is taken within the *document-order list of all matches in the
//! document*, not per parent context (later steps are per-context, as in
//! the standard). The TOSS rewriter never emits positional predicates;
//! they exist for hand-written queries.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, NameTest, Path, RelPath, Step, ValueExpr, XPath};
pub use eval::{planned_partitions, NodeRef, ScanBudget, ScanControl, ScanStatus};

use crate::error::DbResult;

impl XPath {
    /// Parse an XPath expression.
    pub fn parse(input: &str) -> DbResult<XPath> {
        let span = toss_obs::span("xmldb.xpath.parse");
        span.record("src_len", input.len());
        let parsed = parser::parse(input);
        toss_obs::metrics::counter("xmldb.xpath.parses").inc();
        if parsed.is_err() {
            toss_obs::metrics::counter("xmldb.xpath.parse_errors").inc();
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    fn sample_collection() -> Collection {
        let mut c = Collection::new("dblp", None);
        c.insert_xml(
            "<inproceedings key=\"1\"><author>Jeffrey D. Ullman</author>\
             <title>Principles of DB Systems</title><year>1988</year>\
             <booktitle>SIGMOD Conference</booktitle></inproceedings>",
        )
        .unwrap();
        c.insert_xml(
            "<inproceedings key=\"2\"><author>Serge Abiteboul</author>\
             <author>Victor Vianu</author>\
             <title>Queries and Computation on the Web</title><year>1997</year>\
             <booktitle>ICDT</booktitle></inproceedings>",
        )
        .unwrap();
        c.insert_xml(
            "<article><author>E. F. Codd</author>\
             <title>A Relational Model of Data</title><year>1970</year>\
             <journal>CACM</journal></article>",
        )
        .unwrap();
        c
    }

    fn eval(c: &Collection, q: &str) -> Vec<NodeRef> {
        XPath::parse(q).unwrap().eval_collection(c)
    }

    #[test]
    fn descendant_tag_query() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//author").len(), 4);
        assert_eq!(eval(&c, "//inproceedings").len(), 2);
        assert_eq!(eval(&c, "//nonexistent").len(), 0);
    }

    #[test]
    fn child_axis_from_root() {
        let c = sample_collection();
        // root elements ARE inproceedings/article, so /inproceedings matches roots
        assert_eq!(eval(&c, "/inproceedings").len(), 2);
        assert_eq!(eval(&c, "/inproceedings/author").len(), 3);
        assert_eq!(eval(&c, "/article/journal").len(), 1);
    }

    #[test]
    fn equality_predicate() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//inproceedings[author='Serge Abiteboul']").len(), 1);
        assert_eq!(eval(&c, "//inproceedings[author='Nobody']").len(), 0);
        assert_eq!(eval(&c, "//inproceedings[year='1988']").len(), 1);
    }

    #[test]
    fn contains_predicate() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//inproceedings[contains(author,'Ullman')]").len(), 1);
        assert_eq!(eval(&c, "//inproceedings[contains(title,'Web')]").len(), 1);
        // doc1 (Jeffrey) and doc2 (Serge); "E. F. Codd" has no lowercase e
        assert_eq!(eval(&c, "//*[contains(author,'e')]").len(), 2);
    }

    #[test]
    fn boolean_connectives() {
        let c = sample_collection();
        assert_eq!(
            eval(&c, "//inproceedings[author='Serge Abiteboul' and year='1997']").len(),
            1
        );
        assert_eq!(
            eval(
                &c,
                "//inproceedings[author='Jeffrey D. Ullman' or author='Serge Abiteboul']"
            )
            .len(),
            2
        );
        assert_eq!(eval(&c, "//inproceedings[not(year='1988')]").len(), 1);
    }

    #[test]
    fn attribute_predicate() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//inproceedings[@key='1']").len(), 1);
        assert_eq!(eval(&c, "//inproceedings[@key!='1']").len(), 1);
        assert_eq!(eval(&c, "//article[@key='1']").len(), 0);
    }

    #[test]
    fn text_predicate_and_existence() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//year[text()='1970']").len(), 1);
        assert_eq!(eval(&c, "//inproceedings[booktitle]").len(), 2);
        assert_eq!(eval(&c, "//inproceedings[journal]").len(), 0);
    }

    #[test]
    fn positional_predicate() {
        let c = sample_collection();
        // second author of the two-author paper
        let refs = eval(&c, "/inproceedings/author[2]");
        assert_eq!(refs.len(), 1);
    }

    #[test]
    fn union_of_paths() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//booktitle | //journal").len(), 3);
    }

    #[test]
    fn wildcard_step() {
        let c = sample_collection();
        // all children of roots: 4 + 5 + 4 across the three documents
        let n = eval(&c, "/*/*").len();
        assert_eq!(n, 13);
    }

    #[test]
    fn nested_relpath_predicate() {
        let c = sample_collection();
        assert_eq!(eval(&c, "//inproceedings[.//author='Victor Vianu']").len(), 1);
    }

    #[test]
    fn document_order_of_results() {
        let c = sample_collection();
        let refs = eval(&c, "//author");
        let mut sorted = refs.clone();
        sorted.sort();
        assert_eq!(refs, sorted);
    }

    #[test]
    fn descendant_in_middle_of_path() {
        let mut c = Collection::new("x", None);
        c.insert_xml("<a><b><c><d>1</d></c></b></a>").unwrap();
        assert_eq!(eval(&c, "/a//d").len(), 1);
        assert_eq!(eval(&c, "/a//c/d").len(), 1);
        assert_eq!(eval(&c, "/a/d").len(), 0);
    }
}
