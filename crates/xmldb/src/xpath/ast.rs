//! XPath abstract syntax.

use std::fmt;

/// A full XPath expression: a union of one or more absolute paths.
#[derive(Debug, Clone, PartialEq)]
pub struct XPath {
    /// The union branches (at least one).
    pub paths: Vec<Path>,
}

/// An absolute location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The steps, each carrying the axis that *precedes* it.
    pub steps: Vec<Step>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis connecting this step to the previous context.
    pub axis: Axis,
    /// The node test.
    pub test: NameTest,
    /// Zero or more predicates, applied in order.
    pub predicates: Vec<Expr>,
}

/// Axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — children of the context node (or root elements at the start).
    Child,
    /// `//` — descendant-or-self, then children: i.e. all descendants at
    /// the start of a path, per XPath's `/descendant-or-self::node()/`.
    Descendant,
}

/// Element-name test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// A specific tag name.
    Name(String),
    /// `*` — any element.
    Wildcard,
}

impl NameTest {
    /// Whether a tag satisfies the test.
    pub fn matches(&self, tag: &str) -> bool {
        match self {
            NameTest::Name(n) => n == tag,
            NameTest::Wildcard => true,
        }
    }
}

/// A predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `value = 'literal'`
    Eq(ValueExpr, String),
    /// `value != 'literal'`
    Ne(ValueExpr, String),
    /// `contains(value, 'literal')`
    Contains(ValueExpr, String),
    /// `starts-with(value, 'literal')`
    StartsWith(ValueExpr, String),
    /// `@name` with no comparison — attribute-existence test.
    AttrExists(String),
    /// Bare relative path — existence test.
    Exists(RelPath),
    /// `[n]` — 1-based position among the step's matches.
    Position(usize),
    /// `a and b`
    And(Box<Expr>, Box<Expr>),
    /// `a or b`
    Or(Box<Expr>, Box<Expr>),
    /// `not(e)`
    Not(Box<Expr>),
}

/// A value inside a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueExpr {
    /// `text()` — the context node's own string-value.
    Text,
    /// `@name` — an attribute of the context node.
    Attr(String),
    /// A relative path; the comparison holds if *some* node reached by the
    /// path has the compared string-value (XPath existential semantics).
    Rel(RelPath),
}

/// A relative path used inside predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPath {
    /// True for a `.//`-prefixed path (search all descendants), false for
    /// a plain child-first path.
    pub from_descendants: bool,
    /// Steps of the relative path.
    pub steps: Vec<Step>,
}

impl fmt::Display for XPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.paths.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "{}{s}", if s.axis == Axis::Child { "/" } else { "//" })?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.test {
            NameTest::Name(n) => f.write_str(n)?,
            NameTest::Wildcard => f.write_str("*")?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Eq(v, s) => write!(f, "{v}='{s}'"),
            Expr::Ne(v, s) => write!(f, "{v}!='{s}'"),
            Expr::Contains(v, s) => write!(f, "contains({v},'{s}')"),
            Expr::StartsWith(v, s) => write!(f, "starts-with({v},'{s}')"),
            Expr::AttrExists(a) => write!(f, "@{a}"),
            Expr::Exists(p) => write!(f, "{p}"),
            Expr::Position(n) => write!(f, "{n}"),
            Expr::And(a, b) => write!(f, "{a} and {b}"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(e) => write!(f, "not({e})"),
        }
    }
}

impl fmt::Display for ValueExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueExpr::Text => f.write_str("text()"),
            ValueExpr::Attr(a) => write!(f, "@{a}"),
            ValueExpr::Rel(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.from_descendants {
            f.write_str(".//")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(if s.axis == Axis::Child { "/" } else { "//" })?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nametest_matching() {
        assert!(NameTest::Name("a".into()).matches("a"));
        assert!(!NameTest::Name("a".into()).matches("b"));
        assert!(NameTest::Wildcard.matches("anything"));
    }

    #[test]
    fn display_round_trips_through_parser() {
        use crate::xpath::XPath;
        let cases = [
            "//inproceedings[author='X' and year='1999']",
            "/a//b[contains(c,'x')]",
            "//a[@k!='1']|//b[2]",
            "//a[.//b='v']",
            "//a[not(b='x')]",
            "//a[starts-with(b,'x') and @k]",
        ];
        for src in cases {
            let p1 = XPath::parse(src).unwrap();
            let rendered = p1.to_string();
            let p2 = XPath::parse(&rendered).unwrap();
            assert_eq!(p1, p2, "round-trip failed for {src} -> {rendered}");
        }
    }
}
