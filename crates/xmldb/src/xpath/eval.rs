//! XPath evaluation over trees and collections.
//!
//! Evaluation is node-set based. Results are returned in document order
//! (documents in insertion order; nodes in preorder within a document),
//! which is the order TAX's witness-tree semantics requires.
//!
//! The collection evaluator uses the tag index as a fast path for queries
//! whose first step is `//name`: instead of scanning every subtree it
//! starts from the index postings for `name`.

use super::ast::{Axis, Expr, NameTest, Path, RelPath, Step, ValueExpr, XPath};
use crate::collection::{Collection, DocumentId};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use toss_pool::{partition_ranges, WorkerPool};
use toss_tree::{NodeId, Tree};

/// A query result: one node in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Document containing the node.
    pub doc: DocumentId,
    /// The node within the document's tree.
    pub node: NodeId,
}

/// A cooperative per-document scan budget.
///
/// The evaluator calls [`ScanBudget::before_document`] before visiting
/// each document. This keeps the DB layer decoupled from any particular
/// governance policy: `toss-core`'s query governor implements this trait
/// to enforce deadlines, cancellation and document-scan limits, and the
/// evaluator only needs to know *continue / truncate / abort*.
///
/// # Monotonicity
///
/// Budgets must be **monotone**: once `before_document(n)` (or
/// [`preflight`](ScanBudget::preflight)`(n)`) returns `Truncate` or
/// `Abort`, every later call with the same or a larger `docs_scanned`
/// must also stop. Document caps, cancellation flags and deadlines all
/// satisfy this naturally (counts only grow, time only advances). The
/// parallel evaluator stays *correct* for a non-monotone budget — it
/// re-evaluates any document the budget admits after all — but its
/// speculation-skipping becomes pessimal.
pub trait ScanBudget {
    /// Decide whether the next document may be visited. `docs_scanned`
    /// counts documents already visited by this evaluation.
    fn before_document(&self, docs_scanned: usize) -> ScanControl;

    /// Non-charging probe: *would* a visit be allowed if `docs_scanned`
    /// documents had already been admitted? The parallel evaluator asks
    /// this before speculatively evaluating a partition whose documents
    /// have not reached the in-order commit frontier yet, so a tripped
    /// budget stops far-ahead workers without being charged for
    /// documents that were never admitted. Implementations must not
    /// count this call against any limit. The default speculates freely.
    fn preflight(&self, _docs_scanned: usize) -> ScanControl {
        ScanControl::Continue
    }
}

/// The decision a [`ScanBudget`] returns for the next document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanControl {
    /// Visit the document.
    Continue,
    /// Stop scanning but keep the matches found so far (a soft limit:
    /// the caller turns the partial result into a degraded answer).
    Truncate,
    /// Stop scanning and discard nothing — the caller decides how to
    /// fail (cancellation, deadline, or a hard limit).
    Abort,
}

/// How a budgeted collection evaluation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStatus {
    /// Every candidate document was visited.
    Complete {
        /// Documents visited.
        docs_scanned: usize,
    },
    /// The budget truncated the scan; the matches are a prefix of the
    /// full answer.
    Truncated {
        /// Documents visited before the budget stopped the scan.
        docs_scanned: usize,
        /// Documents a full evaluation would have visited.
        docs_total: usize,
    },
    /// The budget aborted the scan; the matches must be discarded.
    Aborted {
        /// Documents visited before the abort.
        docs_scanned: usize,
    },
}

/// The always-continue budget backing [`XPath::eval_collection`].
struct NoBudget;

impl ScanBudget for NoBudget {
    fn before_document(&self, _docs_scanned: usize) -> ScanControl {
        ScanControl::Continue
    }
}

/// Mutable state threaded through a budgeted evaluation.
struct ScanState<'a> {
    budget: &'a dyn ScanBudget,
    scanned: usize,
    /// Candidate documents across all union branches (including the
    /// ones the budget prevented from being visited).
    total: usize,
    stopped: Option<ScanControl>,
}

impl ScanState<'_> {
    /// Charge one document; returns false when scanning must stop.
    fn admit_document(&mut self) -> bool {
        match self.budget.before_document(self.scanned) {
            ScanControl::Continue => {
                self.scanned += 1;
                true
            }
            control => {
                self.stopped = Some(control);
                false
            }
        }
    }
}

/// The W3C-style string-value of a node: its own text content
/// concatenated with the content of all descendants in preorder.
/// Exposed as a helper; **comparisons in this engine use
/// [`own_text`]** — see the deviation note below.
pub fn string_value(tree: &Tree, node: NodeId) -> String {
    let mut out = String::new();
    for n in tree.subtree(node) {
        if let Ok(d) = tree.data(n) {
            if let Some(c) = &d.content {
                out.push_str(&c.render());
            }
        }
    }
    out
}

/// The element's *own* text content ("" when absent).
///
/// Deviation from W3C XPath, by design: this store keys text content to
/// its owning element (the TAX data model's `o.content`), and the TOSS
/// rewriter's XPath must select a superset of what the TAX condition
/// `content = v` matches. Concatenated string-values would *reject*
/// elements whose descendants also carry text, losing true matches; the
/// own-content semantics makes `[a='v']`, `text()`, `contains(...)` agree
/// exactly with the data model.
pub fn own_text(tree: &Tree, node: NodeId) -> String {
    tree.data(node)
        .ok()
        .and_then(|d| d.content.as_ref().map(|c| c.render()))
        .unwrap_or_default()
}

impl XPath {
    /// Evaluate against a single tree; returns matching nodes in preorder.
    pub fn eval_tree(&self, tree: &Tree) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for path in &self.paths {
            out.extend(eval_path_tree(path, tree));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Evaluate against every document of a collection; results in
    /// document order.
    pub fn eval_collection(&self, coll: &Collection) -> Vec<NodeRef> {
        self.eval_collection_budgeted(coll, &NoBudget).0
    }

    /// Evaluate under a cooperative [`ScanBudget`]: the budget is asked
    /// before each document visit, so a deadline, cancellation or
    /// document-scan cap stops the scan promptly. Returns the matches
    /// found plus a [`ScanStatus`] saying whether the scan completed,
    /// was truncated (matches are a valid prefix) or aborted (the
    /// caller should discard the matches and fail).
    pub fn eval_collection_budgeted(
        &self,
        coll: &Collection,
        budget: &dyn ScanBudget,
    ) -> (Vec<NodeRef>, ScanStatus) {
        let span = toss_obs::span("xmldb.xpath.eval");
        let mut out: Vec<NodeRef> = Vec::new();
        let mut state = ScanState {
            budget,
            scanned: 0,
            total: 0,
            stopped: None,
        };
        for path in &self.paths {
            eval_path_collection(path, coll, &mut out, &mut state);
            if state.stopped.is_some() {
                break;
            }
        }
        finish_eval(span, out, state.scanned, state.total, state.stopped)
    }

    /// Partitioned parallel evaluation: result- and order-identical to
    /// [`eval_collection_budgeted`](XPath::eval_collection_budgeted), but
    /// candidate documents are split into contiguous chunks evaluated on
    /// `pool`'s workers.
    ///
    /// The budget still sees one document at a time, in document order:
    /// chunks are evaluated *speculatively* and their per-document
    /// results are committed through an in-order frontier that charges
    /// [`ScanBudget::before_document`] exactly as the sequential scan
    /// would, so the admitted document set — and therefore the matches
    /// and the [`ScanStatus`] — equals the sequential run's for any
    /// deterministic budget. A budget trip raises a shared stop flag
    /// that far-ahead workers poll between documents, and
    /// [`ScanBudget::preflight`] lets workers skip chunks that lie
    /// entirely past a tripped limit without charging for them.
    ///
    /// With a single-worker pool this delegates to the sequential
    /// evaluator: no threads, no speculation, no overhead.
    pub fn eval_collection_parallel(
        &self,
        coll: &Collection,
        budget: &(dyn ScanBudget + Sync),
        pool: &WorkerPool,
    ) -> (Vec<NodeRef>, ScanStatus) {
        if pool.is_sequential() {
            return self.eval_collection_budgeted(coll, budget);
        }
        let span = toss_obs::span("xmldb.xpath.eval");
        let (candidates, path_counts) = collect_candidates(self, coll, None);
        let (out, scanned, stopped, stop_ord) =
            run_candidates_parallel(coll, &candidates, budget, pool);
        let total = total_for_stop(&path_counts, candidates.len(), stop_ord);
        finish_eval(span, out, scanned, total, stopped)
    }

    /// Evaluate against a pre-selected candidate document set — the
    /// index-probe fast path. `docs` must be in document order (as
    /// returned by the content index's merged probes); documents outside
    /// the set are never visited *or charged*, while every document in
    /// the set is charged through `budget` exactly like a scan visit, so
    /// `docs_scanned` accounting agrees with the scan path.
    pub fn eval_collection_docs_budgeted(
        &self,
        coll: &Collection,
        docs: &[DocumentId],
        budget: &(dyn ScanBudget + Sync),
        pool: &WorkerPool,
    ) -> (Vec<NodeRef>, ScanStatus) {
        let span = toss_obs::span("xmldb.xpath.eval");
        let filter: HashSet<DocumentId> = docs.iter().copied().collect();
        let (candidates, path_counts) = collect_candidates(self, coll, Some(&filter));
        let (out, scanned, stopped, stop_ord) = if pool.is_sequential() {
            run_candidates_sequential(coll, &candidates, budget)
        } else {
            run_candidates_parallel(coll, &candidates, budget, pool)
        };
        let total = total_for_stop(&path_counts, candidates.len(), stop_ord);
        finish_eval(span, out, scanned, total, stopped)
    }

    /// Number of budget-charged candidate visits a collection evaluation
    /// would make: one per `(union branch, document)` pair, tag-index
    /// seeded where the branch starts with `//name`, restricted to
    /// `docs` when given (the index-probe path). This is the unit
    /// [`planned_partitions`] partitions, exposed so the planner can
    /// report exact partition counts without running the scan.
    pub fn count_scan_candidates(
        &self,
        coll: &Collection,
        docs: Option<&[DocumentId]>,
    ) -> usize {
        let filter: Option<HashSet<DocumentId>> =
            docs.map(|d| d.iter().copied().collect());
        collect_candidates(self, coll, filter.as_ref()).0.len()
    }
}

/// Shared epilogue for every collection-evaluation strategy (sequential
/// scan, partitioned parallel scan, index-probe doc filter): sort and
/// deduplicate matches, derive the [`ScanStatus`], and emit the
/// `xmldb.xpath.*` span records and metrics identically — so
/// `docs_scanned` accounting cannot drift between strategies.
fn finish_eval(
    span: toss_obs::SpanGuard,
    mut out: Vec<NodeRef>,
    docs_scanned: usize,
    docs_total: usize,
    stopped: Option<ScanControl>,
) -> (Vec<NodeRef>, ScanStatus) {
    let status = match stopped {
        None => ScanStatus::Complete { docs_scanned },
        Some(ScanControl::Truncate) => {
            toss_obs::metrics::counter("xmldb.xpath.scans_truncated").inc();
            ScanStatus::Truncated {
                docs_scanned,
                docs_total: docs_total.max(docs_scanned),
            }
        }
        Some(_) => {
            toss_obs::metrics::counter("xmldb.xpath.scans_aborted").inc();
            ScanStatus::Aborted { docs_scanned }
        }
    };
    out.sort();
    out.dedup();
    if span.is_recording() {
        let docs_matched = {
            let mut docs: Vec<DocumentId> = out.iter().map(|r| r.doc).collect();
            docs.dedup(); // `out` is sorted by (doc, node)
            docs.len()
        };
        span.record("docs_scanned", docs_scanned);
        span.record("docs_matched", docs_matched);
        span.record("nodes_matched", out.len());
    }
    toss_obs::metrics::counter("xmldb.xpath.evals").inc();
    toss_obs::metrics::counter("xmldb.xpath.docs_scanned").add(docs_scanned as u64);
    toss_obs::metrics::counter("xmldb.xpath.nodes_matched").add(out.len() as u64);
    toss_obs::metrics::histogram("xmldb.xpath.eval_ns").observe_duration(span.finish());
    (out, status)
}

/// One budget-charged unit of work: evaluate one union branch against
/// one document. The partitioned evaluator materializes the full
/// candidate list up front — in exactly the order the sequential scan
/// visits documents (path-major, documents in insertion order) — so
/// chunking it contiguously preserves the admission order.
struct Candidate<'a> {
    path: &'a Path,
    /// Index of `path` within the union, for `docs_total` bookkeeping.
    path_ord: usize,
    doc: DocumentId,
    /// `Some` when the tag index seeded this visit (first step
    /// `//name`): the posting nodes, in preorder.
    seeds: Option<Vec<NodeId>>,
}

/// Enumerate candidates for every union branch, in sequential visit
/// order. With a `filter`, only documents in the set become candidates
/// (the index-probe fast path). Returns the candidates plus the
/// per-branch candidate counts (for sequential-compatible `docs_total`
/// reporting on truncation).
fn collect_candidates<'a>(
    xpath: &'a XPath,
    coll: &Collection,
    filter: Option<&HashSet<DocumentId>>,
) -> (Vec<Candidate<'a>>, Vec<usize>) {
    let mut cands: Vec<Candidate<'a>> = Vec::new();
    let mut counts = Vec::with_capacity(xpath.paths.len());
    for (path_ord, path) in xpath.paths.iter().enumerate() {
        let before = cands.len();
        let mut indexed = false;
        if let Some(first) = path.steps.first() {
            if first.axis == Axis::Descendant {
                if let NameTest::Name(name) = &first.test {
                    indexed = true;
                    for p in coll.index().by_tag(name) {
                        if filter.is_some_and(|f| !f.contains(&p.doc)) {
                            continue;
                        }
                        match cands.last_mut() {
                            Some(c) if c.path_ord == path_ord && c.doc == p.doc => {
                                c.seeds.as_mut().expect("indexed candidates have seeds").push(p.node);
                            }
                            _ => cands.push(Candidate {
                                path,
                                path_ord,
                                doc: p.doc,
                                seeds: Some(vec![p.node]),
                            }),
                        }
                    }
                }
            }
        }
        if !indexed {
            for stored in coll.documents() {
                if filter.is_some_and(|f| !f.contains(&stored.id)) {
                    continue;
                }
                cands.push(Candidate {
                    path,
                    path_ord,
                    doc: stored.id,
                    seeds: None,
                });
            }
        }
        counts.push(cands.len() - before);
    }
    (cands, counts)
}

/// Evaluate one candidate — identical work to the sequential scan's
/// per-document body, pure over `&Collection` so it can run on any
/// worker (or run twice, if a speculative result was discarded).
fn eval_candidate(coll: &Collection, cand: &Candidate<'_>) -> Vec<NodeRef> {
    let doc = cand.doc;
    match &cand.seeds {
        Some(seeds) => {
            let Ok(stored) = coll.get(doc) else {
                return Vec::new();
            };
            let tree = &stored.tree;
            let first = &cand.path.steps[0];
            let mut current = apply_predicates(tree, seeds.clone(), &first.predicates);
            for step in &cand.path.steps[1..] {
                current = advance_step(tree, &current, step);
            }
            current
                .into_iter()
                .map(|node| NodeRef { doc, node })
                .collect()
        }
        None => {
            let Ok(stored) = coll.get(doc) else {
                return Vec::new();
            };
            eval_path_tree(cand.path, &stored.tree)
                .into_iter()
                .map(|node| NodeRef { doc, node })
                .collect()
        }
    }
}

/// Sequential-visit-order `docs_total`: the sequential evaluator counts
/// a branch's candidates into the total when it *starts* the branch, so
/// a stop inside branch `p` reports the candidates of branches `0..=p`.
fn total_for_stop(path_counts: &[usize], all: usize, stop_ord: Option<usize>) -> usize {
    match stop_ord {
        None => all,
        Some(p) => path_counts[..=p].iter().sum(),
    }
}

/// Drive the candidate list exactly like the sequential scan:
/// admit-then-evaluate, one document at a time. Used for doc-filtered
/// evaluation on a single-worker pool.
fn run_candidates_sequential(
    coll: &Collection,
    candidates: &[Candidate<'_>],
    budget: &dyn ScanBudget,
) -> (Vec<NodeRef>, usize, Option<ScanControl>, Option<usize>) {
    let mut out = Vec::new();
    let mut scanned = 0usize;
    for cand in candidates {
        match budget.before_document(scanned) {
            ScanControl::Continue => {
                scanned += 1;
                out.extend(eval_candidate(coll, cand));
            }
            control => return (out, scanned, Some(control), Some(cand.path_ord)),
        }
    }
    (out, scanned, None, None)
}

/// Aim for this many chunks per worker, so a fast worker steals the
/// slack of a slow one instead of idling at a barrier.
const CHUNKS_PER_WORKER: usize = 4;
/// Don't split fewer documents than this across threads — the spawn
/// cost would dominate.
const MIN_CHUNK_DOCS: usize = 8;

/// How many contiguous partitions a parallel evaluation over
/// `candidates` candidate visits would use on a pool of `workers`
/// workers. Exposed so the planner / EXPLAIN can report the partition
/// count without running the scan.
pub fn planned_partitions(candidates: usize, workers: usize) -> usize {
    if workers <= 1 || candidates == 0 {
        return 1;
    }
    partition_ranges(candidates, workers * CHUNKS_PER_WORKER, MIN_CHUNK_DOCS)
        .len()
        .max(1)
}

/// The in-order commit frontier shared by all workers of one parallel
/// evaluation.
struct Frontier {
    /// Next chunk index allowed to commit.
    next: usize,
    /// Documents admitted by the budget so far (the sequential
    /// `docs_scanned`).
    scanned: usize,
    stopped: Option<ScanControl>,
    /// `path_ord` of the candidate on which the budget tripped.
    stop_ord: Option<usize>,
    /// Finished chunks waiting for their turn: chunk index →
    /// per-candidate speculative results (`None` = skipped, re-evaluate
    /// on commit if the budget admits the document after all).
    pending: BTreeMap<usize, Vec<Option<Vec<NodeRef>>>>,
    /// Committed matches, in candidate order.
    out: Vec<NodeRef>,
    /// Speculative evaluations whose result was committed (the rest is
    /// waste, reported via `toss.pool.speculative_waste`).
    used: usize,
}

/// Evaluate candidate chunks on the pool, committing results through an
/// in-order frontier that consults the budget exactly like the
/// sequential scan. Returns `(matches, scanned, stopped, stop_ord)`.
fn run_candidates_parallel(
    coll: &Collection,
    candidates: &[Candidate<'_>],
    budget: &(dyn ScanBudget + Sync),
    pool: &WorkerPool,
) -> (Vec<NodeRef>, usize, Option<ScanControl>, Option<usize>) {
    let n = candidates.len();
    let ranges = partition_ranges(n, pool.workers() * CHUNKS_PER_WORKER, MIN_CHUNK_DOCS);
    if ranges.len() <= 1 {
        return run_candidates_sequential(coll, candidates, budget);
    }
    let stop = AtomicBool::new(false);
    let frontier = Mutex::new(Frontier {
        next: 0,
        scanned: 0,
        stopped: None,
        stop_ord: None,
        pending: BTreeMap::new(),
        out: Vec::new(),
        used: 0,
    });
    let evaluated_total = std::sync::atomic::AtomicUsize::new(0);

    let tasks: Vec<_> = ranges
        .iter()
        .enumerate()
        .map(|(chunk, &(start, end))| {
            let (stop, frontier, ranges, evaluated_total) =
                (&stop, &frontier, &ranges, &evaluated_total);
            move || {
                let pspan = toss_obs::span("xmldb.xpath.partition");
                let mut results: Vec<Option<Vec<NodeRef>>> = Vec::with_capacity(end - start);
                let mut evaluated = 0usize;
                // `scanned` before this chunk can only be `start` (every
                // earlier candidate admitted) or smaller with the budget
                // already tripped — so for a monotone budget a failing
                // preflight at `start` proves nothing here will commit.
                let speculate = !stop.load(Ordering::Acquire)
                    && budget.preflight(start) == ScanControl::Continue;
                for candidate in &candidates[start..end] {
                    if speculate && !stop.load(Ordering::Acquire) {
                        results.push(Some(eval_candidate(coll, candidate)));
                        evaluated += 1;
                    } else {
                        results.push(None);
                    }
                }
                evaluated_total.fetch_add(evaluated, Ordering::Relaxed);
                if pspan.is_recording() {
                    pspan.record("chunk", chunk);
                    pspan.record("candidates", end - start);
                    pspan.record("evaluated", evaluated);
                }
                drop(pspan);

                // Commit every chunk that has reached the frontier, in
                // chunk order; admission happens here, single-file.
                let mut fr = frontier.lock().unwrap_or_else(|e| e.into_inner());
                fr.pending.insert(chunk, results);
                loop {
                    let turn = fr.next;
                    let Some(chunk_results) = fr.pending.remove(&turn) else {
                        break;
                    };
                    let (c_start, c_end) = ranges[turn];
                    fr.next = turn + 1;
                    if fr.stopped.is_some() {
                        continue; // drain without committing
                    }
                    for (idx, spec) in (c_start..c_end).zip(chunk_results) {
                        match budget.before_document(fr.scanned) {
                            ScanControl::Continue => {
                                fr.scanned += 1;
                                match spec {
                                    Some(matches) => {
                                        fr.used += 1;
                                        fr.out.extend(matches);
                                    }
                                    // Skipped speculatively but admitted
                                    // after all (non-monotone budget):
                                    // evaluate now, on the commit path.
                                    None => {
                                        fr.out.extend(eval_candidate(coll, &candidates[idx]));
                                    }
                                }
                            }
                            control => {
                                fr.stopped = Some(control);
                                fr.stop_ord = Some(candidates[idx].path_ord);
                                stop.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                }
            }
        })
        .collect();
    pool.run(tasks);

    let fr = frontier.into_inner().unwrap_or_else(|e| e.into_inner());
    let evaluated = evaluated_total.load(Ordering::Relaxed);
    toss_obs::metrics::counter("toss.pool.runs").inc();
    toss_obs::metrics::counter("toss.pool.partitions").add(ranges.len() as u64);
    toss_obs::metrics::counter("toss.pool.speculative_waste")
        .add(evaluated.saturating_sub(fr.used) as u64);
    (fr.out, fr.scanned, fr.stopped, fr.stop_ord)
}

fn eval_path_tree(path: &Path, tree: &Tree) -> Vec<NodeId> {
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    let Some((first, rest)) = path.steps.split_first() else {
        return Vec::new();
    };
    // Initial context: the (virtual) document node. `/a` tests root
    // elements; `//a` tests every node.
    let mut current: Vec<NodeId> = match first.axis {
        Axis::Child => {
            if first.test.matches(&tree.data(root).map(|d| d.tag.clone()).unwrap_or_default()) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => tree
            .preorder()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| first.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect(),
    };
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Advance one step from a context node-set.
fn advance_step(tree: &Tree, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut matched: Vec<NodeId> = Vec::new();
    for &ctx in context {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child => tree.children(ctx).collect(),
            Axis::Descendant => tree.descendants(ctx).collect(),
        };
        let mut local: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| step.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect();
        // Positional predicates are per-context in XPath, so filter here.
        local = apply_predicates(tree, local, &step.predicates);
        matched.extend(local);
    }
    matched.sort();
    matched.dedup();
    matched
}

fn apply_predicates(tree: &Tree, nodes: Vec<NodeId>, preds: &[Expr]) -> Vec<NodeId> {
    let mut current = nodes;
    for p in preds {
        let snapshot = current.clone();
        current = snapshot
            .iter()
            .enumerate()
            .filter(|&(i, &n)| eval_expr(tree, n, i + 1, p))
            .map(|(_, &n)| n)
            .collect();
    }
    current
}

fn eval_expr(tree: &Tree, node: NodeId, position: usize, expr: &Expr) -> bool {
    match expr {
        Expr::Position(k) => position == *k,
        Expr::And(a, b) => {
            eval_expr(tree, node, position, a) && eval_expr(tree, node, position, b)
        }
        Expr::Or(a, b) => {
            eval_expr(tree, node, position, a) || eval_expr(tree, node, position, b)
        }
        Expr::Not(e) => !eval_expr(tree, node, position, e),
        Expr::Exists(p) => !eval_rel_path(tree, node, p).is_empty(),
        Expr::Eq(v, lit) => value_matches(tree, node, v, |s| s == lit),
        Expr::Ne(v, lit) => value_matches(tree, node, v, |s| s != lit),
        Expr::Contains(v, lit) => value_matches(tree, node, v, |s| s.contains(lit.as_str())),
        Expr::StartsWith(v, lit) => {
            value_matches(tree, node, v, |s| s.starts_with(lit.as_str()))
        }
        Expr::AttrExists(name) => tree
            .data(node)
            .map(|d| d.attr_value(name).is_some())
            .unwrap_or(false),
    }
}

/// XPath existential comparison: for relative-path values the predicate
/// holds if *some* reached node's string-value satisfies `f`; for `text()`
/// and attributes there is at most one value.
fn value_matches(tree: &Tree, node: NodeId, v: &ValueExpr, f: impl Fn(&str) -> bool) -> bool {
    match v {
        ValueExpr::Text => f(&own_text(tree, node)),
        ValueExpr::Attr(name) => tree
            .data(node)
            .ok()
            .and_then(|d| d.attr_value(name).map(&f))
            .unwrap_or(false),
        ValueExpr::Rel(p) => eval_rel_path(tree, node, p)
            .into_iter()
            .any(|n| f(&own_text(tree, n))),
    }
}

fn eval_rel_path(tree: &Tree, node: NodeId, p: &RelPath) -> Vec<NodeId> {
    let Some((first, rest)) = p.steps.split_first() else {
        return Vec::new();
    };
    let base: Vec<NodeId> = if p.from_descendants {
        tree.descendants(node).collect()
    } else {
        tree.children(node).collect()
    };
    let mut current: Vec<NodeId> = base
        .into_iter()
        .filter(|&n| {
            tree.data(n)
                .map(|d| first.test.matches(&d.tag))
                .unwrap_or(false)
        })
        .collect();
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Evaluate one union branch, charging each visited document to the
/// scan state (the tag-index fast path touches only documents with a
/// posting; the general path scans the whole collection). Stops early
/// when the budget truncates or aborts the scan.
fn eval_path_collection(
    path: &Path,
    coll: &Collection,
    out: &mut Vec<NodeRef>,
    state: &mut ScanState<'_>,
) {
    // Fast path: `//name...` — seed from the tag index.
    if let Some(first) = path.steps.first() {
        if first.axis == Axis::Descendant {
            if let NameTest::Name(name) = &first.test {
                let postings = coll.index().by_tag(name);
                // group postings by document
                let mut by_doc: Vec<(DocumentId, Vec<NodeId>)> = Vec::new();
                for p in postings {
                    match by_doc.last_mut() {
                        Some((d, v)) if *d == p.doc => v.push(p.node),
                        _ => by_doc.push((p.doc, vec![p.node])),
                    }
                }
                state.total += by_doc.len();
                for (doc, seeds) in by_doc {
                    if !state.admit_document() {
                        return;
                    }
                    let Ok(stored) = coll.get(doc) else { continue };
                    let tree = &stored.tree;
                    let mut current = apply_predicates(tree, seeds, &first.predicates);
                    for step in &path.steps[1..] {
                        current = advance_step(tree, &current, step);
                    }
                    out.extend(current.into_iter().map(|node| NodeRef { doc, node }));
                }
                return;
            }
        }
    }
    // General path: evaluate per document.
    state.total += coll.documents().len();
    for stored in coll.documents() {
        if !state.admit_document() {
            return;
        }
        for node in eval_path_tree(path, &stored.tree) {
            out.push(NodeRef {
                doc: stored.id,
                node,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn tree() -> Tree {
        parse_document(
            "<r><a k=\"1\"><b>x</b><b>y</b></a><a><b>z</b><c><b>deep</b></c></a></r>",
        )
        .unwrap()
    }

    fn q(t: &Tree, s: &str) -> Vec<NodeId> {
        XPath::parse(s).unwrap().eval_tree(t)
    }

    #[test]
    fn string_value_helper_concatenates_but_comparisons_use_own_text() {
        let t = tree();
        let root = t.root().unwrap();
        assert_eq!(string_value(&t, root), "xyzdeep");
        let a2 = t.children(root).nth(1).unwrap();
        assert_eq!(string_value(&t, a2), "zdeep");
        assert_eq!(own_text(&t, a2), "");
        // an element with text AND content-bearing children still matches
        // its own text exactly (the rewriter-soundness requirement)
        let m = crate::parser::parse_document("<r><a>ab<b>extra</b></a></r>").unwrap();
        assert_eq!(q(&m, "//r[.//a='ab']").len(), 1);
        assert_eq!(q(&m, "//a[text()='ab']").len(), 1);
    }

    #[test]
    fn tree_eval_child_and_descendant() {
        let t = tree();
        assert_eq!(q(&t, "/r/a").len(), 2);
        assert_eq!(q(&t, "/r/a/b").len(), 3);
        assert_eq!(q(&t, "//b").len(), 4);
        assert_eq!(q(&t, "/r//b").len(), 4);
    }

    #[test]
    fn positional_is_per_context() {
        let t = tree();
        // first b under each a: x and z
        let firsts = q(&t, "/r/a/b[1]");
        assert_eq!(firsts.len(), 2);
        let seconds = q(&t, "/r/a/b[2]");
        assert_eq!(seconds.len(), 1);
    }

    #[test]
    fn predicates_on_first_step() {
        let t = tree();
        assert_eq!(q(&t, "//a[@k='1']").len(), 1);
        assert_eq!(q(&t, "//a[c]").len(), 1);
        assert_eq!(q(&t, "//a[b='z']").len(), 1);
        // rel-path equality is existential over children only
        assert_eq!(q(&t, "//a[b='deep']").len(), 0);
        assert_eq!(q(&t, "//a[.//b='deep']").len(), 1);
    }

    #[test]
    fn duplicate_elimination_across_union() {
        let t = tree();
        let n = q(&t, "//b | //b");
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = Tree::new();
        assert_eq!(q(&t, "//a").len(), 0);
    }

    struct CapBudget {
        cap: usize,
        control: ScanControl,
    }

    impl ScanBudget for CapBudget {
        fn before_document(&self, docs_scanned: usize) -> ScanControl {
            if docs_scanned < self.cap {
                ScanControl::Continue
            } else {
                self.control
            }
        }
        fn preflight(&self, docs_scanned: usize) -> ScanControl {
            self.before_document(docs_scanned)
        }
    }

    fn budget_collection(n: usize) -> crate::collection::Collection {
        let mut c = crate::collection::Collection::new("x", None);
        for i in 0..n {
            c.insert_xml(&format!("<r><b>{i}</b></r>")).unwrap();
        }
        c
    }

    #[test]
    fn budgeted_scan_truncates_with_prefix() {
        let c = budget_collection(10);
        let xp = XPath::parse("//b").unwrap();
        let (full, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 100,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(status, ScanStatus::Complete { docs_scanned: 10 });
        assert_eq!(full.len(), 10);

        let (partial, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 4,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(
            status,
            ScanStatus::Truncated {
                docs_scanned: 4,
                docs_total: 10
            }
        );
        assert_eq!(partial, full[..4].to_vec());
    }

    #[test]
    fn budgeted_scan_aborts() {
        let c = budget_collection(5);
        let xp = XPath::parse("//b").unwrap();
        let (_, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 2,
                control: ScanControl::Abort,
            },
        );
        assert_eq!(status, ScanStatus::Aborted { docs_scanned: 2 });
        // zero-budget: aborted before any document
        let (hits, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 0,
                control: ScanControl::Abort,
            },
        );
        assert!(hits.is_empty());
        assert_eq!(status, ScanStatus::Aborted { docs_scanned: 0 });
    }

    #[test]
    fn budgeted_scan_covers_general_path_too() {
        let c = budget_collection(6);
        // wildcard first step forces the general (non-indexed) path
        let xp = XPath::parse("//*").unwrap();
        let (_, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 3,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(
            status,
            ScanStatus::Truncated {
                docs_scanned: 3,
                docs_total: 6
            }
        );
    }

    /// A budget that only stops on `before_document` — its `preflight`
    /// always continues (the trait default), so speculative skipping
    /// gets no help and the commit path must stay correct on its own.
    struct BlindCapBudget(usize);

    impl ScanBudget for BlindCapBudget {
        fn before_document(&self, docs_scanned: usize) -> ScanControl {
            if docs_scanned < self.0 {
                ScanControl::Continue
            } else {
                ScanControl::Truncate
            }
        }
    }

    /// Mixed-shape collection: docs where `//b` is index-seeded, docs
    /// without `b` at all, duplicate content for dedup pressure.
    fn mixed_collection(n: usize) -> crate::collection::Collection {
        let mut c = crate::collection::Collection::new("x", None);
        for i in 0..n {
            match i % 4 {
                0 => c.insert_xml(&format!("<r><b>{}</b><b>dup</b></r>", i % 5)),
                1 => c.insert_xml("<r><a>no-b-here</a></r>"),
                2 => c.insert_xml(&format!("<r><a><b>{}</b></a><c><b>deep</b></c></r>", i % 5)),
                _ => c.insert_xml("<q><b>dup</b></q>"),
            }
            .unwrap();
        }
        c
    }

    #[test]
    fn parallel_eval_is_identical_to_sequential() {
        let c = mixed_collection(57);
        for query in ["//b", "//b[text()='dup'] | //a", "//*[b]", "/r//b | //q"] {
            let xp = XPath::parse(query).unwrap();
            let (seq, seq_status) = xp.eval_collection_budgeted(&c, &NoBudget);
            for threads in [1usize, 2, 7] {
                let pool = WorkerPool::new(threads);
                let (par, par_status) = xp.eval_collection_parallel(&c, &NoBudget, &pool);
                assert_eq!(par, seq, "{query} @ {threads} threads");
                assert_eq!(par_status, seq_status, "{query} @ {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_eval_matches_sequential_under_truncation() {
        let c = mixed_collection(64);
        let xp = XPath::parse("//b | //a").unwrap();
        for cap in [0usize, 1, 5, 30, 1000] {
            let mk = || CapBudget {
                cap,
                control: ScanControl::Truncate,
            };
            let (seq, seq_status) = xp.eval_collection_budgeted(&c, &mk());
            for threads in [2usize, 7] {
                let pool = WorkerPool::new(threads);
                let (par, par_status) = xp.eval_collection_parallel(&c, &mk(), &pool);
                assert_eq!(par, seq, "cap {cap} @ {threads} threads");
                assert_eq!(par_status, seq_status, "cap {cap} @ {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_eval_matches_sequential_under_abort() {
        let c = mixed_collection(40);
        let xp = XPath::parse("//b").unwrap();
        for cap in [0usize, 3, 17] {
            let mk = || CapBudget {
                cap,
                control: ScanControl::Abort,
            };
            let (_, seq_status) = xp.eval_collection_budgeted(&c, &mk());
            let pool = WorkerPool::new(4);
            let (_, par_status) = xp.eval_collection_parallel(&c, &mk(), &pool);
            assert_eq!(par_status, seq_status, "cap {cap}");
        }
    }

    #[test]
    fn parallel_commit_is_exact_without_preflight_help() {
        // A budget whose preflight never trips exercises the path where
        // workers speculate past the stop point and the in-order commit
        // alone must reproduce the sequential prefix.
        let c = mixed_collection(64);
        let xp = XPath::parse("//b | //a").unwrap();
        for cap in [0usize, 7, 33] {
            let (seq, seq_status) = xp.eval_collection_budgeted(&c, &BlindCapBudget(cap));
            let pool = WorkerPool::new(7);
            let (par, par_status) =
                xp.eval_collection_parallel(&c, &BlindCapBudget(cap), &pool);
            assert_eq!(par, seq, "cap {cap}");
            assert_eq!(par_status, seq_status, "cap {cap}");
        }
    }

    #[test]
    fn doc_filtered_eval_visits_and_charges_only_the_filter() {
        let c = budget_collection(10);
        let xp = XPath::parse("//b").unwrap();
        let docs: Vec<DocumentId> = c
            .documents()
            .iter()
            .map(|d| d.id)
            .filter(|d| d.0 % 2 == 0)
            .collect();
        for threads in [1usize, 4] {
            let pool = WorkerPool::new(threads);
            let (hits, status) =
                xp.eval_collection_docs_budgeted(&c, &docs, &NoBudget, &pool);
            assert_eq!(hits.len(), 5, "@ {threads} threads");
            assert!(hits.iter().all(|r| r.doc.0 % 2 == 0));
            // the filtered docs are charged like scan visits
            assert_eq!(status, ScanStatus::Complete { docs_scanned: 5 });
        }
    }

    #[test]
    fn doc_filtered_eval_respects_budget() {
        let c = budget_collection(10);
        let xp = XPath::parse("//b").unwrap();
        let docs: Vec<DocumentId> = c.documents().iter().map(|d| d.id).collect();
        let pool = WorkerPool::new(1);
        let (hits, status) = xp.eval_collection_docs_budgeted(
            &c,
            &docs,
            &CapBudget {
                cap: 3,
                control: ScanControl::Truncate,
            },
            &pool,
        );
        assert_eq!(hits.len(), 3);
        assert_eq!(
            status,
            ScanStatus::Truncated {
                docs_scanned: 3,
                docs_total: 10
            }
        );
    }

    #[test]
    fn collection_index_fast_path_equals_scan() {
        let mut c = crate::collection::Collection::new("x", None);
        c.insert_xml("<r><a><b>1</b></a></r>").unwrap();
        c.insert_xml("<r><b>2</b></r>").unwrap();
        let fast = XPath::parse("//b").unwrap().eval_collection(&c);
        // wildcard first step forces the scan path
        let scan = XPath::parse("//*")
            .unwrap()
            .eval_collection(&c)
            .into_iter()
            .filter(|r| {
                c.get(r.doc)
                    .unwrap()
                    .tree
                    .data(r.node)
                    .map(|d| d.tag == "b")
                    .unwrap_or(false)
            })
            .collect::<Vec<_>>();
        assert_eq!(fast, scan);
        assert_eq!(fast.len(), 2);
    }
}
