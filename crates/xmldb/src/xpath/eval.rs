//! XPath evaluation over trees and collections.
//!
//! Evaluation is node-set based. Results are returned in document order
//! (documents in insertion order; nodes in preorder within a document),
//! which is the order TAX's witness-tree semantics requires.
//!
//! The collection evaluator uses the tag index as a fast path for queries
//! whose first step is `//name`: instead of scanning every subtree it
//! starts from the index postings for `name`.

use super::ast::{Axis, Expr, NameTest, Path, RelPath, Step, ValueExpr, XPath};
use crate::collection::{Collection, DocumentId};
use crate::index::Posting;
use toss_tree::{NodeId, Tree};

/// A query result: one node in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Document containing the node.
    pub doc: DocumentId,
    /// The node within the document's tree.
    pub node: NodeId,
}

/// The W3C-style string-value of a node: its own text content
/// concatenated with the content of all descendants in preorder.
/// Exposed as a helper; **comparisons in this engine use
/// [`own_text`]** — see the deviation note below.
pub fn string_value(tree: &Tree, node: NodeId) -> String {
    let mut out = String::new();
    for n in tree.subtree(node) {
        if let Ok(d) = tree.data(n) {
            if let Some(c) = &d.content {
                out.push_str(&c.render());
            }
        }
    }
    out
}

/// The element's *own* text content ("" when absent).
///
/// Deviation from W3C XPath, by design: this store keys text content to
/// its owning element (the TAX data model's `o.content`), and the TOSS
/// rewriter's XPath must select a superset of what the TAX condition
/// `content = v` matches. Concatenated string-values would *reject*
/// elements whose descendants also carry text, losing true matches; the
/// own-content semantics makes `[a='v']`, `text()`, `contains(...)` agree
/// exactly with the data model.
pub fn own_text(tree: &Tree, node: NodeId) -> String {
    tree.data(node)
        .ok()
        .and_then(|d| d.content.as_ref().map(|c| c.render()))
        .unwrap_or_default()
}

impl XPath {
    /// Evaluate against a single tree; returns matching nodes in preorder.
    pub fn eval_tree(&self, tree: &Tree) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for path in &self.paths {
            out.extend(eval_path_tree(path, tree));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Evaluate against every document of a collection; results in
    /// document order.
    pub fn eval_collection(&self, coll: &Collection) -> Vec<NodeRef> {
        let span = toss_obs::span("xmldb.xpath.eval");
        let mut out: Vec<NodeRef> = Vec::new();
        let mut docs_scanned = 0usize;
        for path in &self.paths {
            docs_scanned += eval_path_collection(path, coll, &mut out);
        }
        out.sort();
        out.dedup();
        if span.is_recording() {
            let docs_matched = {
                let mut docs: Vec<DocumentId> = out.iter().map(|r| r.doc).collect();
                docs.dedup(); // `out` is sorted by (doc, node)
                docs.len()
            };
            span.record("docs_scanned", docs_scanned);
            span.record("docs_matched", docs_matched);
            span.record("nodes_matched", out.len());
        }
        toss_obs::metrics::counter("xmldb.xpath.evals").inc();
        toss_obs::metrics::counter("xmldb.xpath.docs_scanned").add(docs_scanned as u64);
        toss_obs::metrics::counter("xmldb.xpath.nodes_matched").add(out.len() as u64);
        toss_obs::metrics::histogram("xmldb.xpath.eval_ns").observe_duration(span.finish());
        out
    }
}

fn eval_path_tree(path: &Path, tree: &Tree) -> Vec<NodeId> {
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    let Some((first, rest)) = path.steps.split_first() else {
        return Vec::new();
    };
    // Initial context: the (virtual) document node. `/a` tests root
    // elements; `//a` tests every node.
    let mut current: Vec<NodeId> = match first.axis {
        Axis::Child => {
            if first.test.matches(&tree.data(root).map(|d| d.tag.clone()).unwrap_or_default()) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => tree
            .preorder()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| first.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect(),
    };
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Advance one step from a context node-set.
fn advance_step(tree: &Tree, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut matched: Vec<NodeId> = Vec::new();
    for &ctx in context {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child => tree.children(ctx).collect(),
            Axis::Descendant => tree.descendants(ctx).collect(),
        };
        let mut local: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| step.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect();
        // Positional predicates are per-context in XPath, so filter here.
        local = apply_predicates(tree, local, &step.predicates);
        matched.extend(local);
    }
    matched.sort();
    matched.dedup();
    matched
}

fn apply_predicates(tree: &Tree, nodes: Vec<NodeId>, preds: &[Expr]) -> Vec<NodeId> {
    let mut current = nodes;
    for p in preds {
        let snapshot = current.clone();
        current = snapshot
            .iter()
            .enumerate()
            .filter(|&(i, &n)| eval_expr(tree, n, i + 1, p))
            .map(|(_, &n)| n)
            .collect();
    }
    current
}

fn eval_expr(tree: &Tree, node: NodeId, position: usize, expr: &Expr) -> bool {
    match expr {
        Expr::Position(k) => position == *k,
        Expr::And(a, b) => {
            eval_expr(tree, node, position, a) && eval_expr(tree, node, position, b)
        }
        Expr::Or(a, b) => {
            eval_expr(tree, node, position, a) || eval_expr(tree, node, position, b)
        }
        Expr::Not(e) => !eval_expr(tree, node, position, e),
        Expr::Exists(p) => !eval_rel_path(tree, node, p).is_empty(),
        Expr::Eq(v, lit) => value_matches(tree, node, v, |s| s == lit),
        Expr::Ne(v, lit) => value_matches(tree, node, v, |s| s != lit),
        Expr::Contains(v, lit) => value_matches(tree, node, v, |s| s.contains(lit.as_str())),
        Expr::StartsWith(v, lit) => {
            value_matches(tree, node, v, |s| s.starts_with(lit.as_str()))
        }
        Expr::AttrExists(name) => tree
            .data(node)
            .map(|d| d.attr_value(name).is_some())
            .unwrap_or(false),
    }
}

/// XPath existential comparison: for relative-path values the predicate
/// holds if *some* reached node's string-value satisfies `f`; for `text()`
/// and attributes there is at most one value.
fn value_matches(tree: &Tree, node: NodeId, v: &ValueExpr, f: impl Fn(&str) -> bool) -> bool {
    match v {
        ValueExpr::Text => f(&own_text(tree, node)),
        ValueExpr::Attr(name) => tree
            .data(node)
            .ok()
            .and_then(|d| d.attr_value(name).map(&f))
            .unwrap_or(false),
        ValueExpr::Rel(p) => eval_rel_path(tree, node, p)
            .into_iter()
            .any(|n| f(&own_text(tree, n))),
    }
}

fn eval_rel_path(tree: &Tree, node: NodeId, p: &RelPath) -> Vec<NodeId> {
    let Some((first, rest)) = p.steps.split_first() else {
        return Vec::new();
    };
    let base: Vec<NodeId> = if p.from_descendants {
        tree.descendants(node).collect()
    } else {
        tree.children(node).collect()
    };
    let mut current: Vec<NodeId> = base
        .into_iter()
        .filter(|&n| {
            tree.data(n)
                .map(|d| first.test.matches(&d.tag))
                .unwrap_or(false)
        })
        .collect();
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Returns how many documents were actually visited (the tag-index fast
/// path touches only documents with a posting; the general path scans
/// the whole collection).
fn eval_path_collection(path: &Path, coll: &Collection, out: &mut Vec<NodeRef>) -> usize {
    // Fast path: `//name...` — seed from the tag index.
    if let Some(first) = path.steps.first() {
        if first.axis == Axis::Descendant {
            if let NameTest::Name(name) = &first.test {
                let postings: &[Posting] = coll.index().by_tag(name);
                // group postings by document
                let mut by_doc: Vec<(DocumentId, Vec<NodeId>)> = Vec::new();
                for p in postings {
                    match by_doc.last_mut() {
                        Some((d, v)) if *d == p.doc => v.push(p.node),
                        _ => by_doc.push((p.doc, vec![p.node])),
                    }
                }
                let scanned = by_doc.len();
                for (doc, seeds) in by_doc {
                    let Ok(stored) = coll.get(doc) else { continue };
                    let tree = &stored.tree;
                    let mut current = apply_predicates(tree, seeds, &first.predicates);
                    for step in &path.steps[1..] {
                        current = advance_step(tree, &current, step);
                    }
                    out.extend(current.into_iter().map(|node| NodeRef { doc, node }));
                }
                return scanned;
            }
        }
    }
    // General path: evaluate per document.
    let mut scanned = 0usize;
    for stored in coll.documents() {
        scanned += 1;
        for node in eval_path_tree(path, &stored.tree) {
            out.push(NodeRef {
                doc: stored.id,
                node,
            });
        }
    }
    scanned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn tree() -> Tree {
        parse_document(
            "<r><a k=\"1\"><b>x</b><b>y</b></a><a><b>z</b><c><b>deep</b></c></a></r>",
        )
        .unwrap()
    }

    fn q(t: &Tree, s: &str) -> Vec<NodeId> {
        XPath::parse(s).unwrap().eval_tree(t)
    }

    #[test]
    fn string_value_helper_concatenates_but_comparisons_use_own_text() {
        let t = tree();
        let root = t.root().unwrap();
        assert_eq!(string_value(&t, root), "xyzdeep");
        let a2 = t.children(root).nth(1).unwrap();
        assert_eq!(string_value(&t, a2), "zdeep");
        assert_eq!(own_text(&t, a2), "");
        // an element with text AND content-bearing children still matches
        // its own text exactly (the rewriter-soundness requirement)
        let m = crate::parser::parse_document("<r><a>ab<b>extra</b></a></r>").unwrap();
        assert_eq!(q(&m, "//r[.//a='ab']").len(), 1);
        assert_eq!(q(&m, "//a[text()='ab']").len(), 1);
    }

    #[test]
    fn tree_eval_child_and_descendant() {
        let t = tree();
        assert_eq!(q(&t, "/r/a").len(), 2);
        assert_eq!(q(&t, "/r/a/b").len(), 3);
        assert_eq!(q(&t, "//b").len(), 4);
        assert_eq!(q(&t, "/r//b").len(), 4);
    }

    #[test]
    fn positional_is_per_context() {
        let t = tree();
        // first b under each a: x and z
        let firsts = q(&t, "/r/a/b[1]");
        assert_eq!(firsts.len(), 2);
        let seconds = q(&t, "/r/a/b[2]");
        assert_eq!(seconds.len(), 1);
    }

    #[test]
    fn predicates_on_first_step() {
        let t = tree();
        assert_eq!(q(&t, "//a[@k='1']").len(), 1);
        assert_eq!(q(&t, "//a[c]").len(), 1);
        assert_eq!(q(&t, "//a[b='z']").len(), 1);
        // rel-path equality is existential over children only
        assert_eq!(q(&t, "//a[b='deep']").len(), 0);
        assert_eq!(q(&t, "//a[.//b='deep']").len(), 1);
    }

    #[test]
    fn duplicate_elimination_across_union() {
        let t = tree();
        let n = q(&t, "//b | //b");
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = Tree::new();
        assert_eq!(q(&t, "//a").len(), 0);
    }

    #[test]
    fn collection_index_fast_path_equals_scan() {
        let mut c = crate::collection::Collection::new("x", None);
        c.insert_xml("<r><a><b>1</b></a></r>").unwrap();
        c.insert_xml("<r><b>2</b></r>").unwrap();
        let fast = XPath::parse("//b").unwrap().eval_collection(&c);
        // wildcard first step forces the scan path
        let scan = XPath::parse("//*")
            .unwrap()
            .eval_collection(&c)
            .into_iter()
            .filter(|r| {
                c.get(r.doc)
                    .unwrap()
                    .tree
                    .data(r.node)
                    .map(|d| d.tag == "b")
                    .unwrap_or(false)
            })
            .collect::<Vec<_>>();
        assert_eq!(fast, scan);
        assert_eq!(fast.len(), 2);
    }
}
