//! XPath evaluation over trees and collections.
//!
//! Evaluation is node-set based. Results are returned in document order
//! (documents in insertion order; nodes in preorder within a document),
//! which is the order TAX's witness-tree semantics requires.
//!
//! The collection evaluator uses the tag index as a fast path for queries
//! whose first step is `//name`: instead of scanning every subtree it
//! starts from the index postings for `name`.

use super::ast::{Axis, Expr, NameTest, Path, RelPath, Step, ValueExpr, XPath};
use crate::collection::{Collection, DocumentId};
use crate::index::Posting;
use toss_tree::{NodeId, Tree};

/// A query result: one node in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Document containing the node.
    pub doc: DocumentId,
    /// The node within the document's tree.
    pub node: NodeId,
}

/// A cooperative per-document scan budget.
///
/// The evaluator calls [`ScanBudget::before_document`] before visiting
/// each document. This keeps the DB layer decoupled from any particular
/// governance policy: `toss-core`'s query governor implements this trait
/// to enforce deadlines, cancellation and document-scan limits, and the
/// evaluator only needs to know *continue / truncate / abort*.
pub trait ScanBudget {
    /// Decide whether the next document may be visited. `docs_scanned`
    /// counts documents already visited by this evaluation.
    fn before_document(&self, docs_scanned: usize) -> ScanControl;
}

/// The decision a [`ScanBudget`] returns for the next document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanControl {
    /// Visit the document.
    Continue,
    /// Stop scanning but keep the matches found so far (a soft limit:
    /// the caller turns the partial result into a degraded answer).
    Truncate,
    /// Stop scanning and discard nothing — the caller decides how to
    /// fail (cancellation, deadline, or a hard limit).
    Abort,
}

/// How a budgeted collection evaluation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStatus {
    /// Every candidate document was visited.
    Complete {
        /// Documents visited.
        docs_scanned: usize,
    },
    /// The budget truncated the scan; the matches are a prefix of the
    /// full answer.
    Truncated {
        /// Documents visited before the budget stopped the scan.
        docs_scanned: usize,
        /// Documents a full evaluation would have visited.
        docs_total: usize,
    },
    /// The budget aborted the scan; the matches must be discarded.
    Aborted {
        /// Documents visited before the abort.
        docs_scanned: usize,
    },
}

/// The always-continue budget backing [`XPath::eval_collection`].
struct NoBudget;

impl ScanBudget for NoBudget {
    fn before_document(&self, _docs_scanned: usize) -> ScanControl {
        ScanControl::Continue
    }
}

/// Mutable state threaded through a budgeted evaluation.
struct ScanState<'a> {
    budget: &'a dyn ScanBudget,
    scanned: usize,
    /// Candidate documents across all union branches (including the
    /// ones the budget prevented from being visited).
    total: usize,
    stopped: Option<ScanControl>,
}

impl ScanState<'_> {
    /// Charge one document; returns false when scanning must stop.
    fn admit_document(&mut self) -> bool {
        match self.budget.before_document(self.scanned) {
            ScanControl::Continue => {
                self.scanned += 1;
                true
            }
            control => {
                self.stopped = Some(control);
                false
            }
        }
    }
}

/// The W3C-style string-value of a node: its own text content
/// concatenated with the content of all descendants in preorder.
/// Exposed as a helper; **comparisons in this engine use
/// [`own_text`]** — see the deviation note below.
pub fn string_value(tree: &Tree, node: NodeId) -> String {
    let mut out = String::new();
    for n in tree.subtree(node) {
        if let Ok(d) = tree.data(n) {
            if let Some(c) = &d.content {
                out.push_str(&c.render());
            }
        }
    }
    out
}

/// The element's *own* text content ("" when absent).
///
/// Deviation from W3C XPath, by design: this store keys text content to
/// its owning element (the TAX data model's `o.content`), and the TOSS
/// rewriter's XPath must select a superset of what the TAX condition
/// `content = v` matches. Concatenated string-values would *reject*
/// elements whose descendants also carry text, losing true matches; the
/// own-content semantics makes `[a='v']`, `text()`, `contains(...)` agree
/// exactly with the data model.
pub fn own_text(tree: &Tree, node: NodeId) -> String {
    tree.data(node)
        .ok()
        .and_then(|d| d.content.as_ref().map(|c| c.render()))
        .unwrap_or_default()
}

impl XPath {
    /// Evaluate against a single tree; returns matching nodes in preorder.
    pub fn eval_tree(&self, tree: &Tree) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for path in &self.paths {
            out.extend(eval_path_tree(path, tree));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Evaluate against every document of a collection; results in
    /// document order.
    pub fn eval_collection(&self, coll: &Collection) -> Vec<NodeRef> {
        self.eval_collection_budgeted(coll, &NoBudget).0
    }

    /// Evaluate under a cooperative [`ScanBudget`]: the budget is asked
    /// before each document visit, so a deadline, cancellation or
    /// document-scan cap stops the scan promptly. Returns the matches
    /// found plus a [`ScanStatus`] saying whether the scan completed,
    /// was truncated (matches are a valid prefix) or aborted (the
    /// caller should discard the matches and fail).
    pub fn eval_collection_budgeted(
        &self,
        coll: &Collection,
        budget: &dyn ScanBudget,
    ) -> (Vec<NodeRef>, ScanStatus) {
        let span = toss_obs::span("xmldb.xpath.eval");
        let mut out: Vec<NodeRef> = Vec::new();
        let mut state = ScanState {
            budget,
            scanned: 0,
            total: 0,
            stopped: None,
        };
        for path in &self.paths {
            eval_path_collection(path, coll, &mut out, &mut state);
            if state.stopped.is_some() {
                break;
            }
        }
        let docs_scanned = state.scanned;
        let status = match state.stopped {
            None => ScanStatus::Complete { docs_scanned },
            Some(ScanControl::Truncate) => {
                toss_obs::metrics::counter("xmldb.xpath.scans_truncated").inc();
                ScanStatus::Truncated {
                    docs_scanned,
                    docs_total: state.total.max(docs_scanned),
                }
            }
            Some(_) => {
                toss_obs::metrics::counter("xmldb.xpath.scans_aborted").inc();
                ScanStatus::Aborted { docs_scanned }
            }
        };
        out.sort();
        out.dedup();
        if span.is_recording() {
            let docs_matched = {
                let mut docs: Vec<DocumentId> = out.iter().map(|r| r.doc).collect();
                docs.dedup(); // `out` is sorted by (doc, node)
                docs.len()
            };
            span.record("docs_scanned", docs_scanned);
            span.record("docs_matched", docs_matched);
            span.record("nodes_matched", out.len());
        }
        toss_obs::metrics::counter("xmldb.xpath.evals").inc();
        toss_obs::metrics::counter("xmldb.xpath.docs_scanned").add(docs_scanned as u64);
        toss_obs::metrics::counter("xmldb.xpath.nodes_matched").add(out.len() as u64);
        toss_obs::metrics::histogram("xmldb.xpath.eval_ns").observe_duration(span.finish());
        (out, status)
    }
}

fn eval_path_tree(path: &Path, tree: &Tree) -> Vec<NodeId> {
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    let Some((first, rest)) = path.steps.split_first() else {
        return Vec::new();
    };
    // Initial context: the (virtual) document node. `/a` tests root
    // elements; `//a` tests every node.
    let mut current: Vec<NodeId> = match first.axis {
        Axis::Child => {
            if first.test.matches(&tree.data(root).map(|d| d.tag.clone()).unwrap_or_default()) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => tree
            .preorder()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| first.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect(),
    };
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Advance one step from a context node-set.
fn advance_step(tree: &Tree, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut matched: Vec<NodeId> = Vec::new();
    for &ctx in context {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child => tree.children(ctx).collect(),
            Axis::Descendant => tree.descendants(ctx).collect(),
        };
        let mut local: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&n| {
                tree.data(n)
                    .map(|d| step.test.matches(&d.tag))
                    .unwrap_or(false)
            })
            .collect();
        // Positional predicates are per-context in XPath, so filter here.
        local = apply_predicates(tree, local, &step.predicates);
        matched.extend(local);
    }
    matched.sort();
    matched.dedup();
    matched
}

fn apply_predicates(tree: &Tree, nodes: Vec<NodeId>, preds: &[Expr]) -> Vec<NodeId> {
    let mut current = nodes;
    for p in preds {
        let snapshot = current.clone();
        current = snapshot
            .iter()
            .enumerate()
            .filter(|&(i, &n)| eval_expr(tree, n, i + 1, p))
            .map(|(_, &n)| n)
            .collect();
    }
    current
}

fn eval_expr(tree: &Tree, node: NodeId, position: usize, expr: &Expr) -> bool {
    match expr {
        Expr::Position(k) => position == *k,
        Expr::And(a, b) => {
            eval_expr(tree, node, position, a) && eval_expr(tree, node, position, b)
        }
        Expr::Or(a, b) => {
            eval_expr(tree, node, position, a) || eval_expr(tree, node, position, b)
        }
        Expr::Not(e) => !eval_expr(tree, node, position, e),
        Expr::Exists(p) => !eval_rel_path(tree, node, p).is_empty(),
        Expr::Eq(v, lit) => value_matches(tree, node, v, |s| s == lit),
        Expr::Ne(v, lit) => value_matches(tree, node, v, |s| s != lit),
        Expr::Contains(v, lit) => value_matches(tree, node, v, |s| s.contains(lit.as_str())),
        Expr::StartsWith(v, lit) => {
            value_matches(tree, node, v, |s| s.starts_with(lit.as_str()))
        }
        Expr::AttrExists(name) => tree
            .data(node)
            .map(|d| d.attr_value(name).is_some())
            .unwrap_or(false),
    }
}

/// XPath existential comparison: for relative-path values the predicate
/// holds if *some* reached node's string-value satisfies `f`; for `text()`
/// and attributes there is at most one value.
fn value_matches(tree: &Tree, node: NodeId, v: &ValueExpr, f: impl Fn(&str) -> bool) -> bool {
    match v {
        ValueExpr::Text => f(&own_text(tree, node)),
        ValueExpr::Attr(name) => tree
            .data(node)
            .ok()
            .and_then(|d| d.attr_value(name).map(&f))
            .unwrap_or(false),
        ValueExpr::Rel(p) => eval_rel_path(tree, node, p)
            .into_iter()
            .any(|n| f(&own_text(tree, n))),
    }
}

fn eval_rel_path(tree: &Tree, node: NodeId, p: &RelPath) -> Vec<NodeId> {
    let Some((first, rest)) = p.steps.split_first() else {
        return Vec::new();
    };
    let base: Vec<NodeId> = if p.from_descendants {
        tree.descendants(node).collect()
    } else {
        tree.children(node).collect()
    };
    let mut current: Vec<NodeId> = base
        .into_iter()
        .filter(|&n| {
            tree.data(n)
                .map(|d| first.test.matches(&d.tag))
                .unwrap_or(false)
        })
        .collect();
    current = apply_predicates(tree, current, &first.predicates);
    for step in rest {
        current = advance_step(tree, &current, step);
    }
    current
}

/// Evaluate one union branch, charging each visited document to the
/// scan state (the tag-index fast path touches only documents with a
/// posting; the general path scans the whole collection). Stops early
/// when the budget truncates or aborts the scan.
fn eval_path_collection(
    path: &Path,
    coll: &Collection,
    out: &mut Vec<NodeRef>,
    state: &mut ScanState<'_>,
) {
    // Fast path: `//name...` — seed from the tag index.
    if let Some(first) = path.steps.first() {
        if first.axis == Axis::Descendant {
            if let NameTest::Name(name) = &first.test {
                let postings: &[Posting] = coll.index().by_tag(name);
                // group postings by document
                let mut by_doc: Vec<(DocumentId, Vec<NodeId>)> = Vec::new();
                for p in postings {
                    match by_doc.last_mut() {
                        Some((d, v)) if *d == p.doc => v.push(p.node),
                        _ => by_doc.push((p.doc, vec![p.node])),
                    }
                }
                state.total += by_doc.len();
                for (doc, seeds) in by_doc {
                    if !state.admit_document() {
                        return;
                    }
                    let Ok(stored) = coll.get(doc) else { continue };
                    let tree = &stored.tree;
                    let mut current = apply_predicates(tree, seeds, &first.predicates);
                    for step in &path.steps[1..] {
                        current = advance_step(tree, &current, step);
                    }
                    out.extend(current.into_iter().map(|node| NodeRef { doc, node }));
                }
                return;
            }
        }
    }
    // General path: evaluate per document.
    state.total += coll.documents().len();
    for stored in coll.documents() {
        if !state.admit_document() {
            return;
        }
        for node in eval_path_tree(path, &stored.tree) {
            out.push(NodeRef {
                doc: stored.id,
                node,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn tree() -> Tree {
        parse_document(
            "<r><a k=\"1\"><b>x</b><b>y</b></a><a><b>z</b><c><b>deep</b></c></a></r>",
        )
        .unwrap()
    }

    fn q(t: &Tree, s: &str) -> Vec<NodeId> {
        XPath::parse(s).unwrap().eval_tree(t)
    }

    #[test]
    fn string_value_helper_concatenates_but_comparisons_use_own_text() {
        let t = tree();
        let root = t.root().unwrap();
        assert_eq!(string_value(&t, root), "xyzdeep");
        let a2 = t.children(root).nth(1).unwrap();
        assert_eq!(string_value(&t, a2), "zdeep");
        assert_eq!(own_text(&t, a2), "");
        // an element with text AND content-bearing children still matches
        // its own text exactly (the rewriter-soundness requirement)
        let m = crate::parser::parse_document("<r><a>ab<b>extra</b></a></r>").unwrap();
        assert_eq!(q(&m, "//r[.//a='ab']").len(), 1);
        assert_eq!(q(&m, "//a[text()='ab']").len(), 1);
    }

    #[test]
    fn tree_eval_child_and_descendant() {
        let t = tree();
        assert_eq!(q(&t, "/r/a").len(), 2);
        assert_eq!(q(&t, "/r/a/b").len(), 3);
        assert_eq!(q(&t, "//b").len(), 4);
        assert_eq!(q(&t, "/r//b").len(), 4);
    }

    #[test]
    fn positional_is_per_context() {
        let t = tree();
        // first b under each a: x and z
        let firsts = q(&t, "/r/a/b[1]");
        assert_eq!(firsts.len(), 2);
        let seconds = q(&t, "/r/a/b[2]");
        assert_eq!(seconds.len(), 1);
    }

    #[test]
    fn predicates_on_first_step() {
        let t = tree();
        assert_eq!(q(&t, "//a[@k='1']").len(), 1);
        assert_eq!(q(&t, "//a[c]").len(), 1);
        assert_eq!(q(&t, "//a[b='z']").len(), 1);
        // rel-path equality is existential over children only
        assert_eq!(q(&t, "//a[b='deep']").len(), 0);
        assert_eq!(q(&t, "//a[.//b='deep']").len(), 1);
    }

    #[test]
    fn duplicate_elimination_across_union() {
        let t = tree();
        let n = q(&t, "//b | //b");
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = Tree::new();
        assert_eq!(q(&t, "//a").len(), 0);
    }

    struct CapBudget {
        cap: usize,
        control: ScanControl,
    }

    impl ScanBudget for CapBudget {
        fn before_document(&self, docs_scanned: usize) -> ScanControl {
            if docs_scanned < self.cap {
                ScanControl::Continue
            } else {
                self.control
            }
        }
    }

    fn budget_collection(n: usize) -> crate::collection::Collection {
        let mut c = crate::collection::Collection::new("x", None);
        for i in 0..n {
            c.insert_xml(&format!("<r><b>{i}</b></r>")).unwrap();
        }
        c
    }

    #[test]
    fn budgeted_scan_truncates_with_prefix() {
        let c = budget_collection(10);
        let xp = XPath::parse("//b").unwrap();
        let (full, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 100,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(status, ScanStatus::Complete { docs_scanned: 10 });
        assert_eq!(full.len(), 10);

        let (partial, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 4,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(
            status,
            ScanStatus::Truncated {
                docs_scanned: 4,
                docs_total: 10
            }
        );
        assert_eq!(partial, full[..4].to_vec());
    }

    #[test]
    fn budgeted_scan_aborts() {
        let c = budget_collection(5);
        let xp = XPath::parse("//b").unwrap();
        let (_, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 2,
                control: ScanControl::Abort,
            },
        );
        assert_eq!(status, ScanStatus::Aborted { docs_scanned: 2 });
        // zero-budget: aborted before any document
        let (hits, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 0,
                control: ScanControl::Abort,
            },
        );
        assert!(hits.is_empty());
        assert_eq!(status, ScanStatus::Aborted { docs_scanned: 0 });
    }

    #[test]
    fn budgeted_scan_covers_general_path_too() {
        let c = budget_collection(6);
        // wildcard first step forces the general (non-indexed) path
        let xp = XPath::parse("//*").unwrap();
        let (_, status) = xp.eval_collection_budgeted(
            &c,
            &CapBudget {
                cap: 3,
                control: ScanControl::Truncate,
            },
        );
        assert_eq!(
            status,
            ScanStatus::Truncated {
                docs_scanned: 3,
                docs_total: 6
            }
        );
    }

    #[test]
    fn collection_index_fast_path_equals_scan() {
        let mut c = crate::collection::Collection::new("x", None);
        c.insert_xml("<r><a><b>1</b></a></r>").unwrap();
        c.insert_xml("<r><b>2</b></r>").unwrap();
        let fast = XPath::parse("//b").unwrap().eval_collection(&c);
        // wildcard first step forces the scan path
        let scan = XPath::parse("//*")
            .unwrap()
            .eval_collection(&c)
            .into_iter()
            .filter(|r| {
                c.get(r.doc)
                    .unwrap()
                    .tree
                    .data(r.node)
                    .map(|d| d.tag == "b")
                    .unwrap_or(false)
            })
            .collect::<Vec<_>>();
        assert_eq!(fast, scan);
        assert_eq!(fast.len(), 2);
    }
}
