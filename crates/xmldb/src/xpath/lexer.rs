//! XPath tokenizer.

use crate::error::{DbError, DbResult};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/` — child axis separator.
    Slash,
    /// `//` — descendant-or-self axis separator.
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@`
    At,
    /// `*`
    Star,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `,`
    Comma,
    /// `.` (self, only used as `.//` prefix in relative paths)
    Dot,
    /// A name (element tag, attribute name, or function keyword).
    Name(String),
    /// A quoted string literal (quotes stripped).
    Literal(String),
    /// An unsigned integer (positional predicate).
    Integer(usize),
}

/// Tokenize an XPath expression.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    out.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Token::Slash);
                    i += 1;
                }
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'@' => {
                out.push(Token::At);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::XPathSyntax(format!(
                        "unexpected `!` at offset {i}"
                    )));
                }
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'\'' | b'"' => {
                let quote = b;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(DbError::XPathSyntax(format!(
                        "unterminated string literal at offset {i}"
                    )));
                }
                let lit = std::str::from_utf8(&bytes[start..j])
                    .map_err(|_| DbError::XPathSyntax("literal is not valid UTF-8".into()))?;
                out.push(Token::Literal(lit.to_string()));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: usize = std::str::from_utf8(&bytes[start..i])
                    .map_err(|_| DbError::XPathSyntax("number is not valid UTF-8".into()))?
                    .parse()
                    .map_err(|_| DbError::XPathSyntax("integer overflow".into()))?;
                out.push(Token::Integer(n));
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') || c >= 0x80
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let name = std::str::from_utf8(&bytes[start..i])
                    .map_err(|_| DbError::XPathSyntax("name is not valid UTF-8".into()))?;
                out.push(Token::Name(name.to_string()));
            }
            _ => {
                return Err(DbError::XPathSyntax(format!(
                    "unexpected byte `{}` at offset {i}",
                    char::from(b)
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_full_query() {
        let toks = tokenize("//inproceedings[author='J. Ullman' and @key!=\"x\"]").unwrap();
        assert_eq!(toks[0], Token::DoubleSlash);
        assert_eq!(toks[1], Token::Name("inproceedings".into()));
        assert_eq!(toks[2], Token::LBracket);
        assert_eq!(toks[3], Token::Name("author".into()));
        assert_eq!(toks[4], Token::Eq);
        assert_eq!(toks[5], Token::Literal("J. Ullman".into()));
        assert_eq!(toks[6], Token::Name("and".into()));
        assert_eq!(toks[7], Token::At);
        assert_eq!(toks[8], Token::Name("key".into()));
        assert_eq!(toks[9], Token::Ne);
        assert_eq!(toks[10], Token::Literal("x".into()));
        assert_eq!(toks[11], Token::RBracket);
    }

    #[test]
    fn slash_vs_double_slash() {
        assert_eq!(
            tokenize("/a//b").unwrap(),
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::DoubleSlash,
                Token::Name("b".into())
            ]
        );
    }

    #[test]
    fn integers_and_stars() {
        assert_eq!(
            tokenize("/*[2]").unwrap(),
            vec![
                Token::Slash,
                Token::Star,
                Token::LBracket,
                Token::Integer(2),
                Token::RBracket
            ]
        );
    }

    #[test]
    fn names_with_dots_stay_one_token_after_letters() {
        // `text()` — name then parens
        let toks = tokenize("text()").unwrap();
        assert_eq!(
            toks,
            vec![Token::Name("text".into()), Token::LParen, Token::RParen]
        );
    }

    #[test]
    fn dot_doubleslash_prefix() {
        let toks = tokenize(".//a").unwrap();
        assert_eq!(
            toks,
            vec![Token::Dot, Token::DoubleSlash, Token::Name("a".into())]
        );
    }

    #[test]
    fn unterminated_literal_errors() {
        assert!(tokenize("//a[b='x]").is_err());
    }

    #[test]
    fn lone_bang_errors() {
        assert!(tokenize("//a[b ! 'x']").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            tokenize("  //  a ").unwrap(),
            vec![Token::DoubleSlash, Token::Name("a".into())]
        );
    }
}
