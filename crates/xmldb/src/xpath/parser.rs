//! Recursive-descent XPath parser.

use super::ast::{Axis, Expr, NameTest, Path, RelPath, Step, ValueExpr, XPath};
use super::lexer::{tokenize, Token};
use crate::error::{DbError, DbResult};

/// Maximum nesting depth of predicate expressions. Parsing is
/// recursive-descent, so unbounded nesting (`//a[b[c[…]]]`,
/// `not(not(…))`, `(((…)))`) would overflow the stack; deeper inputs
/// are rejected with a parse error instead. The TOSS rewriter emits
/// nesting proportional to the pattern-tree depth, far below this.
pub const MAX_EXPR_DEPTH: usize = 128;

/// Parse an XPath expression string into an AST.
pub fn parse(input: &str) -> DbResult<XPath> {
    let tokens = tokenize(input)?;
    let mut p = P {
        tokens,
        pos: 0,
        depth: 0,
    };
    let x = p.xpath()?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(x)
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
    /// Current recursion depth through `expr`/`step`.
    depth: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Guard one level of expression/step recursion (paired with
    /// [`P::ascend`] on every return path).
    fn descend(&mut self) -> DbResult<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err(&format!(
                "expression nesting exceeds the depth limit of {MAX_EXPR_DEPTH}"
            )));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> DbError {
        DbError::XPathSyntax(format!("{msg} (at token {})", self.pos))
    }

    fn expect(&mut self, t: &Token, what: &str) -> DbResult<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn xpath(&mut self) -> DbResult<XPath> {
        let mut paths = vec![self.path()?];
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            paths.push(self.path()?);
        }
        Ok(XPath { paths })
    }

    fn path(&mut self) -> DbResult<Path> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Some(Token::Slash) => Axis::Child,
                Some(Token::DoubleSlash) => Axis::Descendant,
                _ if steps.is_empty() => return Err(self.err("path must start with / or //")),
                _ => break,
            };
            self.bump();
            steps.push(self.step(axis)?);
        }
        Ok(Path { steps })
    }

    fn step(&mut self, axis: Axis) -> DbResult<Step> {
        self.descend()?;
        let r = self.step_inner(axis);
        self.ascend();
        r
    }

    fn step_inner(&mut self, axis: Axis) -> DbResult<Step> {
        let test = match self.bump() {
            Some(Token::Name(n)) => NameTest::Name(n),
            Some(Token::Star) => NameTest::Wildcard,
            _ => return Err(self.err("expected a name or `*` after axis")),
        };
        let mut predicates = Vec::new();
        while self.peek() == Some(&Token::LBracket) {
            self.bump();
            predicates.push(self.expr()?);
            self.expect(&Token::RBracket, "expected `]` to close predicate")?;
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn expr(&mut self) -> DbResult<Expr> {
        self.descend()?;
        let r = self.or_expr();
        self.ascend();
        r
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Name(n)) if n == "or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Token::Name(n)) if n == "and") {
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        match self.peek() {
            Some(Token::Integer(n)) => {
                let n = *n;
                self.bump();
                if n == 0 {
                    return Err(self.err("positional predicates are 1-based"));
                }
                Ok(Expr::Position(n))
            }
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "expected `)`")?;
                Ok(e)
            }
            Some(Token::Name(n)) if n == "not" && self.tokens.get(self.pos + 1) == Some(&Token::LParen) => {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "expected `)` after not(...)")?;
                Ok(Expr::Not(Box::new(e)))
            }
            _ => {
                if let Some(c) = self.try_contains()? {
                    return Ok(c);
                }
                let v = self.value()?;
                match self.peek() {
                    Some(Token::Eq) => {
                        self.bump();
                        let lit = self.literal()?;
                        Ok(Expr::Eq(v, lit))
                    }
                    Some(Token::Ne) => {
                        self.bump();
                        let lit = self.literal()?;
                        Ok(Expr::Ne(v, lit))
                    }
                    _ => match v {
                        ValueExpr::Rel(p) => Ok(Expr::Exists(p)),
                        ValueExpr::Attr(a) => Ok(Expr::AttrExists(a)),
                        other => Err(self.err(&format!(
                            "`{other}` must be compared with = or != in a predicate"
                        ))),
                    },
                }
            }
        }
    }

    fn literal(&mut self) -> DbResult<String> {
        match self.bump() {
            Some(Token::Literal(s)) => Ok(s),
            Some(Token::Integer(n)) => Ok(n.to_string()),
            _ => Err(self.err("expected a string literal")),
        }
    }

    fn value(&mut self) -> DbResult<ValueExpr> {
        match self.peek() {
            Some(Token::At) => {
                self.bump();
                match self.bump() {
                    Some(Token::Name(n)) => Ok(ValueExpr::Attr(n)),
                    _ => Err(self.err("expected attribute name after `@`")),
                }
            }
            Some(Token::Name(n)) if n == "text" && self.tokens.get(self.pos + 1) == Some(&Token::LParen) => {
                self.bump();
                self.bump();
                self.expect(&Token::RParen, "expected `)` after text(")?;
                Ok(ValueExpr::Text)
            }
            Some(Token::Name(n)) if n == "contains" && self.tokens.get(self.pos + 1) == Some(&Token::LParen) => {
                self.bump();
                self.bump();
                let inner = self.value()?;
                self.expect(&Token::Comma, "expected `,` in contains()")?;
                let lit = self.literal()?;
                self.expect(&Token::RParen, "expected `)` to close contains()")?;
                // contains() used as a value only appears directly as a
                // boolean; encode by wrapping at the unary level. We return
                // a marker through the Expr ladder instead: handled below.
                Err(DbError::XPathSyntax(
                    // contains as nested value is unsupported; the grammar
                    // only allows contains at predicate top level, which
                    // `unary` handles via this early path:
                    format!("internal: contains({inner:?}, {lit:?}) must be a predicate"),
                ))
            }
            _ => {
                let p = self.rel_path()?;
                Ok(ValueExpr::Rel(p))
            }
        }
    }

    fn rel_path(&mut self) -> DbResult<RelPath> {
        let mut from_descendants = false;
        if self.peek() == Some(&Token::Dot) {
            self.bump();
            self.expect(&Token::DoubleSlash, "expected `//` after `.`")?;
            from_descendants = true;
        }
        let mut steps = vec![self.step(Axis::Child)?];
        loop {
            let axis = match self.peek() {
                Some(Token::Slash) => Axis::Child,
                Some(Token::DoubleSlash) => Axis::Descendant,
                _ => break,
            };
            self.bump();
            steps.push(self.step(axis)?);
        }
        Ok(RelPath {
            from_descendants,
            steps,
        })
    }
}

impl P {
    /// Handle `contains(value, 'lit')` / `starts-with(value, 'lit')` as a
    /// complete predicate — called from `unary` before the generic value
    /// route.
    fn try_contains(&mut self) -> DbResult<Option<Expr>> {
        let func = match self.peek() {
            Some(Token::Name(n)) if n == "contains" || n == "starts-with" => n.clone(),
            _ => return Ok(None),
        };
        if self.tokens.get(self.pos + 1) != Some(&Token::LParen) {
            return Ok(None);
        }
        self.bump();
        self.bump();
        let v = self.value()?;
        self.expect(&Token::Comma, "expected `,` in the function call")?;
        let lit = self.literal()?;
        self.expect(&Token::RParen, "expected `)` to close the function call")?;
        Ok(Some(if func == "contains" {
            Expr::Contains(v, lit)
        } else {
            Expr::StartsWith(v, lit)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_descendant() {
        let x = parse("//author").unwrap();
        assert_eq!(x.paths.len(), 1);
        let s = &x.paths[0].steps[0];
        assert_eq!(s.axis, Axis::Descendant);
        assert_eq!(s.test, NameTest::Name("author".into()));
    }

    #[test]
    fn parses_predicates_with_precedence() {
        let x = parse("//a[b='1' or c='2' and d='3']").unwrap();
        let p = &x.paths[0].steps[0].predicates[0];
        // and binds tighter than or
        match p {
            Expr::Or(_, rhs) => assert!(matches!(**rhs, Expr::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_expression() {
        let x = parse("//a[(b='1' or c='2') and d='3']").unwrap();
        let p = &x.paths[0].steps[0].predicates[0];
        match p {
            Expr::And(lhs, _) => assert!(matches!(**lhs, Expr::Or(_, _))),
            other => panic!("expected And at top, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("//a b").is_err());
        assert!(parse("//a]").is_err());
    }

    #[test]
    fn rejects_relative_top_level() {
        assert!(parse("a/b").is_err());
    }

    #[test]
    fn rejects_zero_position() {
        assert!(parse("//a[0]").is_err());
    }

    #[test]
    fn multiple_predicates_on_one_step() {
        let x = parse("//a[b='1'][2]").unwrap();
        assert_eq!(x.paths[0].steps[0].predicates.len(), 2);
    }

    #[test]
    fn nested_rel_path_value() {
        let x = parse("//a[b/c='v']").unwrap();
        match &x.paths[0].steps[0].predicates[0] {
            Expr::Eq(ValueExpr::Rel(p), v) => {
                assert_eq!(p.steps.len(), 2);
                assert_eq!(v, "v");
                assert!(!p.from_descendants);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dot_doubleslash_rel_path() {
        let x = parse("//a[.//b='v']").unwrap();
        match &x.paths[0].steps[0].predicates[0] {
            Expr::Eq(ValueExpr::Rel(p), _) => assert!(p.from_descendants),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contains_on_text_and_attr() {
        let x = parse("//a[contains(text(),'x') and contains(@k,'y')]").unwrap();
        match &x.paths[0].steps[0].predicates[0] {
            Expr::And(l, r) => {
                assert!(matches!(**l, Expr::Contains(ValueExpr::Text, _)));
                assert!(matches!(**r, Expr::Contains(ValueExpr::Attr(_), _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_name_is_existence() {
        let x = parse("//a[b]").unwrap();
        assert!(matches!(
            x.paths[0].steps[0].predicates[0],
            Expr::Exists(_)
        ));
    }

    #[test]
    fn text_alone_is_an_error_but_attr_is_existence() {
        assert!(parse("//a[text()]").is_err());
        let x = parse("//a[@k]").unwrap();
        assert!(matches!(
            x.paths[0].steps[0].predicates[0],
            Expr::AttrExists(_)
        ));
    }

    #[test]
    fn starts_with_parses() {
        let x = parse("//a[starts-with(b,'pre')]").unwrap();
        assert!(matches!(
            x.paths[0].steps[0].predicates[0],
            Expr::StartsWith(_, _)
        ));
    }

    #[test]
    fn union_parses_both_branches() {
        let x = parse("//a|//b[c='1']").unwrap();
        assert_eq!(x.paths.len(), 2);
    }

    #[test]
    fn deeply_nested_predicate_is_rejected_not_overflowed() {
        // 10 000 levels of `a[a[a[…]]]` must come back as a parse error
        // (stack-safe), not a stack overflow.
        let mut q = String::from("//a");
        for _ in 0..10_000 {
            q.push_str("[a");
        }
        q.push_str("='v'");
        for _ in 0..10_000 {
            q.push(']');
        }
        let err = parse(&q).unwrap_err();
        assert!(
            err.to_string().contains("depth limit"),
            "unexpected error: {err}"
        );
        // same for pathological not() and paren nesting
        let not_bomb = format!("//a[{}b='v'{}]", "not(".repeat(10_000), ")".repeat(10_000));
        assert!(parse(&not_bomb).is_err());
        let paren_bomb = format!("//a[{}b='v'{}]", "(".repeat(10_000), ")".repeat(10_000));
        assert!(parse(&paren_bomb).is_err());
    }

    #[test]
    fn moderate_nesting_still_parses() {
        // nesting well inside the limit keeps working
        let mut q = String::from("//a");
        for _ in 0..30 {
            q.push_str("[a");
        }
        q.push_str("='v'");
        for _ in 0..30 {
            q.push(']');
        }
        assert!(parse(&q).is_ok());
    }
}
