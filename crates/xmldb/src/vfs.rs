//! Filesystem abstraction used by the durability layer.
//!
//! All snapshot and journal I/O goes through a [`Vfs`] so that crash
//! behaviour can be tested deterministically: [`StdVfs`] maps straight to
//! `std::fs`, while [`FaultVfs`] is an in-memory filesystem that models
//! the durable/volatile split of a real disk (written bytes are *volatile*
//! until `sync`) and can inject a failure — or a torn write — at the Nth
//! mutating operation.
//!
//! The trait deliberately exposes low-level primitives (`write`, `append`,
//! `sync`, `rename`) rather than a single "atomically persist" call: the
//! atomic-snapshot and write-ahead protocols are implemented *above* the
//! trait, so every step of those protocols is a distinct injection point.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Filesystem operations needed by the journal and snapshot code.
///
/// `write` and `append` are **not** durable until a matching [`Vfs::sync`];
/// `rename` is atomic and considered durably recorded once it returns
/// (implementations must sync the parent directory where that matters).
pub trait Vfs: Send + Sync {
    /// Read a file's current contents. `NotFound` if it does not exist.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create or truncate `path` and write `bytes` (volatile until synced).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path`, creating it if absent (volatile until synced).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Make all previously written bytes of `path` durable (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` onto `to`, replacing any existing file.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file. Succeeds silently if it does not exist.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    fn sync_parent_dir(path: &Path) {
        // Make the rename itself durable. Failures are deliberately
        // ignored: directory fsync is not available on every platform,
        // and the rename has already happened.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        // fsync via a fresh write-capable handle (no truncation):
        // Windows' FlushFileBuffers requires write access, so an
        // O_RDONLY handle would not do. Write-then-reopen-to-sync is a
        // POSIX assumption (the page cache is shared across handles);
        // platforms where that does not hold need a stateful Vfs that
        // keeps the original handle.
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        Self::sync_parent_dir(to);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails with an I/O error and has no effect.
    Error,
    /// For `write`/`append`: only the first `keep` bytes of the buffer
    /// reach the disk — and are treated as durable, as a crashed flush
    /// would leave them — before the error is returned. For any other
    /// operation this behaves like [`FaultMode::Error`].
    Tear {
        /// How many bytes of the buffer survive.
        keep: usize,
    },
}

#[derive(Debug, Clone, Default)]
struct FileState {
    /// What a reader sees right now.
    content: Vec<u8>,
    /// What survives a crash. `None` means the file was never synced and
    /// vanishes entirely on crash.
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, FileState>,
    /// Count of mutating operations performed so far.
    ops: usize,
    /// One-shot faults keyed by the operation number they fire at.
    faults: BTreeMap<usize, FaultMode>,
    /// Sticky fault: every mutating op from `.0` onward fails with `.1`
    /// until [`FaultVfs::heal`] — models persistent ENOSPC / a dead disk /
    /// a killed process whose later writes never happen.
    sticky: Option<(usize, FaultMode)>,
}

/// An in-memory filesystem with crash semantics and fault injection.
///
/// Mutating operations (`write`, `append`, `sync`, `rename`, `remove`) are
/// numbered from 0. [`FaultVfs::fail_op`] arms a one-shot fault at a given
/// operation number; [`FaultVfs::crash`] simulates power loss, discarding
/// every byte that was not made durable by a `sync` (or carried through an
/// atomic `rename` of a synced file).
#[derive(Debug, Default)]
pub struct FaultVfs {
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// A fresh, empty in-memory filesystem with no armed fault.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a one-shot fault: the `op`-th mutating operation (0-based on
    /// the absolute counter) fails with `mode`. Multiple faults may be
    /// armed at distinct operation numbers; each fires once.
    pub fn fail_op(&self, op: usize, mode: FaultMode) {
        self.lock().faults.insert(op, mode);
    }

    /// Disarm all pending faults (one-shot and sticky).
    pub fn clear_fault(&self) {
        let mut st = self.lock();
        st.faults.clear();
        st.sticky = None;
    }

    /// Arm a sticky fault: every mutating operation from `op` (0-based on
    /// the absolute counter) onward fails with `mode` until [`heal`] is
    /// called. Models persistent faults — ENOSPC, a failing device — or a
    /// process kill at op `op` (nothing after it ever reaches the disk).
    ///
    /// [`heal`]: FaultVfs::heal
    pub fn fail_from(&self, op: usize, mode: FaultMode) {
        self.lock().sticky = Some((op, mode));
    }

    /// Clear any sticky fault armed by [`FaultVfs::fail_from`]; subsequent
    /// operations succeed again. One-shot faults are left armed.
    pub fn heal(&self) {
        self.lock().sticky = None;
    }

    /// Whether a sticky fault is currently active (armed and its start op
    /// has been reached).
    pub fn sticky_active(&self) -> bool {
        let st = self.lock();
        matches!(st.sticky, Some((from, _)) if st.ops >= from)
    }

    /// Number of mutating operations performed so far.
    pub fn op_count(&self) -> usize {
        self.lock().ops
    }

    /// Simulate power loss: volatile bytes are discarded, never-synced
    /// files disappear. Any armed fault is cleared (the "process" that
    /// armed it is gone).
    pub fn crash(&self) {
        let mut st = self.lock();
        st.faults.clear();
        st.sticky = None;
        let mut survivors = BTreeMap::new();
        for (path, file) in std::mem::take(&mut st.files) {
            if let Some(durable) = file.durable {
                survivors.insert(
                    path,
                    FileState {
                        content: durable.clone(),
                        durable: Some(durable),
                    },
                );
            }
        }
        st.files = survivors;
    }

    /// Directly overwrite a file's content *and* durable image — used by
    /// tests to model on-disk corruption (bit flips, truncated tails).
    pub fn corrupt(&self, path: &Path, bytes: Vec<u8>) {
        let mut st = self.lock();
        st.files.insert(
            path.to_path_buf(),
            FileState {
                content: bytes.clone(),
                durable: Some(bytes),
            },
        );
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A poisoned lock only means another test thread panicked; the
        // map itself is still structurally sound.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bump the op counter; if a fault is armed at this op, return its mode.
    /// One-shot faults take precedence over a sticky range (and are
    /// consumed either way).
    fn step(st: &mut FaultState) -> Option<FaultMode> {
        let op = st.ops;
        st.ops += 1;
        let once = st.faults.remove(&op);
        if once.is_some() {
            return once;
        }
        match st.sticky {
            Some((from, mode)) if op >= from => Some(mode),
            _ => None,
        }
    }

    fn injected(op: usize) -> io::Error {
        io::Error::other(format!("injected fault at op {op}"))
    }
}

/// One event in a [`FaultSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduledFault {
    /// One-shot fault at an absolute mutating-op number.
    Once {
        /// Operation number the fault fires at.
        op: usize,
        /// What the fault does.
        mode: FaultMode,
    },
    /// Sticky fault: every operation from `op` onward fails until healed.
    From {
        /// First operation number the fault covers.
        op: usize,
        /// What the fault does.
        mode: FaultMode,
    },
}

/// A deterministic, seed-derived plan of fault injections.
///
/// Crash campaigns generate one schedule per seed, [`arm`] it on a fresh
/// [`FaultVfs`], run a workload, crash, recover, and assert invariants.
/// The same seed always yields the same schedule, so a failing seed is a
/// complete reproducer.
///
/// [`arm`]: FaultSchedule::arm
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The scheduled events, in no particular order.
    pub events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// Derive a schedule from `seed`, with fault ops drawn from
    /// `[0, horizon)`. Produces 1–3 one-shot faults (error or torn write)
    /// and, for roughly a third of seeds, a sticky fault range.
    pub fn seeded(seed: u64, horizon: usize) -> Self {
        let mut rng = SplitMix::new(seed);
        let horizon = horizon.max(1);
        let mut events = Vec::new();
        let shots = 1 + (rng.next() % 3) as usize;
        for _ in 0..shots {
            let op = (rng.next() as usize) % horizon;
            let mode = if rng.next().is_multiple_of(2) {
                FaultMode::Error
            } else {
                FaultMode::Tear {
                    keep: (rng.next() % 64) as usize,
                }
            };
            events.push(ScheduledFault::Once { op, mode });
        }
        if rng.next().is_multiple_of(3) {
            let op = (rng.next() as usize) % horizon;
            events.push(ScheduledFault::From {
                op,
                mode: FaultMode::Error,
            });
        }
        Self { events }
    }

    /// Arm every event of this schedule on `vfs`. At most one sticky range
    /// is kept (the last `From` event wins — [`FaultVfs`] models a single
    /// persistent fault at a time).
    pub fn arm(&self, vfs: &FaultVfs) {
        for ev in &self.events {
            match *ev {
                ScheduledFault::Once { op, mode } => vfs.fail_op(op, mode),
                ScheduledFault::From { op, mode } => vfs.fail_from(op, mode),
            }
        }
    }
}

/// SplitMix64 — tiny deterministic PRNG for schedule derivation. Not for
/// cryptography; chosen because identical seeds must yield identical
/// schedules forever (the constants are fixed by the algorithm).
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.lock();
        st.files
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let op = st.ops;
        match Self::step(&mut st) {
            Some(FaultMode::Error) => Err(Self::injected(op)),
            Some(FaultMode::Tear { keep }) => {
                let kept = bytes[..keep.min(bytes.len())].to_vec();
                st.files.insert(
                    path.to_path_buf(),
                    FileState {
                        content: kept.clone(),
                        durable: Some(kept),
                    },
                );
                Err(Self::injected(op))
            }
            None => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.content = bytes.to_vec();
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let op = st.ops;
        match Self::step(&mut st) {
            Some(FaultMode::Error) => Err(Self::injected(op)),
            Some(FaultMode::Tear { keep }) => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.content.extend_from_slice(&bytes[..keep.min(bytes.len())]);
                file.durable = Some(file.content.clone());
                Err(Self::injected(op))
            }
            None => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.content.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let op = st.ops;
        if Self::step(&mut st).is_some() {
            return Err(Self::injected(op));
        }
        match st.files.get_mut(path) {
            Some(file) => {
                file.durable = Some(file.content.clone());
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let op = st.ops;
        if Self::step(&mut st).is_some() {
            return Err(Self::injected(op));
        }
        match st.files.remove(from) {
            Some(file) => {
                // The rename is durably recorded, but the *data* keeps its
                // synced/unsynced status: renaming a never-synced file and
                // crashing loses it — exactly the bug an atomic-save
                // protocol that skips fsync would have.
                st.files.insert(to.to_path_buf(), file);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let op = st.ops;
        if Self::step(&mut st).is_some() {
            return Err(Self::injected(op));
        }
        st.files.remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_writes_vanish_on_crash() {
        let fs = FaultVfs::new();
        fs.write(&p("a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello");
        fs.crash();
        assert!(!fs.exists(&p("a")));
    }

    #[test]
    fn synced_writes_survive_crash() {
        let fs = FaultVfs::new();
        fs.write(&p("a"), b"hello").unwrap();
        fs.sync(&p("a")).unwrap();
        fs.append(&p("a"), b" world").unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello");
    }

    #[test]
    fn rename_of_unsynced_file_is_lost_on_crash() {
        let fs = FaultVfs::new();
        fs.write(&p("tmp"), b"data").unwrap();
        fs.rename(&p("tmp"), &p("final")).unwrap();
        fs.crash();
        assert!(!fs.exists(&p("final")));
        assert!(!fs.exists(&p("tmp")));
    }

    #[test]
    fn rename_of_synced_file_survives_crash() {
        let fs = FaultVfs::new();
        fs.write(&p("tmp"), b"data").unwrap();
        fs.sync(&p("tmp")).unwrap();
        fs.rename(&p("tmp"), &p("final")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("final")).unwrap(), b"data");
        assert!(!fs.exists(&p("tmp")));
    }

    #[test]
    fn fault_fires_once_at_exact_op() {
        let fs = FaultVfs::new();
        fs.write(&p("a"), b"1").unwrap(); // op 0
        fs.fail_op(1, FaultMode::Error);
        assert!(fs.write(&p("a"), b"2").is_err()); // op 1 fails
        assert_eq!(fs.read(&p("a")).unwrap(), b"1", "failed op had no effect");
        fs.write(&p("a"), b"3").unwrap(); // op 2 fine again
        assert_eq!(fs.op_count(), 3);
    }

    #[test]
    fn torn_append_keeps_prefix_durably() {
        let fs = FaultVfs::new();
        fs.append(&p("log"), b"aaaa").unwrap();
        fs.sync(&p("log")).unwrap();
        fs.fail_op(2, FaultMode::Tear { keep: 2 });
        assert!(fs.append(&p("log"), b"bbbb").is_err());
        fs.crash();
        assert_eq!(fs.read(&p("log")).unwrap(), b"aaaabb");
    }

    #[test]
    fn sticky_fault_persists_until_heal() {
        let fs = FaultVfs::new();
        fs.write(&p("a"), b"1").unwrap(); // op 0
        fs.fail_from(1, FaultMode::Error);
        assert!(fs.write(&p("a"), b"2").is_err()); // op 1
        assert!(fs.sync(&p("a")).is_err()); // op 2 — still failing
        assert!(fs.sticky_active());
        fs.heal();
        fs.write(&p("a"), b"3").unwrap(); // op 3 fine again
        assert_eq!(fs.read(&p("a")).unwrap(), b"3");
        assert!(!fs.sticky_active());
    }

    #[test]
    fn one_shot_takes_precedence_inside_sticky_range() {
        let fs = FaultVfs::new();
        fs.fail_from(0, FaultMode::Error);
        fs.fail_op(0, FaultMode::Tear { keep: 1 });
        // The one-shot tear fires (and keeps a byte); the sticky range
        // then covers the next op.
        assert!(fs.append(&p("log"), b"xy").is_err());
        fs.heal();
        fs.crash();
        assert_eq!(fs.read(&p("log")).unwrap(), b"x");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for seed in 0..32u64 {
            let a = FaultSchedule::seeded(seed, 100);
            let b = FaultSchedule::seeded(seed, 100);
            assert_eq!(a, b, "seed {seed} must reproduce its schedule");
            assert!(!a.events.is_empty());
        }
        assert_ne!(
            FaultSchedule::seeded(1, 100),
            FaultSchedule::seeded(2, 100),
            "distinct seeds should (here) give distinct schedules"
        );
    }

    #[test]
    fn armed_schedule_fires() {
        let fs = FaultVfs::new();
        FaultSchedule {
            events: vec![ScheduledFault::Once {
                op: 0,
                mode: FaultMode::Error,
            }],
        }
        .arm(&fs);
        assert!(fs.write(&p("a"), b"x").is_err());
        fs.write(&p("a"), b"x").unwrap();
    }

    #[test]
    fn remove_missing_is_error_free_on_std_only() {
        // FaultVfs::remove also tolerates missing files.
        let fs = FaultVfs::new();
        fs.remove(&p("nope")).unwrap();
    }

    #[test]
    fn std_vfs_round_trip() {
        let dir = std::env::temp_dir().join("toss-vfs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("f.bin");
        let fs = StdVfs;
        fs.write(&file, b"abc").unwrap();
        fs.append(&file, b"def").unwrap();
        fs.sync(&file).unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"abcdef");
        let dst = dir.join("g.bin");
        fs.rename(&file, &dst).unwrap();
        assert!(fs.exists(&dst) && !fs.exists(&file));
        fs.remove(&dst).unwrap();
        fs.remove(&dst).unwrap(); // second remove is a no-op
    }
}
