//! Inverted indexes over a collection.
//!
//! Two postings structures accelerate the XPath engine:
//!
//! * **tag index** — tag name → list of `(document, node)` pairs, used by
//!   the descendant axis (`//tag`) so it never scans unrelated subtrees;
//! * **content index** — `(tag, exact content)` → postings, used for
//!   equality predicates like `[author='J. Ullman']`. Stored as a nested
//!   tag → content → postings map so the hot probe
//!   ([`CollectionIndex::by_tag_content`]) is two borrowed lookups and
//!   zero allocations.
//!
//! Postings are kept in document order (documents in insertion order,
//! nodes in preorder) so merged results preserve the order TAX requires.
//!
//! A collection answers probes from one of two interchangeable backends
//! behind the [`IndexView`] facade: this live pointer index, or a frozen
//! zero-copy [`segidx::FrozenIndex`] loaded from a `.seg` snapshot
//! sidecar (see [`crate::segidx`]). Callers never see which one they hit;
//! postings come back as [`Postings`], identical in content and order
//! from either side.

use crate::collection::DocumentId;
use crate::segidx::FrozenIndex;
use std::collections::HashMap;
use toss_tree::{NodeId, Tree};

/// A posting: one node in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Posting {
    /// Which document.
    pub doc: DocumentId,
    /// Which node within that document's tree.
    pub node: NodeId,
}

/// The index keys one document contributed, recorded at insert time so
/// removal touches exactly those postings lists instead of sweeping the
/// whole index.
#[derive(Debug, Default)]
struct DocKeys {
    tags: Vec<String>,
    contents: Vec<(String, String)>,
}

/// Inverted indexes for one collection.
#[derive(Debug, Default)]
pub struct CollectionIndex {
    tag: HashMap<String, Vec<Posting>>,
    content: HashMap<String, HashMap<String, Vec<Posting>>>,
    doc_keys: HashMap<DocumentId, DocKeys>,
}

impl CollectionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index every node of `tree` under document id `doc`.
    pub fn add_document(&mut self, doc: DocumentId, tree: &Tree) {
        let keys = self.doc_keys.entry(doc).or_default();
        for node in tree.preorder() {
            let Ok(data) = tree.data(node) else { continue };
            let posting = Posting { doc, node };
            let list = self.tag.entry(data.tag.clone()).or_default();
            // postings for one document are contiguous, so "first
            // contribution to this list" is one tail check
            if list.last().map(|p| p.doc) != Some(doc) {
                keys.tags.push(data.tag.clone());
            }
            list.push(posting);
            if let Some(c) = &data.content {
                let rendered = c.render();
                let list = self
                    .content
                    .entry(data.tag.clone())
                    .or_default()
                    .entry(rendered.clone())
                    .or_default();
                if list.last().map(|p| p.doc) != Some(doc) {
                    keys.contents.push((data.tag.clone(), rendered));
                }
                list.push(posting);
            }
        }
    }

    /// Drop all postings for a document — touching only the keys the
    /// document actually contributed (recorded at insert time).
    pub fn remove_document(&mut self, doc: DocumentId) {
        let Some(keys) = self.doc_keys.remove(&doc) else { return };
        for tag in keys.tags {
            if let Some(v) = self.tag.get_mut(&tag) {
                v.retain(|p| p.doc != doc);
                if v.is_empty() {
                    self.tag.remove(&tag);
                }
            }
        }
        for (tag, content) in keys.contents {
            if let Some(inner) = self.content.get_mut(&tag) {
                if let Some(v) = inner.get_mut(&content) {
                    v.retain(|p| p.doc != doc);
                    if v.is_empty() {
                        inner.remove(&content);
                    }
                }
                if inner.is_empty() {
                    self.content.remove(&tag);
                }
            }
        }
    }

    /// All nodes with the given tag, in document order.
    pub fn by_tag(&self, tag: &str) -> &[Posting] {
        self.tag.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All nodes with the given tag and exact content rendering.
    /// Allocation-free: two borrowed map lookups.
    pub fn by_tag_content(&self, tag: &str, content: &str) -> &[Posting] {
        self.content
            .get(tag)
            .and_then(|m| m.get(content))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Batched multi-term probe: all nodes whose tag is `tag` and whose
    /// content renders as *any* of `terms`, merged into one
    /// document-order postings list. This is the SEO fast path — a
    /// rewritten predicate with N expanded terms becomes one merged
    /// lookup instead of N separate probes (or N full scans).
    pub fn by_tag_content_any<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> Vec<Posting> {
        let mut merged: Vec<Posting> = Vec::new();
        for term in terms {
            merged.extend_from_slice(self.by_tag_content(tag, term.as_ref()));
        }
        merged.sort();
        merged.dedup();
        merged
    }

    /// The distinct documents holding a `tag` node whose content is any
    /// of `terms`, in document order. The candidate set an index-probe
    /// query plan feeds to the doc-filtered evaluator.
    pub fn docs_with_tag_content_any<S: AsRef<str>>(
        &self,
        tag: &str,
        terms: &[S],
    ) -> Vec<DocumentId> {
        let mut docs: Vec<DocumentId> = self
            .by_tag_content_any(tag, terms)
            .into_iter()
            .map(|p| p.doc)
            .collect();
        docs.dedup(); // merged postings are already in document order
        docs
    }

    /// Total postings for `(tag, term)` pairs across `terms` — the
    /// planner's selectivity estimate, cheaper than materializing the
    /// merge (no sort, no dedup).
    pub fn tag_content_any_len<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> usize {
        terms
            .iter()
            .map(|t| self.by_tag_content(tag, t.as_ref()).len())
            .sum()
    }

    /// Distinct indexed tags.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.tag.keys().map(String::as_str)
    }

    /// Distinct `(tag, content)` pairs — the raw material the Ontology
    /// Maker mines for terms.
    pub fn tag_content_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.content
            .iter()
            .flat_map(|(t, m)| m.keys().map(move |c| (t.as_str(), c.as_str())))
    }

    /// Number of distinct indexed tags.
    pub fn tag_count(&self) -> usize {
        self.tag.len()
    }

    /// Approximate resident heap bytes of this pointer index: string
    /// keys, postings vectors, per-entry map overhead, and the
    /// reverse-key lists. An estimate for the `toss.index.pointer_bytes`
    /// gauge and the bench comparison, not an allocator ledger.
    pub fn approx_bytes(&self) -> usize {
        // String ≈ 24B header + capacity; Vec<Posting> ≈ 24B + 16B/elem;
        // hash-map entry bookkeeping ≈ 48B.
        const STR: usize = 24;
        const VEC: usize = 24;
        const ENTRY: usize = 48;
        let mut total = 0;
        for (k, v) in &self.tag {
            total += ENTRY + STR + k.len() + VEC + v.len() * std::mem::size_of::<Posting>();
        }
        for (t, m) in &self.content {
            total += ENTRY + STR + t.len() + 48; // inner map header
            for (c, v) in m {
                total += ENTRY + STR + c.len() + VEC + v.len() * std::mem::size_of::<Posting>();
            }
        }
        for (_, keys) in self.doc_keys.iter() {
            total += ENTRY + 8 + 2 * VEC;
            total += keys.tags.iter().map(|t| STR + t.len()).sum::<usize>();
            total += keys
                .contents
                .iter()
                .map(|(t, c)| 2 * STR + t.len() + c.len())
                .sum::<usize>();
        }
        total
    }
}

/// A postings list from either index backend: a borrowed slice from the
/// pointer index, or a compressed block decoded on the fly from a frozen
/// segment. Same contents, same (document, preorder) order.
#[derive(Debug, Clone, Copy)]
pub enum Postings<'a> {
    /// Borrowed from the live pointer index.
    Slice(&'a [Posting]),
    /// Decoded lazily from a frozen segment block (`None` = absent key).
    Block(Option<toss_segment::PostingsBlock<'a>>),
}

impl<'a> Postings<'a> {
    /// Number of postings — O(1) for both backends.
    pub fn len(&self) -> usize {
        match self {
            Postings::Slice(s) => s.len(),
            Postings::Block(b) => b.map(|b| b.len()).unwrap_or(0),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the postings in document order.
    pub fn iter(&self) -> PostingsIter<'a> {
        match self {
            Postings::Slice(s) => PostingsIter::Slice(s.iter()),
            // raw-encoded blocks (the tag map) iterate their key bytes
            // directly — chunked slice traversal instead of per-element
            // encoding dispatch
            Postings::Block(Some(b)) => match b.raw_key_bytes() {
                Some(bytes) => PostingsIter::RawBlock(bytes.chunks_exact(8)),
                None => PostingsIter::Block(b.iter()),
            },
            Postings::Block(None) => PostingsIter::Slice([].iter()),
        }
    }

    /// Materialize into a vector.
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for Postings<'a> {
    type Item = Posting;
    type IntoIter = PostingsIter<'a>;
    fn into_iter(self) -> PostingsIter<'a> {
        self.iter()
    }
}

/// Iterator over [`Postings`], yielding postings by value.
#[derive(Debug, Clone)]
pub enum PostingsIter<'a> {
    /// Over a pointer-index slice.
    Slice(std::slice::Iter<'a, Posting>),
    /// Over a frozen segment block (compressed encodings).
    Block(toss_segment::postings::PostingsIter<'a>),
    /// Over a raw-encoded frozen block's key bytes, at slice speed.
    RawBlock(std::slice::ChunksExact<'a, u8>),
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;
    #[inline]
    fn next(&mut self) -> Option<Posting> {
        match self {
            PostingsIter::Slice(it) => it.next().copied(),
            PostingsIter::Block(it) => it.next().map(crate::segidx::posting_from_key),
            PostingsIter::RawBlock(it) => it.next().map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                crate::segidx::posting_from_key(u64::from_le_bytes(a))
            }),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PostingsIter::Slice(it) => it.size_hint(),
            PostingsIter::Block(it) => it.size_hint(),
            PostingsIter::RawBlock(it) => it.size_hint(),
        }
    }
}

/// Read-only facade over whichever index backend a collection currently
/// has: the live pointer index, or a frozen segment. Copyable; obtained
/// from [`crate::Collection::index`]. Semantics are identical across
/// backends — same postings, same order — which the equivalence proptest
/// and the bench assertions both enforce.
#[derive(Debug, Clone, Copy)]
pub enum IndexView<'a> {
    /// The live pointer index.
    Pointer(&'a CollectionIndex),
    /// A frozen segment-backed index.
    Frozen(&'a FrozenIndex),
}

impl<'a> IndexView<'a> {
    /// All nodes with the given tag, in document order.
    pub fn by_tag(&self, tag: &str) -> Postings<'a> {
        match self {
            IndexView::Pointer(ix) => Postings::Slice(ix.by_tag(tag)),
            IndexView::Frozen(f) => f.by_tag(tag),
        }
    }

    /// All nodes with the given tag and exact content rendering.
    pub fn by_tag_content(&self, tag: &str, content: &str) -> Postings<'a> {
        match self {
            IndexView::Pointer(ix) => Postings::Slice(ix.by_tag_content(tag, content)),
            IndexView::Frozen(f) => f.by_tag_content(tag, content),
        }
    }

    /// Merged multi-term probe; see [`CollectionIndex::by_tag_content_any`].
    pub fn by_tag_content_any<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> Vec<Posting> {
        match self {
            IndexView::Pointer(ix) => ix.by_tag_content_any(tag, terms),
            IndexView::Frozen(_) => {
                let mut merged: Vec<Posting> = Vec::new();
                for term in terms {
                    merged.extend(self.by_tag_content(tag, term.as_ref()).iter());
                }
                merged.sort();
                merged.dedup();
                merged
            }
        }
    }

    /// Candidate documents for a multi-term probe; see
    /// [`CollectionIndex::docs_with_tag_content_any`].
    pub fn docs_with_tag_content_any<S: AsRef<str>>(
        &self,
        tag: &str,
        terms: &[S],
    ) -> Vec<DocumentId> {
        let mut docs: Vec<DocumentId> = self
            .by_tag_content_any(tag, terms)
            .into_iter()
            .map(|p| p.doc)
            .collect();
        docs.dedup();
        docs
    }

    /// Planner selectivity estimate; see
    /// [`CollectionIndex::tag_content_any_len`]. O(terms) on both
    /// backends (frozen blocks carry their length in the header).
    pub fn tag_content_any_len<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> usize {
        terms
            .iter()
            .map(|t| self.by_tag_content(tag, t.as_ref()).len())
            .sum()
    }

    /// Number of distinct indexed tags.
    pub fn tag_count(&self) -> usize {
        match self {
            IndexView::Pointer(ix) => ix.tag_count(),
            IndexView::Frozen(f) => f.tag_count(),
        }
    }

    /// Whether this view reads from a frozen segment.
    pub fn is_frozen(&self) -> bool {
        matches!(self, IndexView::Frozen(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_tree::TreeBuilder;

    fn tree(author: &str) -> Tree {
        TreeBuilder::new("inproceedings")
            .leaf("author", author)
            .leaf("year", "1999")
            .build()
    }

    #[test]
    fn tag_postings_in_document_order() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        let p = idx.by_tag("author");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].doc, DocumentId(0));
        assert_eq!(p[1].doc, DocumentId(1));
        assert_eq!(idx.by_tag("inproceedings").len(), 2);
        assert_eq!(idx.by_tag("missing").len(), 0);
    }

    #[test]
    fn content_postings_require_exact_match() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("J. Ullman"));
        assert_eq!(idx.by_tag_content("author", "J. Ullman").len(), 1);
        assert_eq!(idx.by_tag_content("author", "J Ullman").len(), 0);
        assert_eq!(idx.by_tag_content("year", "1999").len(), 1);
    }

    #[test]
    fn multi_term_probe_merges_in_document_order() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("B"));
        idx.add_document(DocumentId(1), &tree("A"));
        idx.add_document(DocumentId(2), &tree("B"));
        idx.add_document(DocumentId(3), &tree("C"));
        let merged = idx.by_tag_content_any("author", &["A", "B", "A"]);
        assert_eq!(
            merged.iter().map(|p| p.doc).collect::<Vec<_>>(),
            vec![DocumentId(0), DocumentId(1), DocumentId(2)],
            "doc order, duplicate query terms deduplicated"
        );
        assert_eq!(
            idx.docs_with_tag_content_any("author", &["A", "B"]),
            vec![DocumentId(0), DocumentId(1), DocumentId(2)]
        );
        // selectivity estimate counts raw postings (duplicate terms and all)
        assert_eq!(idx.tag_content_any_len("author", &["A", "B"]), 3);
        assert!(idx.by_tag_content_any("author", &["Z"]).is_empty());
        assert!(idx.by_tag_content_any::<&str>("author", &[]).is_empty());
    }

    #[test]
    fn remove_document_clears_postings() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        idx.remove_document(DocumentId(0));
        assert_eq!(idx.by_tag("author").len(), 1);
        assert_eq!(idx.by_tag_content("author", "A").len(), 0);
        assert_eq!(idx.by_tag_content("author", "B").len(), 1);
    }

    #[test]
    fn remove_document_drops_emptied_keys_entirely() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        idx.remove_document(DocumentId(0));
        // "A" was only in doc 0: its key (and no other) is gone
        assert!(!idx.tag_content_pairs().any(|(_, c)| c == "A"));
        assert!(idx.tag_content_pairs().any(|(_, c)| c == "B"));
        idx.remove_document(DocumentId(1));
        assert_eq!(idx.tag_count(), 0);
        assert_eq!(idx.tag_content_pairs().count(), 0);
        // removing an unknown document is a no-op
        idx.remove_document(DocumentId(7));
    }

    #[test]
    fn tag_content_pairs_enumerates_terms() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        let pairs: Vec<_> = idx.tag_content_pairs().collect();
        assert!(pairs.contains(&("author", "A")));
        assert!(pairs.contains(&("year", "1999")));
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut idx = CollectionIndex::new();
        let empty = idx.approx_bytes();
        idx.add_document(DocumentId(0), &tree("A"));
        let one = idx.approx_bytes();
        assert!(one > empty);
        idx.add_document(DocumentId(1), &tree("B"));
        assert!(idx.approx_bytes() > one);
    }

    #[test]
    fn view_over_pointer_index_matches_direct_calls() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        let view = IndexView::Pointer(&idx);
        assert!(!view.is_frozen());
        assert_eq!(view.by_tag("author").len(), 2);
        assert_eq!(view.by_tag("author").to_vec(), idx.by_tag("author"));
        assert_eq!(view.by_tag_content("author", "A").len(), 1);
        assert_eq!(
            view.by_tag_content_any("author", &["A", "B"]),
            idx.by_tag_content_any("author", &["A", "B"])
        );
        assert_eq!(
            view.docs_with_tag_content_any("author", &["B"]),
            vec![DocumentId(1)]
        );
        assert_eq!(view.tag_content_any_len("author", &["A", "B"]), 2);
        assert_eq!(view.tag_count(), idx.tag_count());
        // iteration yields postings by value
        let nodes: Vec<usize> = view.by_tag("year").iter().map(|p| p.node.index()).collect();
        assert_eq!(nodes.len(), 2);
    }
}
