//! Inverted indexes over a collection.
//!
//! Two postings structures accelerate the XPath engine:
//!
//! * **tag index** — tag name → list of `(document, node)` pairs, used by
//!   the descendant axis (`//tag`) so it never scans unrelated subtrees;
//! * **content index** — `(tag, exact content)` → postings, used for
//!   equality predicates like `[author='J. Ullman']`.
//!
//! Postings are kept in document order (documents in insertion order,
//! nodes in preorder) so merged results preserve the order TAX requires.

use crate::collection::DocumentId;
use std::collections::HashMap;
use toss_tree::{NodeId, Tree};

/// A posting: one node in one document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Posting {
    /// Which document.
    pub doc: DocumentId,
    /// Which node within that document's tree.
    pub node: NodeId,
}

/// Inverted indexes for one collection.
#[derive(Debug, Default)]
pub struct CollectionIndex {
    tag: HashMap<String, Vec<Posting>>,
    content: HashMap<(String, String), Vec<Posting>>,
}

impl CollectionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index every node of `tree` under document id `doc`.
    pub fn add_document(&mut self, doc: DocumentId, tree: &Tree) {
        for node in tree.preorder() {
            let Ok(data) = tree.data(node) else { continue };
            let posting = Posting { doc, node };
            self.tag.entry(data.tag.clone()).or_default().push(posting);
            if let Some(c) = &data.content {
                self.content
                    .entry((data.tag.clone(), c.render()))
                    .or_default()
                    .push(posting);
            }
        }
    }

    /// Drop all postings for a document (linear sweep; removal is rare in
    /// the workloads this store serves).
    pub fn remove_document(&mut self, doc: DocumentId) {
        for v in self.tag.values_mut() {
            v.retain(|p| p.doc != doc);
        }
        for v in self.content.values_mut() {
            v.retain(|p| p.doc != doc);
        }
        self.tag.retain(|_, v| !v.is_empty());
        self.content.retain(|_, v| !v.is_empty());
    }

    /// All nodes with the given tag, in document order.
    pub fn by_tag(&self, tag: &str) -> &[Posting] {
        self.tag.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All nodes with the given tag and exact content rendering.
    pub fn by_tag_content(&self, tag: &str, content: &str) -> &[Posting] {
        self.content
            .get(&(tag.to_string(), content.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Batched multi-term probe: all nodes whose tag is `tag` and whose
    /// content renders as *any* of `terms`, merged into one
    /// document-order postings list. This is the SEO fast path — a
    /// rewritten predicate with N expanded terms becomes one merged
    /// lookup instead of N separate probes (or N full scans).
    pub fn by_tag_content_any<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> Vec<Posting> {
        let mut merged: Vec<Posting> = Vec::new();
        for term in terms {
            merged.extend_from_slice(self.by_tag_content(tag, term.as_ref()));
        }
        merged.sort();
        merged.dedup();
        merged
    }

    /// The distinct documents holding a `tag` node whose content is any
    /// of `terms`, in document order. The candidate set an index-probe
    /// query plan feeds to the doc-filtered evaluator.
    pub fn docs_with_tag_content_any<S: AsRef<str>>(
        &self,
        tag: &str,
        terms: &[S],
    ) -> Vec<DocumentId> {
        let mut docs: Vec<DocumentId> = self
            .by_tag_content_any(tag, terms)
            .into_iter()
            .map(|p| p.doc)
            .collect();
        docs.dedup(); // merged postings are already in document order
        docs
    }

    /// Total postings for `(tag, term)` pairs across `terms` — the
    /// planner's selectivity estimate, cheaper than materializing the
    /// merge (no sort, no dedup).
    pub fn tag_content_any_len<S: AsRef<str>>(&self, tag: &str, terms: &[S]) -> usize {
        terms
            .iter()
            .map(|t| self.by_tag_content(tag, t.as_ref()).len())
            .sum()
    }

    /// Distinct indexed tags.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.tag.keys().map(String::as_str)
    }

    /// Distinct `(tag, content)` pairs — the raw material the Ontology
    /// Maker mines for terms.
    pub fn tag_content_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.content.keys().map(|(t, c)| (t.as_str(), c.as_str()))
    }

    /// Number of distinct indexed tags.
    pub fn tag_count(&self) -> usize {
        self.tag.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_tree::TreeBuilder;

    fn tree(author: &str) -> Tree {
        TreeBuilder::new("inproceedings")
            .leaf("author", author)
            .leaf("year", "1999")
            .build()
    }

    #[test]
    fn tag_postings_in_document_order() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        let p = idx.by_tag("author");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].doc, DocumentId(0));
        assert_eq!(p[1].doc, DocumentId(1));
        assert_eq!(idx.by_tag("inproceedings").len(), 2);
        assert_eq!(idx.by_tag("missing").len(), 0);
    }

    #[test]
    fn content_postings_require_exact_match() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("J. Ullman"));
        assert_eq!(idx.by_tag_content("author", "J. Ullman").len(), 1);
        assert_eq!(idx.by_tag_content("author", "J Ullman").len(), 0);
        assert_eq!(idx.by_tag_content("year", "1999").len(), 1);
    }

    #[test]
    fn multi_term_probe_merges_in_document_order() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("B"));
        idx.add_document(DocumentId(1), &tree("A"));
        idx.add_document(DocumentId(2), &tree("B"));
        idx.add_document(DocumentId(3), &tree("C"));
        let merged = idx.by_tag_content_any("author", &["A", "B", "A"]);
        assert_eq!(
            merged.iter().map(|p| p.doc).collect::<Vec<_>>(),
            vec![DocumentId(0), DocumentId(1), DocumentId(2)],
            "doc order, duplicate query terms deduplicated"
        );
        assert_eq!(
            idx.docs_with_tag_content_any("author", &["A", "B"]),
            vec![DocumentId(0), DocumentId(1), DocumentId(2)]
        );
        // selectivity estimate counts raw postings (duplicate terms and all)
        assert_eq!(idx.tag_content_any_len("author", &["A", "B"]), 3);
        assert!(idx.by_tag_content_any("author", &["Z"]).is_empty());
        assert!(idx.by_tag_content_any::<&str>("author", &[]).is_empty());
    }

    #[test]
    fn remove_document_clears_postings() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        idx.add_document(DocumentId(1), &tree("B"));
        idx.remove_document(DocumentId(0));
        assert_eq!(idx.by_tag("author").len(), 1);
        assert_eq!(idx.by_tag_content("author", "A").len(), 0);
        assert_eq!(idx.by_tag_content("author", "B").len(), 1);
    }

    #[test]
    fn tag_content_pairs_enumerates_terms() {
        let mut idx = CollectionIndex::new();
        idx.add_document(DocumentId(0), &tree("A"));
        let pairs: Vec<_> = idx.tag_content_pairs().collect();
        assert!(pairs.contains(&("author", "A")));
        assert!(pairs.contains(&("year", "1999")));
    }
}
