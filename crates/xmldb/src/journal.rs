//! Append-only write-ahead journal.
//!
//! Every mutation of a [`crate::durable::DurableDatabase`] is appended
//! here — and fsynced — *before* it is applied in memory, so a crash at
//! any point loses at most the operation whose record never became
//! durable.
//!
//! ## On-disk format
//!
//! The file starts with the 8-byte magic `TOSSWAL1`, followed by zero or
//! more records:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! The payload is the compact JSON encoding of a sequence number plus a
//! [`JournalOp`]. Sequence numbers are assigned monotonically and never
//! reused, even across [`Journal::reset`]; snapshots record the last
//! sequence they contain, which makes checkpointing crash-idempotent — a
//! crash between "snapshot written" and "journal truncated" merely leaves
//! records that replay skips as already-applied.
//!
//! Reading distinguishes two failure shapes:
//!
//! * **Torn tail** — the file ends mid-record (fewer than 8 header bytes,
//!   or fewer payload bytes than the header promises). This is the
//!   expected residue of a crash during an append and is *not* an error:
//!   the valid prefix is returned and the tail's byte count reported so
//!   the caller can truncate it.
//! * **Corruption** — a structurally complete record whose CRC does not
//!   match, or a bad magic. This means bytes that were once durable have
//!   been damaged; it surfaces as [`DbError::Corruption`].

use crate::crc32::crc32;
use crate::error::{DbError, DbResult};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use toss_json::Value;

/// Magic bytes identifying a TOSS write-ahead journal, version 1.
pub const JOURNAL_MAGIC: &[u8; 8] = b"TOSSWAL1";

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// `create_collection(name)`.
    CreateCollection {
        /// Collection name.
        name: String,
    },
    /// `drop_collection(name)`.
    DropCollection {
        /// Collection name.
        name: String,
    },
    /// Insert a document (stored as its compact XML serialization).
    Insert {
        /// Target collection.
        collection: String,
        /// Compact XML of the document.
        xml: String,
    },
    /// Remove a document by id.
    Remove {
        /// Target collection.
        collection: String,
        /// The document id.
        doc_id: u64,
    },
    /// Replace a document's content, keeping its id.
    Replace {
        /// Target collection.
        collection: String,
        /// The document id.
        doc_id: u64,
        /// Compact XML of the new content.
        xml: String,
    },
    /// Add ontology terms (one hierarchy node per term, if absent). A
    /// store no-op: replayed into the serving ontology, not the database.
    AddTerm {
        /// The terms to add.
        terms: Vec<String>,
    },
    /// Assert `below ≤ above` in the ontology, creating the term nodes as
    /// needed. A store no-op, like [`JournalOp::AddTerm`].
    AddEdge {
        /// The lesser term.
        below: String,
        /// The greater term.
        above: String,
    },
    /// No effect anywhere. Appended as a durability probe: a `Noop` that
    /// journals + fsyncs successfully proves the write path is healthy
    /// (used by the degraded-mode self-heal loop).
    Noop,
}

/// A sequenced journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic sequence number (never reused across resets).
    pub seq: u64,
    /// The logged operation.
    pub op: JournalOp,
    /// Client-generated idempotency key the op was committed under, if
    /// any. Journaled with the record so a restarted server can rebuild
    /// its dedupe table from the journal tail — a retry of a write that
    /// was acknowledged just before a crash still dedupes.
    pub key: Option<String>,
}

/// Encode a record as a compact JSON payload.
fn encode_payload(seq: u64, op: &JournalOp, key: Option<&str>) -> Vec<u8> {
    let mut fields: Vec<(&str, Value)> = vec![("seq", seq.into())];
    if let Some(key) = key {
        fields.push(("key", key.into()));
    }
    match op {
        JournalOp::CreateCollection { name } => {
            fields.push(("op", "create".into()));
            fields.push(("collection", name.as_str().into()));
        }
        JournalOp::DropCollection { name } => {
            fields.push(("op", "drop".into()));
            fields.push(("collection", name.as_str().into()));
        }
        JournalOp::Insert { collection, xml } => {
            fields.push(("op", "insert".into()));
            fields.push(("collection", collection.as_str().into()));
            fields.push(("xml", xml.as_str().into()));
        }
        JournalOp::Remove { collection, doc_id } => {
            fields.push(("op", "remove".into()));
            fields.push(("collection", collection.as_str().into()));
            fields.push(("doc", (*doc_id).into()));
        }
        JournalOp::Replace {
            collection,
            doc_id,
            xml,
        } => {
            fields.push(("op", "replace".into()));
            fields.push(("collection", collection.as_str().into()));
            fields.push(("doc", (*doc_id).into()));
            fields.push(("xml", xml.as_str().into()));
        }
        JournalOp::AddTerm { terms } => {
            fields.push(("op", "add_term".into()));
            fields.push((
                "terms",
                Value::Array(terms.iter().map(|t| t.as_str().into()).collect()),
            ));
        }
        JournalOp::AddEdge { below, above } => {
            fields.push(("op", "add_edge".into()));
            fields.push(("below", below.as_str().into()));
            fields.push(("above", above.as_str().into()));
        }
        JournalOp::Noop => {
            fields.push(("op", "noop".into()));
        }
    }
    Value::object(fields).to_json().into_bytes()
}

/// Decode a payload produced by [`encode_payload`].
fn decode_payload(payload: &[u8]) -> DbResult<JournalRecord> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| DbError::journal_corruption("record payload is not UTF-8"))?;
    let value = Value::parse(text)
        .map_err(|e| DbError::journal_corruption(format!("record payload is not JSON: {e}")))?;
    let field = |name: &str| -> DbResult<&Value> {
        value
            .get(name)
            .ok_or_else(|| DbError::journal_corruption(format!("record missing field `{name}`")))
    };
    let str_field = |name: &str| -> DbResult<String> {
        field(name)?.as_str().map(str::to_string).ok_or_else(|| {
            DbError::journal_corruption(format!("record field `{name}` is not a string"))
        })
    };
    let int_field = |name: &str| -> DbResult<u64> {
        field(name)?
            .as_i64()
            .and_then(|v| u64::try_from(v).ok())
            .ok_or_else(|| {
                DbError::journal_corruption(format!(
                    "record field `{name}` is not a non-negative integer"
                ))
            })
    };
    let seq = int_field("seq")?;
    let op = match str_field("op")?.as_str() {
        "create" => JournalOp::CreateCollection {
            name: str_field("collection")?,
        },
        "drop" => JournalOp::DropCollection {
            name: str_field("collection")?,
        },
        "insert" => JournalOp::Insert {
            collection: str_field("collection")?,
            xml: str_field("xml")?,
        },
        "remove" => JournalOp::Remove {
            collection: str_field("collection")?,
            doc_id: int_field("doc")?,
        },
        "replace" => JournalOp::Replace {
            collection: str_field("collection")?,
            doc_id: int_field("doc")?,
            xml: str_field("xml")?,
        },
        "add_term" => {
            let items = field("terms")?.as_array().ok_or_else(|| {
                DbError::journal_corruption("record field `terms` is not an array")
            })?;
            let mut terms = Vec::with_capacity(items.len());
            for item in items {
                terms.push(item.as_str().map(str::to_string).ok_or_else(|| {
                    DbError::journal_corruption("record field `terms` holds a non-string")
                })?);
            }
            JournalOp::AddTerm { terms }
        }
        "add_edge" => JournalOp::AddEdge {
            below: str_field("below")?,
            above: str_field("above")?,
        },
        "noop" => JournalOp::Noop,
        other => {
            return Err(DbError::journal_corruption(format!(
                "unknown journal op `{other}`"
            )))
        }
    };
    let key = value
        .get("key")
        .and_then(Value::as_str)
        .map(str::to_string);
    Ok(JournalRecord { seq, op, key })
}

/// Frame a payload as a length-prefixed, checksummed record.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// Result of scanning a journal file.
#[derive(Debug)]
pub struct JournalScan {
    /// The decoded records of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte offset (including the magic) at which the valid record
    /// prefix ends. Everything past it is torn tail or damage.
    pub valid_bytes: usize,
    /// Bytes of torn (incomplete) tail record dropped from the end, if
    /// any. `0` means the valid prefix ran to the end of the file.
    pub torn_tail_bytes: usize,
    /// Corruption that cut the scan short (bad magic or a CRC-failing
    /// complete record). When set, `records` holds the prefix before the
    /// damage. [`Journal::scan`] turns this into a hard error; recovery
    /// reads it leniently.
    pub corruption: Option<DbError>,
}

/// An append-only, checksummed operation log bound to one file.
pub struct Journal {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    next_seq: u64,
    /// Byte length of the known-good record prefix on disk (including
    /// the magic). A failed append truncates back to this length before
    /// any further record may land, so torn bytes never end up
    /// mid-file.
    good_len: usize,
    /// Set when the bytes past `good_len` are damaged and could not be
    /// repaired (the truncation itself failed, or the file has a corrupt
    /// suffix). A poisoned journal refuses appends until a successful
    /// [`Journal::rewrite`]/[`Journal::reset`] or a fresh open.
    poisoned: bool,
    /// Number of records in the known-good prefix, maintained
    /// incrementally so [`Journal::record_count`] never rescans the
    /// file (pending-op checks run on the write-latency path).
    record_count: usize,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("good_len", &self.good_len)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Journal {
    /// Open (creating if needed) the journal at `path`. A brand-new file
    /// gets the magic header written and synced immediately. The next
    /// sequence number continues after the last valid record on disk. A
    /// torn tail (the residue of a crashed append) is trimmed right
    /// here, so appends always land on a record boundary; a corrupt
    /// suffix is left in place for forensics, but poisons the journal
    /// against appends until it is rewritten.
    pub fn open(path: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> DbResult<Journal> {
        let mut journal = Journal {
            path: path.into(),
            vfs,
            next_seq: 0,
            good_len: JOURNAL_MAGIC.len(),
            poisoned: false,
            record_count: 0,
        };
        if journal.vfs.exists(&journal.path) {
            let scan = journal.scan_lenient()?;
            journal.next_seq = scan.records.last().map(|r| r.seq + 1).unwrap_or(0);
            journal.good_len = scan.valid_bytes;
            journal.record_count = scan.records.len();
            if scan.corruption.is_some() {
                journal.poisoned = true;
            } else if scan.torn_tail_bytes > 0 || scan.valid_bytes < JOURNAL_MAGIC.len() {
                // Torn tail, or a file too short to even hold the magic
                // (e.g. created empty): rewrite to the clean prefix.
                journal.rewrite(&scan.records)?;
            }
        } else {
            journal.rewrite(&[])?;
        }
        Ok(journal)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raise the next sequence number to at least `min_next`. Used after
    /// loading a snapshot whose cursor is ahead of the (reset) journal,
    /// so fresh appends are never numbered below the snapshot cursor.
    pub fn bump_seq(&mut self, min_next: u64) {
        self.next_seq = self.next_seq.max(min_next);
    }

    /// Append one operation and fsync, returning its sequence number.
    /// Only after this returns `Ok` may the operation be applied in
    /// memory. On failure nothing was durably appended and the sequence
    /// is not consumed; any partial bytes the failed append left behind
    /// are truncated away *before* this returns, so a later successful
    /// append still produces a contiguous, valid journal. If that repair
    /// itself fails, the journal is poisoned: further appends are
    /// refused until a [`Journal::rewrite`]/[`Journal::reset`] or a
    /// fresh open, because a new record could otherwise land after torn
    /// bytes mid-file.
    pub fn append(&mut self, op: &JournalOp) -> DbResult<u64> {
        if self.poisoned {
            return Err(DbError::Storage(
                "journal is poisoned after an unrepaired append failure; \
                 reopen or checkpoint to continue"
                    .into(),
            ));
        }
        let span = toss_obs::span("xmldb.journal.append");
        let seq = self.next_seq;
        let rec = frame(&encode_payload(seq, op, None));
        span.record("bytes", rec.len());
        let appended = self
            .vfs
            .append(&self.path, &rec)
            .map_err(|e| DbError::Storage(format!("journal append failed: {e}")))
            .and_then(|()| {
                self.vfs
                    .sync(&self.path)
                    .map_err(|e| DbError::Storage(format!("journal fsync failed: {e}")))
            });
        match appended {
            Ok(()) => {
                self.good_len += rec.len();
                self.next_seq = seq + 1;
                self.record_count += 1;
                toss_obs::metrics::counter("xmldb.journal.appends").inc();
                toss_obs::metrics::counter("xmldb.journal.fsyncs").inc();
                toss_obs::metrics::counter("xmldb.journal.bytes_appended").add(rec.len() as u64);
                toss_obs::metrics::histogram("xmldb.journal.append_ns")
                    .observe_duration(span.finish());
                Ok(seq)
            }
            Err(err) => {
                toss_obs::metrics::counter("xmldb.journal.append_failures").inc();
                span.record("failed", true);
                self.truncate_to_good_len();
                Err(err)
            }
        }
    }

    /// Group commit: append `ops` as consecutive records with **one**
    /// file append and **one** fsync, returning their sequence numbers.
    /// All-or-nothing at the durability level: either the whole batch is
    /// durable when this returns `Ok`, or (on `Err`) nothing was durably
    /// appended, no sequence number was consumed, and any partial bytes
    /// were truncated away exactly as in [`Journal::append`]. (A crash
    /// can still tear the batch mid-file — replay then sees a valid
    /// record prefix, which is precisely the unacknowledged-prefix
    /// contract: none of these ops were acknowledged.)
    ///
    /// An empty batch is a no-op returning no sequences.
    pub fn append_batch(&mut self, ops: &[JournalOp]) -> DbResult<Vec<u64>> {
        let keyed: Vec<(JournalOp, Option<String>)> =
            ops.iter().map(|op| (op.clone(), None)).collect();
        self.append_batch_keyed(&keyed)
    }

    /// [`Journal::append_batch`], with each op's idempotency key (if
    /// any) journaled inside its record. The keys play no role in
    /// replay; they let a restarted server rebuild its dedupe table
    /// from the journal tail, so acknowledged-then-retried writes stay
    /// deduplicated across a crash.
    pub fn append_batch_keyed(
        &mut self,
        ops: &[(JournalOp, Option<String>)],
    ) -> DbResult<Vec<u64>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.poisoned {
            return Err(DbError::Storage(
                "journal is poisoned after an unrepaired append failure; \
                 reopen or checkpoint to continue"
                    .into(),
            ));
        }
        let span = toss_obs::span("xmldb.journal.append_batch");
        span.record("ops", ops.len());
        let mut rec = Vec::new();
        let mut seqs = Vec::with_capacity(ops.len());
        for (i, (op, key)) in ops.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            rec.extend_from_slice(&frame(&encode_payload(seq, op, key.as_deref())));
            seqs.push(seq);
        }
        span.record("bytes", rec.len());
        let appended = self
            .vfs
            .append(&self.path, &rec)
            .map_err(|e| DbError::Storage(format!("journal append failed: {e}")))
            .and_then(|()| {
                self.vfs
                    .sync(&self.path)
                    .map_err(|e| DbError::Storage(format!("journal fsync failed: {e}")))
            });
        match appended {
            Ok(()) => {
                self.good_len += rec.len();
                self.next_seq += ops.len() as u64;
                self.record_count += ops.len();
                toss_obs::metrics::counter("xmldb.journal.appends").add(ops.len() as u64);
                toss_obs::metrics::counter("xmldb.journal.fsyncs").inc();
                toss_obs::metrics::counter("xmldb.journal.bytes_appended").add(rec.len() as u64);
                toss_obs::metrics::histogram("xmldb.journal.batch_ops").observe(ops.len() as u64);
                toss_obs::metrics::histogram("xmldb.journal.append_ns")
                    .observe_duration(span.finish());
                Ok(seqs)
            }
            Err(err) => {
                toss_obs::metrics::counter("xmldb.journal.append_failures").inc();
                span.record("failed", true);
                self.truncate_to_good_len();
                Err(err)
            }
        }
    }

    /// Cut the journal file back to the known-good prefix after a failed
    /// append. Uses the atomic rewrite path (temp file + fsync + rename)
    /// so the repair can never make things worse; if it fails, the
    /// journal is poisoned instead.
    fn truncate_to_good_len(&mut self) {
        let repaired = (|| -> std::io::Result<()> {
            let bytes = self.vfs.read(&self.path)?;
            if bytes.len() <= self.good_len {
                return Ok(()); // nothing stuck: the failed append left no residue
            }
            let mut good = bytes;
            good.truncate(self.good_len);
            let tmp = self.path.with_extension("wal.tmp");
            self.vfs.write(&tmp, &good)?;
            self.vfs.sync(&tmp)?;
            self.vfs.rename(&tmp, &self.path)
        })();
        if repaired.is_err() {
            self.poisoned = true;
        }
    }

    /// Scan the whole journal strictly. Torn tails are tolerated and
    /// reported; CRC mismatches on complete records are
    /// [`DbError::Corruption`].
    pub fn scan(&self) -> DbResult<JournalScan> {
        let scan = self.scan_lenient()?;
        match scan.corruption {
            Some(err) => Err(err),
            None => Ok(JournalScan {
                corruption: None,
                ..scan
            }),
        }
    }

    /// Scan leniently: corruption does not fail the call, it is returned
    /// in [`JournalScan::corruption`] alongside the valid prefix. I/O
    /// errors still fail.
    pub fn scan_lenient(&self) -> DbResult<JournalScan> {
        Self::scan_file(&self.path, &*self.vfs)
    }

    /// Scan the journal file at `path` without constructing (or
    /// creating) a [`Journal`]: a pure read that never touches disk
    /// state. This is what read-only opens use, so querying a store does
    /// not create or rewrite its WAL. Semantics match
    /// [`Journal::scan_lenient`]; a missing file reads as empty.
    pub fn scan_file(path: &Path, vfs: &dyn Vfs) -> DbResult<JournalScan> {
        let bytes = if vfs.exists(path) {
            vfs.read(path)
                .map_err(|e| DbError::Storage(format!("journal read failed: {e}")))?
        } else {
            JOURNAL_MAGIC.to_vec()
        };
        if bytes.len() < JOURNAL_MAGIC.len() {
            // A journal too short to hold the magic can only be a torn
            // initial write; treat the whole file as tail.
            return Ok(JournalScan {
                records: Vec::new(),
                valid_bytes: 0,
                torn_tail_bytes: bytes.len(),
                corruption: None,
            });
        }
        if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Ok(JournalScan {
                records: Vec::new(),
                valid_bytes: 0,
                torn_tail_bytes: 0,
                corruption: Some(DbError::journal_corruption("bad journal magic")),
            });
        }
        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 8 {
                return Ok(JournalScan {
                    records,
                    valid_bytes: pos,
                    torn_tail_bytes: remaining,
                    corruption: None,
                });
            }
            let len = u32::from_le_bytes([
                bytes[pos],
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
            ]) as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            if remaining - 8 < len {
                // Incomplete payload: the append was cut short.
                return Ok(JournalScan {
                    records,
                    valid_bytes: pos,
                    torn_tail_bytes: remaining,
                    corruption: None,
                });
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                return Ok(JournalScan {
                    valid_bytes: pos,
                    torn_tail_bytes: 0,
                    corruption: Some(DbError::journal_corruption(format!(
                        "record #{} at byte {pos} failed CRC check",
                        records.len()
                    ))),
                    records,
                });
            }
            match decode_payload(payload) {
                Ok(rec) => records.push(rec),
                Err(err) => {
                    return Ok(JournalScan {
                        records,
                        valid_bytes: pos,
                        torn_tail_bytes: 0,
                        corruption: Some(err),
                    })
                }
            }
            pos += 8 + len;
        }
        Ok(JournalScan {
            records,
            valid_bytes: pos,
            torn_tail_bytes: 0,
            corruption: None,
        })
    }

    /// Rewrite the journal to exactly `records` (used to trim a torn tail
    /// or a corrupt suffix discovered during recovery). The rewrite is
    /// atomic: a fresh file is written and synced, then renamed over the
    /// old journal — on failure the old file is untouched. A successful
    /// rewrite clears any append poisoning.
    pub fn rewrite(&mut self, records: &[JournalRecord]) -> DbResult<()> {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        for rec in records {
            bytes.extend_from_slice(&frame(&encode_payload(
                rec.seq,
                &rec.op,
                rec.key.as_deref(),
            )));
        }
        let tmp = self.path.with_extension("wal.tmp");
        self.vfs
            .write(&tmp, &bytes)
            .map_err(|e| DbError::Storage(format!("journal rewrite failed: {e}")))?;
        self.vfs
            .sync(&tmp)
            .map_err(|e| DbError::Storage(format!("journal rewrite fsync failed: {e}")))?;
        self.vfs
            .rename(&tmp, &self.path)
            .map_err(|e| DbError::Storage(format!("journal rewrite rename failed: {e}")))?;
        self.good_len = bytes.len();
        self.poisoned = false;
        self.record_count = records.len();
        Ok(())
    }

    /// Number of records in the known-good prefix. Maintained
    /// incrementally — no file I/O — so per-batch pending-op checks
    /// stay O(1) instead of rescanning the whole journal.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Truncate the journal to empty (magic only). Called after a
    /// checkpoint has durably captured everything the journal recorded.
    /// Sequence numbers keep counting up — they are never reused.
    pub fn reset(&mut self) -> DbResult<()> {
        self.rewrite(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultMode, FaultVfs};

    fn mem() -> (Arc<FaultVfs>, Arc<dyn Vfs>) {
        let fs = Arc::new(FaultVfs::new());
        let dyn_fs: Arc<dyn Vfs> = fs.clone();
        (fs, dyn_fs)
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::CreateCollection { name: "dblp".into() },
            JournalOp::Insert {
                collection: "dblp".into(),
                xml: "<article><title>TOSS</title></article>".into(),
            },
            JournalOp::Replace {
                collection: "dblp".into(),
                doc_id: 0,
                xml: "<article><title>TAX</title></article>".into(),
            },
            JournalOp::Remove {
                collection: "dblp".into(),
                doc_id: 0,
            },
            JournalOp::DropCollection { name: "dblp".into() },
            JournalOp::AddTerm {
                terms: vec!["database".into(), "data base".into()],
            },
            JournalOp::AddEdge {
                below: "b-tree".into(),
                above: "index".into(),
            },
            JournalOp::Noop,
        ]
    }

    fn ops_of(scan: &JournalScan) -> Vec<JournalOp> {
        scan.records.iter().map(|r| r.op.clone()).collect()
    }

    #[test]
    fn ops_round_trip_through_encode_decode() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rec = decode_payload(&encode_payload(i as u64, &op, None)).unwrap();
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.op, op);
            assert_eq!(rec.key, None);
            let rec =
                decode_payload(&encode_payload(i as u64, &op, Some("wk-1-2"))).unwrap();
            assert_eq!(rec.key.as_deref(), Some("wk-1-2"));
        }
    }

    #[test]
    fn keyed_batch_keys_survive_scan_rewrite_and_crash() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        let keyed: Vec<(JournalOp, Option<String>)> = sample_ops()
            .into_iter()
            .enumerate()
            .map(|(i, op)| (op, (i % 2 == 0).then(|| format!("wk-{i}"))))
            .collect();
        j.append_batch_keyed(&keyed).unwrap();
        let check = |j: &Journal| {
            let scan = j.scan().unwrap();
            for (i, rec) in scan.records.iter().enumerate() {
                let expect = (i % 2 == 0).then(|| format!("wk-{i}"));
                assert_eq!(rec.key, expect, "record {i}");
            }
        };
        check(&j);
        // A rewrite (torn-tail trim, checkpoint truncation) keeps keys.
        let records = j.scan().unwrap().records;
        j.rewrite(&records).unwrap();
        check(&j);
        fs.crash();
        let j = Journal::open("db.wal", vfs).unwrap();
        check(&j);
    }

    #[test]
    fn record_count_tracks_appends_and_rewrites_without_scanning() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        assert_eq!(j.record_count(), 0);
        j.append(&sample_ops()[0]).unwrap();
        j.append_batch(&sample_ops()[1..4]).unwrap();
        assert_eq!(j.record_count(), 4);
        assert_eq!(j.scan().unwrap().records.len(), 4);
        // A failed append leaves the count untouched.
        fs.fail_op(fs.op_count(), FaultMode::Error);
        assert!(j.append(&sample_ops()[4]).is_err());
        fs.clear_fault();
        assert_eq!(j.record_count(), 4);
        let records = j.scan().unwrap().records;
        j.rewrite(&records[..2]).unwrap();
        assert_eq!(j.record_count(), 2);
        j.reset().unwrap();
        assert_eq!(j.record_count(), 0);
        // Reopen recomputes the count from the file.
        j.append(&sample_ops()[0]).unwrap();
        fs.crash();
        let j = Journal::open("db.wal", vfs).unwrap();
        assert_eq!(j.record_count(), 1);
    }

    #[test]
    fn append_scan_round_trip_with_sequences() {
        let (_fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs).unwrap();
        for (i, op) in sample_ops().iter().enumerate() {
            assert_eq!(j.append(op).unwrap(), i as u64);
        }
        let scan = j.scan().unwrap();
        assert_eq!(ops_of(&scan), sample_ops());
        assert_eq!(scan.torn_tail_bytes, 0);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (0..sample_ops().len() as u64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_append_is_one_fsync_and_scans_identically() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        let before = fs.op_count();
        let seqs = j.append_batch(&sample_ops()).unwrap();
        // One append + one sync, regardless of batch size.
        assert_eq!(fs.op_count() - before, 2);
        assert_eq!(seqs, (0..sample_ops().len() as u64).collect::<Vec<_>>());
        assert_eq!(ops_of(&j.scan().unwrap()), sample_ops());
        assert!(j.append_batch(&[]).unwrap().is_empty());
        // The batch is durable: it survives a crash.
        fs.crash();
        let j = Journal::open("db.wal", vfs).unwrap();
        assert_eq!(ops_of(&j.scan().unwrap()), sample_ops());
        assert_eq!(j.next_seq(), sample_ops().len() as u64);
    }

    #[test]
    fn failed_batch_consumes_nothing_and_repairs() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        fs.fail_op(fs.op_count(), FaultMode::Tear { keep: 11 });
        assert!(j.append_batch(&sample_ops()[1..3]).is_err());
        // Sequence numbers were not consumed; the journal is contiguous.
        let seqs = j.append_batch(&sample_ops()[1..3]).unwrap();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(ops_of(&j.scan().unwrap()), sample_ops()[..3]);
    }

    #[test]
    fn appends_survive_crash_and_seq_continues() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        for op in sample_ops() {
            j.append(&op).unwrap();
        }
        fs.crash();
        let j = Journal::open("db.wal", vfs).unwrap();
        assert_eq!(ops_of(&j.scan().unwrap()), sample_ops());
        assert_eq!(j.next_seq(), sample_ops().len() as u64);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        // A crash mid-append leaves a partial record. (The in-process
        // failure path repairs itself immediately, so model the crash
        // residue directly on the durable image.)
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        let mut bytes = vfs.read(Path::new("db.wal")).unwrap();
        bytes.extend_from_slice(&[7, 7, 7, 7, 7]); // 5 torn bytes
        fs.corrupt(Path::new("db.wal"), bytes);
        // A pure scan reports the tail without touching the file.
        let scan = Journal::scan_file(Path::new("db.wal"), &*vfs).unwrap();
        assert_eq!(ops_of(&scan), vec![sample_ops()[0].clone()]);
        assert_eq!(scan.torn_tail_bytes, 5);
        assert!(scan.corruption.is_none());
        // Open trims the tail; the scan afterwards is clean.
        let scan = Journal::open("db.wal", vfs).unwrap().scan().unwrap();
        assert_eq!(ops_of(&scan), vec![sample_ops()[0].clone()]);
        assert_eq!(scan.torn_tail_bytes, 0);
    }

    #[test]
    fn bit_flip_in_complete_record_is_corruption() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        j.append(&sample_ops()[1]).unwrap();
        let mut bytes = vfs.read(Path::new("db.wal")).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs.corrupt(Path::new("db.wal"), bytes);
        let err = j.scan().unwrap_err();
        assert!(
            matches!(
                err,
                DbError::Corruption {
                    site: crate::error::CorruptionSite::Journal,
                    ..
                }
            ),
            "got {err:?}"
        );
        // Lenient scan surfaces the valid prefix alongside the error.
        let lenient = j.scan_lenient().unwrap();
        assert!(lenient.corruption.is_some());
        assert!(lenient.records.len() < 2);
    }

    #[test]
    fn bad_magic_is_corruption() {
        let (fs, vfs) = mem();
        fs.corrupt(Path::new("db.wal"), b"NOTAWAL!rest".to_vec());
        let j = Journal {
            path: "db.wal".into(),
            vfs,
            next_seq: 0,
            good_len: 0,
            poisoned: true,
            record_count: 0,
        };
        assert!(matches!(j.scan(), Err(DbError::Corruption { .. })));
    }

    #[test]
    fn rewrite_trims_to_given_records() {
        let (_fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs).unwrap();
        for op in sample_ops() {
            j.append(&op).unwrap();
        }
        let scan = j.scan().unwrap();
        j.rewrite(&scan.records[..2]).unwrap();
        assert_eq!(ops_of(&j.scan().unwrap()), sample_ops()[..2]);
        j.reset().unwrap();
        assert!(j.scan().unwrap().records.is_empty());
    }

    #[test]
    fn reset_survives_crash_and_seq_not_reused() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        j.reset().unwrap();
        // In-process the journal still hands out fresh sequence numbers.
        assert_eq!(j.append(&sample_ops()[4]).unwrap(), 1);
        fs.crash();
        let scan = Journal::open("db.wal", vfs).unwrap().scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 1);
    }

    #[test]
    fn failed_append_leaves_journal_unchanged() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        fs.fail_op(fs.op_count(), FaultMode::Error);
        assert!(j.append(&sample_ops()[1]).is_err());
        fs.clear_fault();
        assert_eq!(ops_of(&j.scan().unwrap()), vec![sample_ops()[0].clone()]);
        // The unconsumed sequence number is reused by the next append.
        assert_eq!(j.append(&sample_ops()[1]).unwrap(), 1);
    }

    #[test]
    fn torn_append_is_repaired_so_later_appends_stay_contiguous() {
        // The continue-after-fault shape from the review: a torn append
        // (ENOSPC mid-write) must not leave residue that a subsequent
        // successful append would land after, corrupting the journal
        // mid-file.
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        fs.fail_op(fs.op_count(), FaultMode::Tear { keep: 5 });
        assert!(j.append(&sample_ops()[1]).is_err());
        // Keep going in the same process: the retried append must be
        // acknowledged durably and readably.
        assert_eq!(j.append(&sample_ops()[1]).unwrap(), 1);
        assert_eq!(
            ops_of(&j.scan().unwrap()),
            vec![sample_ops()[0].clone(), sample_ops()[1].clone()]
        );
        // And it survives a crash: strict reopen sees both records.
        fs.crash();
        let j = Journal::open("db.wal", vfs).unwrap();
        assert_eq!(
            ops_of(&j.scan().unwrap()),
            vec![sample_ops()[0].clone(), sample_ops()[1].clone()]
        );
    }

    #[test]
    fn unrepairable_torn_append_poisons_until_rewrite() {
        let (fs, vfs) = mem();
        let mut j = Journal::open("db.wal", vfs.clone()).unwrap();
        j.append(&sample_ops()[0]).unwrap();
        // Tear the append, then fail the repair's temp-file write too
        // (ops: torn append fires at op N, repair writes at op N+1).
        fs.fail_op(fs.op_count(), FaultMode::Tear { keep: 5 });
        fs.fail_op(fs.op_count() + 1, FaultMode::Error);
        assert!(j.append(&sample_ops()[1]).is_err());
        // Torn bytes are still on disk, so appends must refuse rather
        // than write after them.
        let err = j.append(&sample_ops()[1]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got {err}");
        // A successful rewrite (what checkpoint/recovery do) heals it.
        let records = j.scan_lenient().unwrap().records;
        j.rewrite(&records).unwrap();
        assert_eq!(j.append(&sample_ops()[1]).unwrap(), 1);
        assert_eq!(
            ops_of(&j.scan().unwrap()),
            vec![sample_ops()[0].clone(), sample_ops()[1].clone()]
        );
    }
}
