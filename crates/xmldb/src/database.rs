//! The top-level database: a set of named collections.

use crate::collection::Collection;
use crate::error::{DbError, DbResult};
use std::collections::BTreeMap;

/// Configuration for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Per-collection serialized-size limit in bytes. The default is
    /// Xindice's 5 MB cap, which the paper's experiments ran against; set
    /// to `None` for unlimited collections.
    pub collection_size_limit: Option<usize>,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            // 5 MB, the Xindice limit cited in Section 6 of the paper.
            collection_size_limit: Some(5 * 1024 * 1024),
        }
    }
}

impl DatabaseConfig {
    /// A configuration with no per-collection size limit.
    pub fn unlimited() -> Self {
        DatabaseConfig {
            collection_size_limit: None,
        }
    }
}

/// An XML database: named collections of documents.
#[derive(Debug)]
pub struct Database {
    config: DatabaseConfig,
    collections: BTreeMap<String, Collection>,
}

impl Database {
    /// A database with the default (Xindice-like) configuration.
    pub fn new() -> Self {
        Self::with_config(DatabaseConfig::default())
    }

    /// A database with an explicit configuration.
    pub fn with_config(config: DatabaseConfig) -> Self {
        Database {
            config,
            collections: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Create a collection; errors if the name is taken.
    pub fn create_collection(&mut self, name: &str) -> DbResult<&mut Collection> {
        match self.collections.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(_) => {
                Err(DbError::CollectionExists(name.to_string()))
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                Ok(slot.insert(Collection::new(name, self.config.collection_size_limit)))
            }
        }
    }

    /// Drop a collection; errors if it does not exist.
    pub fn drop_collection(&mut self, name: &str) -> DbResult<Collection> {
        self.collections
            .remove(name)
            .ok_or_else(|| DbError::NoSuchCollection(name.to_string()))
    }

    /// Borrow a collection.
    pub fn collection(&self, name: &str) -> DbResult<&Collection> {
        self.collections
            .get(name)
            .ok_or_else(|| DbError::NoSuchCollection(name.to_string()))
    }

    /// Mutably borrow a collection.
    pub fn collection_mut(&mut self, name: &str) -> DbResult<&mut Collection> {
        self.collections
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchCollection(name.to_string()))
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Iterate over collections in name order.
    pub fn collections(&self) -> impl Iterator<Item = &Collection> {
        self.collections.values()
    }

    /// Total size in bytes across all collections.
    pub fn total_size_bytes(&self) -> usize {
        self.collections.values().map(Collection::size_bytes).sum()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_tree::TreeBuilder;

    #[test]
    fn create_and_drop_collections() {
        let mut db = Database::new();
        db.create_collection("dblp").unwrap();
        db.create_collection("sigmod").unwrap();
        assert_eq!(db.collection_names(), vec!["dblp", "sigmod"]);
        assert!(matches!(
            db.create_collection("dblp"),
            Err(DbError::CollectionExists(_))
        ));
        db.drop_collection("dblp").unwrap();
        assert!(matches!(
            db.collection("dblp"),
            Err(DbError::NoSuchCollection(_))
        ));
        assert!(matches!(
            db.drop_collection("dblp"),
            Err(DbError::NoSuchCollection(_))
        ));
    }

    #[test]
    fn default_config_carries_xindice_limit() {
        let db = Database::new();
        assert_eq!(db.config().collection_size_limit, Some(5 * 1024 * 1024));
        let un = Database::with_config(DatabaseConfig::unlimited());
        assert_eq!(un.config().collection_size_limit, None);
    }

    #[test]
    fn collections_inherit_limit() {
        let mut db = Database::with_config(DatabaseConfig {
            collection_size_limit: Some(10),
        });
        let c = db.create_collection("tiny").unwrap();
        let t = TreeBuilder::new("aaaaaaaaaa").build(); // >10 bytes serialized
        assert!(matches!(c.insert(t), Err(DbError::CollectionFull { .. })));
    }

    #[test]
    fn total_size_sums_collections() {
        let mut db = Database::with_config(DatabaseConfig::unlimited());
        db.create_collection("a").unwrap();
        db.create_collection("b").unwrap();
        db.collection_mut("a")
            .unwrap()
            .insert(TreeBuilder::new("x").build())
            .unwrap();
        db.collection_mut("b")
            .unwrap()
            .insert(TreeBuilder::new("y").build())
            .unwrap();
        assert_eq!(db.total_size_bytes(), 8);
    }
}
