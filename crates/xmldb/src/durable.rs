//! Crash-safe database: write-ahead journal + checksummed snapshots.
//!
//! [`DurableDatabase`] wraps a [`Database`] with the classic WAL
//! discipline. Every mutation is:
//!
//! 1. **validated** against the in-memory state (so step 3 cannot fail),
//! 2. **journaled** — appended to the write-ahead log and fsynced,
//! 3. **applied** in memory.
//!
//! A crash before step 2 completes loses only the un-acknowledged
//! operation; a crash after it loses nothing: the next
//! [`DurableDatabase::open`] replays the journal over the newest
//! snapshot. [`DurableDatabase::checkpoint`] folds the journal into a new
//! atomic snapshot and truncates it; sequence numbers make the protocol
//! idempotent, so a crash between those two steps merely leaves records
//! that the next replay skips.
//!
//! [`DurableDatabase::open`] is *strict*: damaged bytes surface as
//! [`DbError::Corruption`] and nothing is guessed.
//! [`DurableDatabase::recover`] is *lenient*: it quarantines damaged
//! files, rebuilds the best state reachable from the valid snapshot and
//! journal prefix, makes that state durable again, and reports exactly
//! what was lost in a [`RecoveryReport`].

use crate::database::{Database, DatabaseConfig};
use crate::error::{DbError, DbResult};
use crate::journal::{Journal, JournalOp};
use crate::storage;
use crate::vfs::{StdVfs, Vfs};
use crate::DocumentId;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use toss_tree::serialize::{tree_to_xml, Style};
use toss_tree::Tree;

/// What a lenient [`DurableDatabase::recover`] found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded successfully.
    pub snapshot_loaded: bool,
    /// Why the snapshot was discarded, if it was.
    pub snapshot_error: Option<DbError>,
    /// Corruption that cut the journal short, if any (the valid prefix
    /// before it was still replayed).
    pub journal_error: Option<DbError>,
    /// Bytes of torn journal tail trimmed (the residue of a crashed
    /// append — expected, not corruption).
    pub torn_tail_bytes: usize,
    /// Journal operations successfully replayed.
    pub replayed_ops: usize,
    /// Journal operations that no longer applied, with their sequence
    /// numbers and the reason (e.g. a size limit lowered since logging).
    pub skipped_ops: Vec<(u64, DbError)>,
    /// Copies of damaged files kept for forensics (`*.corrupt`).
    pub quarantined: Vec<PathBuf>,
}

impl RecoveryReport {
    /// True when recovery found nothing wrong at all.
    pub fn is_clean(&self) -> bool {
        self.snapshot_error.is_none()
            && self.journal_error.is_none()
            && self.torn_tail_bytes == 0
            && self.skipped_ops.is_empty()
    }

    /// Fold this report into the global `xmldb.recovery.*` counters (see
    /// `docs/durability.md` for how to read them via `toss stats`).
    /// Called once per recovery run.
    pub fn publish_metrics(&self) {
        use toss_obs::metrics::counter;
        counter("xmldb.recovery.runs").inc();
        counter("xmldb.recovery.replayed_ops").add(self.replayed_ops as u64);
        counter("xmldb.recovery.skipped_ops").add(self.skipped_ops.len() as u64);
        counter("xmldb.recovery.torn_tail_bytes").add(self.torn_tail_bytes as u64);
        counter("xmldb.recovery.quarantined_files").add(self.quarantined.len() as u64);
        if self.snapshot_error.is_some() {
            counter("xmldb.recovery.snapshots_discarded").inc();
        }
        if self.journal_error.is_some() {
            counter("xmldb.recovery.journals_cut_short").inc();
        }
    }
}

/// A [`Database`] with crash-safe persistence.
pub struct DurableDatabase {
    db: Database,
    journal: Journal,
    snapshot_path: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for DurableDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDatabase")
            .field("snapshot_path", &self.snapshot_path)
            .field("journal", &self.journal)
            .field("collections", &self.db.collection_names())
            .finish()
    }
}

impl DurableDatabase {
    /// The journal path used for a snapshot at `snapshot`: the same file
    /// name with `.wal` appended (`store.json` → `store.json.wal`).
    pub fn wal_path(snapshot: &Path) -> PathBuf {
        let mut os = snapshot.as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// Open (or create) a durable database on the real filesystem.
    /// `config` applies only when no snapshot exists yet.
    pub fn open(snapshot: impl Into<PathBuf>, config: DatabaseConfig) -> DbResult<Self> {
        Self::open_with(snapshot, config, Arc::new(StdVfs))
    }

    /// Open against an explicit [`Vfs`] (the fault-injection harness uses
    /// this). Strict: corruption anywhere fails the open; only a torn
    /// journal tail — the normal residue of a crashed append — is
    /// tolerated, and it is trimmed before the call returns.
    pub fn open_with(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
        vfs: Arc<dyn Vfs>,
    ) -> DbResult<Self> {
        let snapshot_path = snapshot.into();
        let (db, cursor) = if vfs.exists(&snapshot_path) {
            storage::load_with_vfs_seq(&snapshot_path, &*vfs)?
        } else {
            (Database::with_config(config), 0)
        };
        // Journal::open trims any torn tail itself, so the strict scan
        // below only fails on genuine corruption.
        let mut journal = Journal::open(Self::wal_path(&snapshot_path), vfs.clone())?;
        journal.bump_seq(cursor);
        let scan = journal.scan()?;
        let mut this = DurableDatabase {
            db,
            journal,
            snapshot_path,
            vfs,
        };
        for rec in &scan.records {
            if rec.seq < cursor {
                continue; // already folded into the snapshot
            }
            check_op(&this.db, &rec.op)?;
            apply_op(&mut this.db, &rec.op)?;
        }
        Ok(this)
    }

    /// Load the committed state **without mutating any on-disk file**:
    /// no `.wal` is created for a store that lacks one, and a torn
    /// journal tail is skipped rather than trimmed. Strict like
    /// [`DurableDatabase::open`] — corruption is an error — but safe on
    /// read-only media and for query paths that should not write.
    /// Returns a plain [`Database`], since nothing can be committed
    /// through it.
    pub fn open_read_only(
        snapshot: impl AsRef<Path>,
        config: DatabaseConfig,
    ) -> DbResult<Database> {
        Self::open_read_only_with(snapshot.as_ref(), config, &StdVfs)
    }

    /// [`DurableDatabase::open_read_only`] against an explicit [`Vfs`].
    pub fn open_read_only_with(
        snapshot: &Path,
        config: DatabaseConfig,
        vfs: &dyn Vfs,
    ) -> DbResult<Database> {
        let (mut db, cursor) = if vfs.exists(snapshot) {
            storage::load_with_vfs_seq(snapshot, vfs)?
        } else {
            (Database::with_config(config), 0)
        };
        let scan = Journal::scan_file(&Self::wal_path(snapshot), vfs)?;
        if let Some(err) = scan.corruption {
            return Err(err);
        }
        for rec in &scan.records {
            if rec.seq < cursor {
                continue;
            }
            check_op(&db, &rec.op)?;
            apply_op(&mut db, &rec.op)?;
        }
        Ok(db)
    }

    /// Lenient recovery on the real filesystem.
    pub fn recover(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
    ) -> DbResult<(Self, RecoveryReport)> {
        Self::recover_with(snapshot, config, Arc::new(StdVfs))
    }

    /// Lenient recovery against an explicit [`Vfs`]: fall back to the
    /// last valid state, quarantine damaged files, re-persist the
    /// recovered state (checkpoint), and report what happened. Only I/O
    /// failures can make this return `Err`.
    pub fn recover_with(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
        vfs: Arc<dyn Vfs>,
    ) -> DbResult<(Self, RecoveryReport)> {
        let span = toss_obs::span("xmldb.recover");
        let snapshot_path = snapshot.into();
        let mut report = RecoveryReport::default();
        let (db, cursor) = if vfs.exists(&snapshot_path) {
            match storage::load_with_vfs_seq(&snapshot_path, &*vfs) {
                Ok(loaded) => {
                    report.snapshot_loaded = true;
                    loaded
                }
                Err(err) => {
                    quarantine(&*vfs, &snapshot_path, &mut report);
                    report.snapshot_error = Some(err);
                    (Database::with_config(config), 0)
                }
            }
        } else {
            (Database::with_config(config), 0)
        };
        let wal = Self::wal_path(&snapshot_path);
        // Scan before Journal::open so the report (and any quarantine
        // copy) captures the file as the crash left it — open itself
        // trims torn tails.
        let scan = Journal::scan_file(&wal, &*vfs)?;
        if scan.corruption.is_some() {
            quarantine(&*vfs, &wal, &mut report);
        }
        report.journal_error = scan.corruption;
        report.torn_tail_bytes = scan.torn_tail_bytes;
        let mut journal = Journal::open(wal, vfs.clone())?;
        journal.bump_seq(cursor);
        let mut this = DurableDatabase {
            db,
            journal,
            snapshot_path,
            vfs,
        };
        for rec in &scan.records {
            if rec.seq < cursor {
                continue;
            }
            match check_op(&this.db, &rec.op).and_then(|()| apply_op(&mut this.db, &rec.op)) {
                Ok(_) => report.replayed_ops += 1,
                Err(err) => report.skipped_ops.push((rec.seq, err)),
            }
        }
        // Make the recovered state durable again: fresh snapshot, clean
        // journal. After this, a plain strict open succeeds.
        this.checkpoint()?;
        report.publish_metrics();
        span.record("replayed_ops", report.replayed_ops);
        span.record("clean", report.is_clean());
        drop(span);
        Ok((this, report))
    }

    /// The underlying database (for queries).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consume the wrapper, returning the in-memory database. Anything
    /// not yet checkpointed stays recoverable from the journal.
    pub fn into_inner(self) -> Database {
        self.db
    }

    /// The snapshot path this database persists to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Number of operations currently recorded in the journal (i.e. not
    /// yet folded into a snapshot by [`DurableDatabase::checkpoint`]).
    pub fn pending_journal_ops(&self) -> DbResult<usize> {
        Ok(self.journal.scan()?.records.len())
    }

    /// Create a collection, durably.
    pub fn create_collection(&mut self, name: &str) -> DbResult<()> {
        self.commit(JournalOp::CreateCollection { name: name.into() })?;
        Ok(())
    }

    /// Drop a collection, durably.
    pub fn drop_collection(&mut self, name: &str) -> DbResult<()> {
        self.commit(JournalOp::DropCollection { name: name.into() })?;
        Ok(())
    }

    /// Insert a document, durably; returns its id.
    ///
    /// The XML is canonicalized (parsed and re-serialized compactly)
    /// before journaling so the logged record replays byte-identically.
    /// [`DatabaseConfig::collection_size_limit`] is enforced here *and*
    /// on replay, through the same code path.
    pub fn insert_xml(&mut self, collection: &str, xml: &str) -> DbResult<DocumentId> {
        let tree = crate::parser::parse_document(xml)?;
        let canonical = tree_to_xml(&tree, Style::Compact);
        let id = self.commit(JournalOp::Insert {
            collection: collection.into(),
            xml: canonical,
        })?;
        id.ok_or_else(|| DbError::Storage("insert produced no document id".into()))
    }

    /// Remove a document, durably; returns the removed tree.
    pub fn remove_document(&mut self, collection: &str, id: DocumentId) -> DbResult<Tree> {
        let tree = self.db.collection(collection)?.get(id)?.tree.clone();
        self.commit(JournalOp::Remove {
            collection: collection.into(),
            doc_id: id.0,
        })?;
        Ok(tree)
    }

    /// Replace a document's content in place, durably.
    pub fn replace_document(
        &mut self,
        collection: &str,
        id: DocumentId,
        xml: &str,
    ) -> DbResult<()> {
        let tree = crate::parser::parse_document(xml)?;
        let canonical = tree_to_xml(&tree, Style::Compact);
        self.commit(JournalOp::Replace {
            collection: collection.into(),
            doc_id: id.0,
            xml: canonical,
        })?;
        Ok(())
    }

    /// Fold the journal into a fresh atomic snapshot and truncate it.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let cursor = self.journal.next_seq();
        storage::save_with_vfs_seq(&self.db, cursor, &self.snapshot_path, &*self.vfs)?;
        self.journal.reset()?;
        Ok(())
    }

    /// The WAL discipline: validate, journal + fsync, apply.
    fn commit(&mut self, op: JournalOp) -> DbResult<Option<DocumentId>> {
        check_op(&self.db, &op)?;
        self.journal.append(&op)?;
        apply_op(&mut self.db, &op)
    }
}

/// Best-effort copy of a damaged file to `<path>.corrupt` for forensics.
/// If that name is taken by an earlier corruption event, a numeric
/// suffix is added (`.corrupt.1`, `.corrupt.2`, …) so no forensic copy
/// is ever overwritten.
fn quarantine(vfs: &dyn Vfs, path: &Path, report: &mut RecoveryReport) {
    if let Ok(bytes) = vfs.read(path) {
        let mut os = path.as_os_str().to_os_string();
        os.push(".corrupt");
        let base = PathBuf::from(os);
        let mut dest = base.clone();
        let mut n = 0u64;
        while vfs.exists(&dest) {
            n += 1;
            let mut os = base.as_os_str().to_os_string();
            os.push(format!(".{n}"));
            dest = PathBuf::from(os);
        }
        if vfs.write(&dest, &bytes).is_ok() {
            let _ = vfs.sync(&dest);
            report.quarantined.push(dest);
        }
    }
}

/// Validate that `op` can be applied to `db` without mutating anything.
/// After this returns `Ok`, [`apply_op`] cannot fail.
fn check_op(db: &Database, op: &JournalOp) -> DbResult<()> {
    match op {
        JournalOp::CreateCollection { name } => {
            if db.collection(name).is_ok() {
                Err(DbError::CollectionExists(name.clone()))
            } else {
                Ok(())
            }
        }
        JournalOp::DropCollection { name } => db.collection(name).map(|_| ()),
        JournalOp::Insert { collection, xml } => {
            let coll = db.collection(collection)?;
            let tree = crate::parser::parse_document(xml)?;
            let size = tree_to_xml(&tree, Style::Compact).len();
            if let Some(limit) = coll.size_limit() {
                if coll.size_bytes() + size > limit {
                    return Err(DbError::CollectionFull {
                        collection: collection.clone(),
                        limit,
                        attempted: coll.size_bytes() + size,
                    });
                }
            }
            Ok(())
        }
        JournalOp::Remove { collection, doc_id } => db
            .collection(collection)?
            .get(DocumentId(*doc_id))
            .map(|_| ()),
        JournalOp::Replace {
            collection,
            doc_id,
            xml,
        } => {
            let coll = db.collection(collection)?;
            let old = coll.get(DocumentId(*doc_id))?;
            let tree = crate::parser::parse_document(xml)?;
            let new_size = tree_to_xml(&tree, Style::Compact).len();
            if let Some(limit) = coll.size_limit() {
                let attempted = coll.size_bytes() - old.size_bytes + new_size;
                if attempted > limit {
                    return Err(DbError::CollectionFull {
                        collection: collection.clone(),
                        limit,
                        attempted,
                    });
                }
            }
            Ok(())
        }
    }
}

/// Apply a validated operation. Shared by live commits and replay, so
/// recovery reconstructs exactly the state the live path built.
fn apply_op(db: &mut Database, op: &JournalOp) -> DbResult<Option<DocumentId>> {
    match op {
        JournalOp::CreateCollection { name } => {
            db.create_collection(name)?;
            Ok(None)
        }
        JournalOp::DropCollection { name } => {
            db.drop_collection(name)?;
            Ok(None)
        }
        JournalOp::Insert { collection, xml } => {
            let id = db.collection_mut(collection)?.insert_xml(xml)?;
            Ok(Some(id))
        }
        JournalOp::Remove { collection, doc_id } => {
            db.collection_mut(collection)?.remove(DocumentId(*doc_id))?;
            Ok(None)
        }
        JournalOp::Replace {
            collection,
            doc_id,
            xml,
        } => {
            let tree = crate::parser::parse_document(xml)?;
            db.collection_mut(collection)?
                .replace(DocumentId(*doc_id), tree)?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;

    fn mem() -> (Arc<FaultVfs>, Arc<dyn Vfs>) {
        let fs = Arc::new(FaultVfs::new());
        let dyn_fs: Arc<dyn Vfs> = fs.clone();
        (fs, dyn_fs)
    }

    fn open_mem(vfs: Arc<dyn Vfs>) -> DurableDatabase {
        DurableDatabase::open_with("store.json", DatabaseConfig::unlimited(), vfs).unwrap()
    }

    #[test]
    fn mutations_survive_crash_without_checkpoint() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("dblp").unwrap();
        let id = db.insert_xml("dblp", "<a><b>1</b></a>").unwrap();
        db.insert_xml("dblp", "<c/>").unwrap();
        db.remove_document("dblp", id).unwrap();
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("dblp").unwrap();
        assert_eq!(coll.len(), 1);
        assert!(coll.get(id).is_err());
    }

    #[test]
    fn checkpoint_then_crash_preserves_everything() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("dblp").unwrap();
        db.insert_xml("dblp", "<a/>").unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.pending_journal_ops().unwrap(), 0);
        db.insert_xml("dblp", "<b/>").unwrap();
        assert_eq!(db.pending_journal_ops().unwrap(), 1);
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("dblp").unwrap().len(), 2);
    }

    #[test]
    fn document_ids_are_stable_across_recovery() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        let a = db.insert_xml("c", "<a/>").unwrap();
        let b = db.insert_xml("c", "<b/>").unwrap();
        db.remove_document("c", a).unwrap();
        let c = db.insert_xml("c", "<c/>").unwrap();
        assert!(c > b);
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("c").unwrap();
        assert!(coll.get(b).is_ok());
        assert!(coll.get(c).is_ok());
        assert!(coll.get(a).is_err());
    }

    #[test]
    fn replace_is_durable() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        let id = db.insert_xml("c", "<a><t>old</t></a>").unwrap();
        db.replace_document("c", id, "<a><t>new</t></a>").unwrap();
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("c").unwrap();
        assert_eq!(coll.index().by_tag_content("t", "new").len(), 1);
        assert_eq!(coll.index().by_tag_content("t", "old").len(), 0);
    }

    #[test]
    fn size_limit_enforced_on_live_insert_and_replay() {
        let (fs, vfs) = mem();
        let mut db = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig {
                collection_size_limit: Some(30),
            },
            vfs.clone(),
        )
        .unwrap();
        db.create_collection("tiny").unwrap();
        db.insert_xml("tiny", "<a><b>123456</b></a>").unwrap(); // 20 bytes
        let err = db.insert_xml("tiny", "<a><b>123456</b></a>").unwrap_err();
        assert!(matches!(err, DbError::CollectionFull { limit: 30, .. }));
        // The rejected insert was never journaled: replay succeeds.
        fs.crash();
        let db = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig::unlimited(),
            vfs,
        )
        .unwrap();
        assert_eq!(db.db().collection("tiny").unwrap().len(), 1);
    }

    #[test]
    fn failed_commit_leaves_memory_and_disk_consistent() {
        use crate::vfs::FaultMode;
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        fs.fail_op(fs.op_count(), FaultMode::Error);
        assert!(db.insert_xml("c", "<a/>").is_err());
        // In-memory state did not apply the failed op...
        assert_eq!(db.db().collection("c").unwrap().len(), 0);
        // ...and neither did the durable state.
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("c").unwrap().len(), 0);
    }

    #[test]
    fn repeated_corruption_never_overwrites_quarantine_copies() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.checkpoint().unwrap();
        }
        fs.corrupt(Path::new("store.json"), b"first garbage".to_vec());
        let (_, r1) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert_eq!(r1.quarantined, vec![PathBuf::from("store.json.corrupt")]);
        fs.corrupt(Path::new("store.json"), b"second garbage".to_vec());
        let (_, r2) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert_eq!(r2.quarantined, vec![PathBuf::from("store.json.corrupt.1")]);
        // Both forensic copies survive, each with its own bytes.
        assert_eq!(
            vfs.read(Path::new("store.json.corrupt")).unwrap(),
            b"first garbage"
        );
        assert_eq!(
            vfs.read(Path::new("store.json.corrupt.1")).unwrap(),
            b"second garbage"
        );
    }

    #[test]
    fn read_only_open_sees_journaled_state_but_mutates_nothing() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.insert_xml("c", "<a/>").unwrap();
            // no checkpoint: state lives only in the WAL
        }
        // Leave a torn tail, as a crashed append would.
        let wal = DurableDatabase::wal_path(Path::new("store.json"));
        let mut bytes = vfs.read(&wal).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        fs.corrupt(&wal, bytes.clone());
        let before_ops = fs.op_count();
        let db = DurableDatabase::open_read_only_with(
            Path::new("store.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap();
        assert_eq!(db.collection("c").unwrap().len(), 1);
        // No file was created, rewritten, or trimmed.
        assert_eq!(fs.op_count(), before_ops, "read-only open performed writes");
        assert_eq!(vfs.read(&wal).unwrap(), bytes, "torn tail was trimmed");
        // A store that never existed gains no snapshot and no WAL.
        let db = DurableDatabase::open_read_only_with(
            Path::new("missing.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap();
        assert!(db.collection_names().is_empty());
        assert!(!vfs.exists(Path::new("missing.json")));
        assert!(!vfs.exists(&DurableDatabase::wal_path(Path::new("missing.json"))));
    }

    #[test]
    fn read_only_open_is_strict_about_corruption() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.insert_xml("c", "<a/>").unwrap();
        }
        let wal = DurableDatabase::wal_path(Path::new("store.json"));
        let mut bytes = vfs.read(&wal).unwrap();
        // Flip a byte inside the first record's payload (magic is 8
        // bytes, the record header another 8): a complete record whose
        // CRC no longer matches is corruption, not a torn tail.
        bytes[18] ^= 0x40;
        fs.corrupt(&wal, bytes);
        let err = DurableDatabase::open_read_only_with(
            Path::new("store.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Corruption { .. }), "got {err:?}");
    }

    #[test]
    fn recover_falls_back_on_corrupt_snapshot() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        db.insert_xml("c", "<a/>").unwrap();
        db.checkpoint().unwrap();
        db.insert_xml("c", "<b/>").unwrap();
        // Corrupt the snapshot in place: flip a character inside a
        // document payload so the JSON still parses but the embedded
        // checksum no longer matches.
        let text = String::from_utf8(vfs.read(Path::new("store.json")).unwrap()).unwrap();
        let broken = text.replacen("<a/>", "<e/>", 1);
        assert_ne!(text, broken);
        fs.corrupt(Path::new("store.json"), broken.into_bytes());
        // Strict open refuses.
        let err = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig::unlimited(),
            vfs.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Corruption { .. }));
        // Lenient recovery falls back to the journal suffix only (the
        // snapshot's contents are gone) and quarantines the bad file.
        let (db, report) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert!(report.snapshot_error.is_some());
        assert!(!report.quarantined.is_empty());
        // The pre-checkpoint state lived only in the snapshot, so the
        // post-checkpoint insert of <b/> has no collection to land in:
        // it is skipped and reported, not silently dropped.
        assert_eq!(report.skipped_ops.len(), 1);
        assert!(matches!(
            report.skipped_ops[0].1,
            DbError::NoSuchCollection(_)
        ));
        assert!(db.db().collection("c").is_err());
        // Recovery re-persisted: a strict open now succeeds.
        drop(db);
        DurableDatabase::open_with("store.json", DatabaseConfig::unlimited(), vfs).unwrap();
    }
}
