//! Crash-safe database: write-ahead journal + checksummed snapshots.
//!
//! [`DurableDatabase`] wraps a [`Database`] with the classic WAL
//! discipline. Every mutation is:
//!
//! 1. **validated** against the in-memory state (so step 3 cannot fail),
//! 2. **journaled** — appended to the write-ahead log and fsynced,
//! 3. **applied** in memory.
//!
//! A crash before step 2 completes loses only the un-acknowledged
//! operation; a crash after it loses nothing: the next
//! [`DurableDatabase::open`] replays the journal over the newest
//! snapshot. [`DurableDatabase::checkpoint`] folds the journal into a new
//! atomic snapshot and truncates it; sequence numbers make the protocol
//! idempotent, so a crash between those two steps merely leaves records
//! that the next replay skips.
//!
//! [`DurableDatabase::open`] is *strict*: damaged bytes surface as
//! [`DbError::Corruption`] and nothing is guessed.
//! [`DurableDatabase::recover`] is *lenient*: it quarantines damaged
//! files, rebuilds the best state reachable from the valid snapshot and
//! journal prefix, makes that state durable again, and reports exactly
//! what was lost in a [`RecoveryReport`].

use crate::database::{Database, DatabaseConfig};
use crate::error::{DbError, DbResult};
use crate::journal::{Journal, JournalOp};
use crate::storage;
use crate::vfs::{StdVfs, Vfs};
use crate::DocumentId;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use toss_tree::serialize::{tree_to_xml, Style};
use toss_tree::Tree;

/// What a lenient [`DurableDatabase::recover`] found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded successfully.
    pub snapshot_loaded: bool,
    /// Why the snapshot was discarded, if it was.
    pub snapshot_error: Option<DbError>,
    /// Corruption that cut the journal short, if any (the valid prefix
    /// before it was still replayed).
    pub journal_error: Option<DbError>,
    /// Bytes of torn journal tail trimmed (the residue of a crashed
    /// append — expected, not corruption).
    pub torn_tail_bytes: usize,
    /// Journal operations successfully replayed.
    pub replayed_ops: usize,
    /// Journal operations that no longer applied, with their sequence
    /// numbers and the reason (e.g. a size limit lowered since logging).
    pub skipped_ops: Vec<(u64, DbError)>,
    /// Copies of damaged files kept for forensics (`*.corrupt`).
    pub quarantined: Vec<PathBuf>,
}

impl RecoveryReport {
    /// True when recovery found nothing wrong at all.
    pub fn is_clean(&self) -> bool {
        self.snapshot_error.is_none()
            && self.journal_error.is_none()
            && self.torn_tail_bytes == 0
            && self.skipped_ops.is_empty()
    }

    /// Fold this report into the global `xmldb.recovery.*` counters (see
    /// `docs/durability.md` for how to read them via `toss stats`).
    /// Called once per recovery run.
    pub fn publish_metrics(&self) {
        use toss_obs::metrics::counter;
        counter("xmldb.recovery.runs").inc();
        counter("xmldb.recovery.replayed_ops").add(self.replayed_ops as u64);
        counter("xmldb.recovery.skipped_ops").add(self.skipped_ops.len() as u64);
        counter("xmldb.recovery.torn_tail_bytes").add(self.torn_tail_bytes as u64);
        counter("xmldb.recovery.quarantined_files").add(self.quarantined.len() as u64);
        if self.snapshot_error.is_some() {
            counter("xmldb.recovery.snapshots_discarded").inc();
        }
        if self.journal_error.is_some() {
            counter("xmldb.recovery.journals_cut_short").inc();
        }
    }
}

/// A [`Database`] with crash-safe persistence.
pub struct DurableDatabase {
    db: Database,
    journal: Journal,
    snapshot_path: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for DurableDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDatabase")
            .field("snapshot_path", &self.snapshot_path)
            .field("journal", &self.journal)
            .field("collections", &self.db.collection_names())
            .finish()
    }
}

impl DurableDatabase {
    /// The journal path used for a snapshot at `snapshot`: the same file
    /// name with `.wal` appended (`store.json` → `store.json.wal`).
    pub fn wal_path(snapshot: &Path) -> PathBuf {
        let mut os = snapshot.as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// Open (or create) a durable database on the real filesystem.
    /// `config` applies only when no snapshot exists yet.
    pub fn open(snapshot: impl Into<PathBuf>, config: DatabaseConfig) -> DbResult<Self> {
        Self::open_with(snapshot, config, Arc::new(StdVfs))
    }

    /// Open against an explicit [`Vfs`] (the fault-injection harness uses
    /// this). Strict: corruption anywhere fails the open; only a torn
    /// journal tail — the normal residue of a crashed append — is
    /// tolerated, and it is trimmed before the call returns.
    pub fn open_with(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
        vfs: Arc<dyn Vfs>,
    ) -> DbResult<Self> {
        let snapshot_path = snapshot.into();
        let (db, cursor, frozen) = if vfs.exists(&snapshot_path) {
            // A verified `.seg` sidecar lets collections come up frozen
            // (zero-copy) instead of re-indexing; any sidecar problem
            // falls back to rebuild inside the loader.
            let seg = crate::segidx::load_segment(&*vfs, &snapshot_path);
            storage::load_with_vfs_seq_seg(&snapshot_path, &*vfs, seg.as_ref())?
        } else {
            (Database::with_config(config), 0, 0)
        };
        // Journal::open trims any torn tail itself, so the strict scan
        // below only fails on genuine corruption.
        let mut journal = Journal::open(Self::wal_path(&snapshot_path), vfs.clone())?;
        journal.bump_seq(cursor);
        let scan = journal.scan()?;
        let mut this = DurableDatabase {
            db,
            journal,
            snapshot_path,
            vfs,
        };
        for rec in &scan.records {
            if rec.seq < cursor {
                continue; // already folded into the snapshot
            }
            check_op(&this.db, &rec.op)?;
            apply_op(&mut this.db, &rec.op)?;
        }
        publish_index_gauges(&this.db, frozen);
        Ok(this)
    }

    /// Load the committed state **without mutating any on-disk file**:
    /// no `.wal` is created for a store that lacks one, and a torn
    /// journal tail is skipped rather than trimmed. Strict like
    /// [`DurableDatabase::open`] — corruption is an error — but safe on
    /// read-only media and for query paths that should not write.
    /// Returns a plain [`Database`], since nothing can be committed
    /// through it.
    pub fn open_read_only(
        snapshot: impl AsRef<Path>,
        config: DatabaseConfig,
    ) -> DbResult<Database> {
        Self::open_read_only_with(snapshot.as_ref(), config, &StdVfs)
    }

    /// [`DurableDatabase::open_read_only`] against an explicit [`Vfs`].
    pub fn open_read_only_with(
        snapshot: &Path,
        config: DatabaseConfig,
        vfs: &dyn Vfs,
    ) -> DbResult<Database> {
        let (mut db, cursor, frozen) = if vfs.exists(snapshot) {
            let seg = crate::segidx::load_segment(vfs, snapshot);
            storage::load_with_vfs_seq_seg(snapshot, vfs, seg.as_ref())?
        } else {
            (Database::with_config(config), 0, 0)
        };
        let scan = Journal::scan_file(&Self::wal_path(snapshot), vfs)?;
        if let Some(err) = scan.corruption {
            return Err(err);
        }
        for rec in &scan.records {
            if rec.seq < cursor {
                continue;
            }
            check_op(&db, &rec.op)?;
            apply_op(&mut db, &rec.op)?;
        }
        publish_index_gauges(&db, frozen);
        Ok(db)
    }

    /// Lenient recovery on the real filesystem.
    pub fn recover(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
    ) -> DbResult<(Self, RecoveryReport)> {
        Self::recover_with(snapshot, config, Arc::new(StdVfs))
    }

    /// Lenient recovery against an explicit [`Vfs`]: fall back to the
    /// last valid state, quarantine damaged files, re-persist the
    /// recovered state (checkpoint), and report what happened. Only I/O
    /// failures can make this return `Err`.
    pub fn recover_with(
        snapshot: impl Into<PathBuf>,
        config: DatabaseConfig,
        vfs: Arc<dyn Vfs>,
    ) -> DbResult<(Self, RecoveryReport)> {
        let span = toss_obs::span("xmldb.recover");
        let snapshot_path = snapshot.into();
        let mut report = RecoveryReport::default();
        let (db, cursor, frozen) = if vfs.exists(&snapshot_path) {
            let seg = crate::segidx::load_segment(&*vfs, &snapshot_path);
            match storage::load_with_vfs_seq_seg(&snapshot_path, &*vfs, seg.as_ref()) {
                Ok(loaded) => {
                    report.snapshot_loaded = true;
                    loaded
                }
                Err(err) => {
                    // Only the snapshot is quarantined — the `.seg`
                    // sidecar is derived data; a damaged one is simply
                    // ignored and overwritten by the next checkpoint.
                    quarantine(&*vfs, &snapshot_path, &mut report);
                    report.snapshot_error = Some(err);
                    (Database::with_config(config), 0, 0)
                }
            }
        } else {
            (Database::with_config(config), 0, 0)
        };
        let wal = Self::wal_path(&snapshot_path);
        // Scan before Journal::open so the report (and any quarantine
        // copy) captures the file as the crash left it — open itself
        // trims torn tails.
        let scan = Journal::scan_file(&wal, &*vfs)?;
        if scan.corruption.is_some() {
            quarantine(&*vfs, &wal, &mut report);
        }
        report.journal_error = scan.corruption;
        report.torn_tail_bytes = scan.torn_tail_bytes;
        let mut journal = Journal::open(wal, vfs.clone())?;
        journal.bump_seq(cursor);
        let mut this = DurableDatabase {
            db,
            journal,
            snapshot_path,
            vfs,
        };
        for rec in &scan.records {
            if rec.seq < cursor {
                continue;
            }
            match check_op(&this.db, &rec.op).and_then(|()| apply_op(&mut this.db, &rec.op)) {
                Ok(_) => report.replayed_ops += 1,
                Err(err) => report.skipped_ops.push((rec.seq, err)),
            }
        }
        // Make the recovered state durable again: fresh snapshot, clean
        // journal. After this, a plain strict open succeeds.
        this.checkpoint()?;
        publish_index_gauges(&this.db, frozen);
        report.publish_metrics();
        span.record("replayed_ops", report.replayed_ops);
        span.record("clean", report.is_clean());
        drop(span);
        Ok((this, report))
    }

    /// The underlying database (for queries).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consume the wrapper, returning the in-memory database. Anything
    /// not yet checkpointed stays recoverable from the journal.
    pub fn into_inner(self) -> Database {
        self.db
    }

    /// The snapshot path this database persists to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Number of operations currently recorded in the journal (i.e. not
    /// yet folded into a snapshot by [`DurableDatabase::checkpoint`]).
    /// O(1): the count is tracked incrementally, not rescanned.
    pub fn pending_journal_ops(&self) -> DbResult<usize> {
        Ok(self.journal.record_count())
    }

    /// Create a collection, durably.
    pub fn create_collection(&mut self, name: &str) -> DbResult<()> {
        self.commit(JournalOp::CreateCollection { name: name.into() })?;
        Ok(())
    }

    /// Drop a collection, durably.
    pub fn drop_collection(&mut self, name: &str) -> DbResult<()> {
        self.commit(JournalOp::DropCollection { name: name.into() })?;
        Ok(())
    }

    /// Insert a document, durably; returns its id.
    ///
    /// The XML is canonicalized (parsed and re-serialized compactly)
    /// before journaling so the logged record replays byte-identically.
    /// [`DatabaseConfig::collection_size_limit`] is enforced here *and*
    /// on replay, through the same code path.
    pub fn insert_xml(&mut self, collection: &str, xml: &str) -> DbResult<DocumentId> {
        let tree = crate::parser::parse_document(xml)?;
        let canonical = tree_to_xml(&tree, Style::Compact);
        let id = self.commit(JournalOp::Insert {
            collection: collection.into(),
            xml: canonical,
        })?;
        id.ok_or_else(|| DbError::Storage("insert produced no document id".into()))
    }

    /// Remove a document, durably; returns the removed tree.
    pub fn remove_document(&mut self, collection: &str, id: DocumentId) -> DbResult<Tree> {
        let tree = self.db.collection(collection)?.get(id)?.tree.clone();
        self.commit(JournalOp::Remove {
            collection: collection.into(),
            doc_id: id.0,
        })?;
        Ok(tree)
    }

    /// Replace a document's content in place, durably.
    pub fn replace_document(
        &mut self,
        collection: &str,
        id: DocumentId,
        xml: &str,
    ) -> DbResult<()> {
        let tree = crate::parser::parse_document(xml)?;
        let canonical = tree_to_xml(&tree, Style::Compact);
        self.commit(JournalOp::Replace {
            collection: collection.into(),
            doc_id: id.0,
            xml: canonical,
        })?;
        Ok(())
    }

    /// Fold the journal into a fresh atomic snapshot (plus its `.seg`
    /// index-segment sidecar) and truncate it.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let cursor = self.journal.next_seq();
        storage::save_with_vfs_seq(&self.db, cursor, &self.snapshot_path, &*self.vfs)?;
        // After the snapshot rename: a crash in between leaves a stale
        // stamp the loader rejects. Best effort — a failed sidecar
        // write only costs the next open a rebuild.
        let seg = crate::segidx::build_segment(&self.db, cursor);
        crate::segidx::write_segment(&*self.vfs, &self.snapshot_path, &seg);
        self.journal.reset()?;
        Ok(())
    }

    /// The WAL discipline: validate, journal + fsync, apply.
    fn commit(&mut self, op: JournalOp) -> DbResult<Option<DocumentId>> {
        check_op(&self.db, &op)?;
        self.journal.append(&op)?;
        apply_op(&mut self.db, &op)
    }

    /// The journal's current records (strict scan). Callers that keep
    /// state *outside* the [`Database`] — a serving ontology fed by
    /// [`JournalOp::AddTerm`]/[`JournalOp::AddEdge`] — replay the
    /// relevant ops from here on startup.
    pub fn journal_records(&self) -> DbResult<Vec<crate::journal::JournalRecord>> {
        Ok(self.journal.scan()?.records)
    }

    /// Split into the in-memory [`Database`] and a [`DurableWriter`]
    /// owning the durability machinery (journal + snapshot path + vfs).
    ///
    /// This is how a live server shares the store: the database goes
    /// behind a read/write lock for concurrent readers, while a single
    /// writer thread owns the `DurableWriter` and runs the same
    /// validate → journal+fsync → apply discipline [`commit`] runs —
    /// with [`Journal::append_batch`] providing group commit.
    ///
    /// [`commit`]: DurableDatabase::commit
    pub fn into_parts(self) -> (Database, DurableWriter) {
        (
            self.db,
            DurableWriter {
                journal: self.journal,
                snapshot_path: self.snapshot_path,
                vfs: self.vfs,
            },
        )
    }
}

/// The durability half of a split [`DurableDatabase`] (see
/// [`DurableDatabase::into_parts`]): the journal, the snapshot path, and
/// the vfs — but **not** the database, which the caller owns and mutates
/// via [`apply_op`] only after the corresponding journal append fsynced.
pub struct DurableWriter {
    journal: Journal,
    snapshot_path: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for DurableWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableWriter")
            .field("snapshot_path", &self.snapshot_path)
            .field("journal", &self.journal)
            .finish()
    }
}

impl DurableWriter {
    /// Group-commit a validated batch: one append, one fsync, all-or-
    /// nothing. Returns the sequence numbers. Only after this returns
    /// `Ok` may the caller apply the ops in memory (and acknowledge
    /// them to clients).
    pub fn append_batch(&mut self, ops: &[JournalOp]) -> DbResult<Vec<u64>> {
        self.journal.append_batch(ops)
    }

    /// [`DurableWriter::append_batch`] with each op's idempotency key
    /// journaled inside its record, so a restarted server can rebuild
    /// its dedupe table from [`DurableWriter::journal_records`].
    pub fn append_batch_keyed(
        &mut self,
        ops: &[(JournalOp, Option<String>)],
    ) -> DbResult<Vec<u64>> {
        self.journal.append_batch_keyed(ops)
    }

    /// The journal's current records (strict scan). The serving layer
    /// replays the ontology tail and reseeds its idempotency dedupe
    /// table from here on startup.
    pub fn journal_records(&self) -> DbResult<Vec<crate::journal::JournalRecord>> {
        Ok(self.journal.scan()?.records)
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.journal.next_seq()
    }

    /// The snapshot path this writer persists to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The vfs all durable I/O goes through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Number of operations currently in the journal (not yet folded
    /// into a snapshot). O(1): tracked incrementally, not rescanned —
    /// the writer loop consults this after every committed batch.
    pub fn pending_journal_ops(&self) -> DbResult<usize> {
        Ok(self.journal.record_count())
    }

    /// Durability probe: append + fsync a [`JournalOp::Noop`]. A probe
    /// that succeeds proves the whole write path (open file, append,
    /// fsync) is healthy again — this is what clears degraded mode. If
    /// the journal was poisoned by an unrepaired append failure, one
    /// atomic repair (rewrite to the valid prefix) is attempted first,
    /// so a healed disk can actually recover.
    pub fn probe(&mut self) -> DbResult<u64> {
        match self.journal.append(&JournalOp::Noop) {
            Ok(seq) => Ok(seq),
            Err(first) => {
                let records = match self.journal.scan_lenient() {
                    Ok(scan) => scan.records,
                    Err(_) => return Err(first),
                };
                self.journal.rewrite(&records).map_err(|_| first)?;
                self.journal.append(&JournalOp::Noop)
            }
        }
    }

    /// Checkpoint from an already-serialized snapshot (produced by
    /// [`storage::to_json_with_seq`] with `cursor` as its `last_seq`,
    /// typically under a brief read lock on the live database):
    ///
    /// 1. persist the snapshot atomically (temp + fsync + rename),
    /// 2. **verify** it by re-loading it through the same vfs,
    /// 3. only then truncate the journal — retaining any record with
    ///    `seq >= cursor` (appended after serialization), so nothing
    ///    the snapshot does not contain is ever dropped.
    ///
    /// A crash at any point leaves a recoverable store: before the
    /// rename the old snapshot + full journal stand; after it, the new
    /// snapshot's cursor makes stale journal records replay as no-ops.
    pub fn checkpoint_json(&mut self, json: &str, cursor: u64) -> DbResult<()> {
        self.checkpoint_json_seg(json, cursor, None)
    }

    /// [`DurableWriter::checkpoint_json`] that also writes pre-built
    /// `.seg` index-segment bytes (stamped with the same `cursor`) as a
    /// sidecar, after the snapshot rename and before the journal
    /// truncates. The sidecar write is best effort: a failure costs the
    /// next open a rebuild, never the checkpoint.
    pub fn checkpoint_json_seg(
        &mut self,
        json: &str,
        cursor: u64,
        segment: Option<&[u8]>,
    ) -> DbResult<()> {
        let span = toss_obs::span("xmldb.checkpoint");
        storage::save_json_with_vfs(json, &self.snapshot_path, &*self.vfs)?;
        storage::load_with_vfs_seq(&self.snapshot_path, &*self.vfs)?;
        if let Some(bytes) = segment {
            crate::segidx::write_segment(&*self.vfs, &self.snapshot_path, bytes);
        }
        let tail: Vec<_> = self
            .journal
            .scan_lenient()?
            .records
            .into_iter()
            .filter(|r| r.seq >= cursor)
            .collect();
        span.record("retained", tail.len());
        self.journal.rewrite(&tail)?;
        toss_obs::metrics::counter("xmldb.checkpoint.runs").inc();
        toss_obs::metrics::histogram("xmldb.checkpoint.ns").observe_duration(span.finish());
        Ok(())
    }

    /// Serialize `db` (stamped with the current cursor) and checkpoint,
    /// including the `.seg` sidecar. Convenience for callers that can
    /// hold `&Database` across the whole operation; live servers
    /// serialize under a read lock and call
    /// [`DurableWriter::checkpoint_json_seg`] instead.
    pub fn checkpoint(&mut self, db: &Database) -> DbResult<()> {
        let cursor = self.journal.next_seq();
        let json = storage::to_json_with_seq(db, cursor)?;
        let seg = crate::segidx::build_segment(db, cursor);
        self.checkpoint_json_seg(&json, cursor, Some(&seg))
    }
}

/// Sequential validation of a write batch against a base [`Database`]
/// plus the accumulated effects of the batch's earlier ops — without
/// mutating anything.
///
/// [`check_op`] alone cannot validate a batch: an `Insert` may target a
/// collection a `CreateCollection` earlier in the same batch brings into
/// existence, and size-limit math must count bytes earlier ops added.
/// `BatchValidator` tracks that overlay. After every op of a batch passes
/// [`BatchValidator::check`] in order, applying them in order with
/// [`apply_op`] cannot fail.
pub struct BatchValidator<'a> {
    db: &'a Database,
    /// Collection-existence overlay: `true` = exists (created in batch),
    /// `false` = dropped in batch. Absent = defer to the base database.
    exists: std::collections::BTreeMap<String, bool>,
    /// Collections (re)created within the batch: they have no base
    /// documents and start at zero bytes.
    fresh: std::collections::BTreeSet<String>,
    /// Current size in bytes of collections the batch touched.
    sizes: std::collections::BTreeMap<String, usize>,
    /// Size overrides for documents replaced within the batch.
    doc_sizes: std::collections::BTreeMap<(String, u64), usize>,
    /// Documents removed within the batch.
    removed: std::collections::BTreeSet<(String, u64)>,
}

impl<'a> BatchValidator<'a> {
    /// Start validating a batch against `db`'s current state.
    pub fn new(db: &'a Database) -> Self {
        BatchValidator {
            db,
            exists: Default::default(),
            fresh: Default::default(),
            sizes: Default::default(),
            doc_sizes: Default::default(),
            removed: Default::default(),
        }
    }

    fn collection_exists(&self, name: &str) -> bool {
        match self.exists.get(name) {
            Some(&e) => e,
            None => self.db.collection(name).is_ok(),
        }
    }

    /// Current byte size of `name`, accounting for in-batch effects.
    fn cur_size(&self, name: &str) -> usize {
        if let Some(&s) = self.sizes.get(name) {
            return s;
        }
        if self.fresh.contains(name) {
            return 0;
        }
        self.db.collection(name).map(|c| c.size_bytes()).unwrap_or(0)
    }

    fn size_limit(&self, name: &str) -> Option<usize> {
        if self.fresh.contains(name) {
            // In-batch collections get the database-wide config limit,
            // exactly as `Database::create_collection` assigns it.
            self.db.config().collection_size_limit
        } else {
            self.db.collection(name).ok().and_then(|c| c.size_limit())
        }
    }

    /// Size of document `id` in `name`, honoring in-batch replaces;
    /// `Err(NoSuchDocument)` if it does not exist at this point of the
    /// batch (absent from base, in a fresh collection, or removed).
    fn doc_size(&self, name: &str, id: u64) -> DbResult<usize> {
        let key = (name.to_string(), id);
        if self.removed.contains(&key) {
            return Err(DbError::NoSuchDocument(id));
        }
        if let Some(&s) = self.doc_sizes.get(&key) {
            return Ok(s);
        }
        if self.fresh.contains(name) {
            return Err(DbError::NoSuchDocument(id));
        }
        Ok(self.db.collection(name)?.get(DocumentId(id))?.size_bytes)
    }

    /// Forget per-document overlay state for a collection that was
    /// dropped (its documents are gone with it).
    fn clear_collection(&mut self, name: &str) {
        self.doc_sizes.retain(|(c, _), _| c != name);
        self.removed.retain(|(c, _)| c != name);
        self.sizes.remove(name);
    }

    /// Validate the next op of the batch and fold its effects into the
    /// overlay. Ops must be checked in batch order.
    pub fn check(&mut self, op: &JournalOp) -> DbResult<()> {
        match op {
            JournalOp::CreateCollection { name } => {
                if self.collection_exists(name) {
                    return Err(DbError::CollectionExists(name.clone()));
                }
                self.exists.insert(name.clone(), true);
                self.fresh.insert(name.clone());
                self.clear_collection(name);
                self.sizes.insert(name.clone(), 0);
                Ok(())
            }
            JournalOp::DropCollection { name } => {
                if !self.collection_exists(name) {
                    return Err(DbError::NoSuchCollection(name.clone()));
                }
                self.exists.insert(name.clone(), false);
                self.fresh.remove(name);
                self.clear_collection(name);
                Ok(())
            }
            JournalOp::Insert { collection, xml } => {
                if !self.collection_exists(collection) {
                    return Err(DbError::NoSuchCollection(collection.clone()));
                }
                let tree = crate::parser::parse_document(xml)?;
                let size = tree_to_xml(&tree, Style::Compact).len();
                let cur = self.cur_size(collection);
                if let Some(limit) = self.size_limit(collection) {
                    if cur + size > limit {
                        return Err(DbError::CollectionFull {
                            collection: collection.clone(),
                            limit,
                            attempted: cur + size,
                        });
                    }
                }
                self.sizes.insert(collection.clone(), cur + size);
                Ok(())
            }
            JournalOp::Remove { collection, doc_id } => {
                if !self.collection_exists(collection) {
                    return Err(DbError::NoSuchCollection(collection.clone()));
                }
                let old = self.doc_size(collection, *doc_id)?;
                let cur = self.cur_size(collection);
                self.sizes
                    .insert(collection.clone(), cur.saturating_sub(old));
                self.removed.insert((collection.clone(), *doc_id));
                Ok(())
            }
            JournalOp::Replace {
                collection,
                doc_id,
                xml,
            } => {
                if !self.collection_exists(collection) {
                    return Err(DbError::NoSuchCollection(collection.clone()));
                }
                let old = self.doc_size(collection, *doc_id)?;
                let tree = crate::parser::parse_document(xml)?;
                let new_size = tree_to_xml(&tree, Style::Compact).len();
                let cur = self.cur_size(collection);
                let attempted = cur - old + new_size;
                if let Some(limit) = self.size_limit(collection) {
                    if attempted > limit {
                        return Err(DbError::CollectionFull {
                            collection: collection.clone(),
                            limit,
                            attempted,
                        });
                    }
                }
                self.sizes.insert(collection.clone(), attempted);
                self.doc_sizes
                    .insert((collection.clone(), *doc_id), new_size);
                Ok(())
            }
            JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. } | JournalOp::Noop => Ok(()),
        }
    }
}

/// Publish the index-footprint gauges after a cold open.
///
/// * `toss.index.pointer_bytes` — approximate heap bytes of live
///   pointer indexes;
/// * `toss.index.segment_bytes` — bytes of frozen segment sections
///   currently serving probes;
/// * `toss.index.cold_open_source` — 1 when *every* collection in the
///   loaded snapshot attached a frozen segment index ("segment"), 0
///   when any had to rebuild ("rebuilt").
///
/// `frozen_at_load` counts collections that attached frozen during the
/// snapshot load, before journal replay (replay mutations may thaw some
/// — the cold-open source doesn't change retroactively, but the byte
/// gauges reflect the post-replay state).
pub fn publish_index_gauges(db: &Database, frozen_at_load: usize) {
    use toss_obs::metrics::gauge;
    let (mut pointer, mut segment) = (0usize, 0usize);
    let mut total = 0usize;
    for c in db.collections() {
        let (p, s) = c.index_bytes();
        pointer += p;
        segment += s;
        total += 1;
    }
    gauge("toss.index.pointer_bytes").set(pointer as i64);
    gauge("toss.index.segment_bytes").set(segment as i64);
    gauge("toss.index.cold_open_source").set((total > 0 && frozen_at_load == total) as i64);
}

/// Best-effort copy of a damaged file to `<path>.corrupt` for forensics.
/// If that name is taken by an earlier corruption event, a numeric
/// suffix is added (`.corrupt.1`, `.corrupt.2`, …) so no forensic copy
/// is ever overwritten.
fn quarantine(vfs: &dyn Vfs, path: &Path, report: &mut RecoveryReport) {
    if let Ok(bytes) = vfs.read(path) {
        let mut os = path.as_os_str().to_os_string();
        os.push(".corrupt");
        let base = PathBuf::from(os);
        let mut dest = base.clone();
        let mut n = 0u64;
        while vfs.exists(&dest) {
            n += 1;
            let mut os = base.as_os_str().to_os_string();
            os.push(format!(".{n}"));
            dest = PathBuf::from(os);
        }
        if vfs.write(&dest, &bytes).is_ok() {
            let _ = vfs.sync(&dest);
            report.quarantined.push(dest);
        }
    }
}

/// Validate that `op` can be applied to `db` without mutating anything.
/// After this returns `Ok`, [`apply_op`] cannot fail.
///
/// Public so external write paths (the serving layer's single-writer
/// loop) can run the same validate → journal → apply discipline over a
/// database they own; see also [`BatchValidator`] for validating a whole
/// batch whose later ops depend on earlier ones.
pub fn check_op(db: &Database, op: &JournalOp) -> DbResult<()> {
    match op {
        JournalOp::CreateCollection { name } => {
            if db.collection(name).is_ok() {
                Err(DbError::CollectionExists(name.clone()))
            } else {
                Ok(())
            }
        }
        JournalOp::DropCollection { name } => db.collection(name).map(|_| ()),
        JournalOp::Insert { collection, xml } => {
            let coll = db.collection(collection)?;
            let tree = crate::parser::parse_document(xml)?;
            let size = tree_to_xml(&tree, Style::Compact).len();
            if let Some(limit) = coll.size_limit() {
                if coll.size_bytes() + size > limit {
                    return Err(DbError::CollectionFull {
                        collection: collection.clone(),
                        limit,
                        attempted: coll.size_bytes() + size,
                    });
                }
            }
            Ok(())
        }
        JournalOp::Remove { collection, doc_id } => db
            .collection(collection)?
            .get(DocumentId(*doc_id))
            .map(|_| ()),
        JournalOp::Replace {
            collection,
            doc_id,
            xml,
        } => {
            let coll = db.collection(collection)?;
            let old = coll.get(DocumentId(*doc_id))?;
            let tree = crate::parser::parse_document(xml)?;
            let new_size = tree_to_xml(&tree, Style::Compact).len();
            if let Some(limit) = coll.size_limit() {
                let attempted = coll.size_bytes() - old.size_bytes + new_size;
                if attempted > limit {
                    return Err(DbError::CollectionFull {
                        collection: collection.clone(),
                        limit,
                        attempted,
                    });
                }
            }
            Ok(())
        }
        // Ontology ops and probes never touch the store; they are
        // validated (cycle checks etc.) by whoever owns the hierarchy.
        JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. } | JournalOp::Noop => Ok(()),
    }
}

/// Apply a validated operation. Shared by live commits and replay, so
/// recovery reconstructs exactly the state the live path built.
///
/// Public for the same reason as [`check_op`].
pub fn apply_op(db: &mut Database, op: &JournalOp) -> DbResult<Option<DocumentId>> {
    match op {
        JournalOp::CreateCollection { name } => {
            db.create_collection(name)?;
            Ok(None)
        }
        JournalOp::DropCollection { name } => {
            db.drop_collection(name)?;
            Ok(None)
        }
        JournalOp::Insert { collection, xml } => {
            let id = db.collection_mut(collection)?.insert_xml(xml)?;
            Ok(Some(id))
        }
        JournalOp::Remove { collection, doc_id } => {
            db.collection_mut(collection)?.remove(DocumentId(*doc_id))?;
            Ok(None)
        }
        JournalOp::Replace {
            collection,
            doc_id,
            xml,
        } => {
            let tree = crate::parser::parse_document(xml)?;
            db.collection_mut(collection)?
                .replace(DocumentId(*doc_id), tree)?;
            Ok(None)
        }
        JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. } | JournalOp::Noop => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;

    fn mem() -> (Arc<FaultVfs>, Arc<dyn Vfs>) {
        let fs = Arc::new(FaultVfs::new());
        let dyn_fs: Arc<dyn Vfs> = fs.clone();
        (fs, dyn_fs)
    }

    fn open_mem(vfs: Arc<dyn Vfs>) -> DurableDatabase {
        DurableDatabase::open_with("store.json", DatabaseConfig::unlimited(), vfs).unwrap()
    }

    #[test]
    fn mutations_survive_crash_without_checkpoint() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("dblp").unwrap();
        let id = db.insert_xml("dblp", "<a><b>1</b></a>").unwrap();
        db.insert_xml("dblp", "<c/>").unwrap();
        db.remove_document("dblp", id).unwrap();
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("dblp").unwrap();
        assert_eq!(coll.len(), 1);
        assert!(coll.get(id).is_err());
    }

    #[test]
    fn checkpoint_then_crash_preserves_everything() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("dblp").unwrap();
        db.insert_xml("dblp", "<a/>").unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.pending_journal_ops().unwrap(), 0);
        db.insert_xml("dblp", "<b/>").unwrap();
        assert_eq!(db.pending_journal_ops().unwrap(), 1);
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("dblp").unwrap().len(), 2);
    }

    #[test]
    fn document_ids_are_stable_across_recovery() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        let a = db.insert_xml("c", "<a/>").unwrap();
        let b = db.insert_xml("c", "<b/>").unwrap();
        db.remove_document("c", a).unwrap();
        let c = db.insert_xml("c", "<c/>").unwrap();
        assert!(c > b);
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("c").unwrap();
        assert!(coll.get(b).is_ok());
        assert!(coll.get(c).is_ok());
        assert!(coll.get(a).is_err());
    }

    #[test]
    fn replace_is_durable() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        let id = db.insert_xml("c", "<a><t>old</t></a>").unwrap();
        db.replace_document("c", id, "<a><t>new</t></a>").unwrap();
        fs.crash();
        let db = open_mem(vfs);
        let coll = db.db().collection("c").unwrap();
        assert_eq!(coll.index().by_tag_content("t", "new").len(), 1);
        assert_eq!(coll.index().by_tag_content("t", "old").len(), 0);
    }

    #[test]
    fn size_limit_enforced_on_live_insert_and_replay() {
        let (fs, vfs) = mem();
        let mut db = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig {
                collection_size_limit: Some(30),
            },
            vfs.clone(),
        )
        .unwrap();
        db.create_collection("tiny").unwrap();
        db.insert_xml("tiny", "<a><b>123456</b></a>").unwrap(); // 20 bytes
        let err = db.insert_xml("tiny", "<a><b>123456</b></a>").unwrap_err();
        assert!(matches!(err, DbError::CollectionFull { limit: 30, .. }));
        // The rejected insert was never journaled: replay succeeds.
        fs.crash();
        let db = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig::unlimited(),
            vfs,
        )
        .unwrap();
        assert_eq!(db.db().collection("tiny").unwrap().len(), 1);
    }

    #[test]
    fn failed_commit_leaves_memory_and_disk_consistent() {
        use crate::vfs::FaultMode;
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        fs.fail_op(fs.op_count(), FaultMode::Error);
        assert!(db.insert_xml("c", "<a/>").is_err());
        // In-memory state did not apply the failed op...
        assert_eq!(db.db().collection("c").unwrap().len(), 0);
        // ...and neither did the durable state.
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("c").unwrap().len(), 0);
    }

    #[test]
    fn repeated_corruption_never_overwrites_quarantine_copies() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.checkpoint().unwrap();
        }
        fs.corrupt(Path::new("store.json"), b"first garbage".to_vec());
        let (_, r1) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert_eq!(r1.quarantined, vec![PathBuf::from("store.json.corrupt")]);
        fs.corrupt(Path::new("store.json"), b"second garbage".to_vec());
        let (_, r2) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert_eq!(r2.quarantined, vec![PathBuf::from("store.json.corrupt.1")]);
        // Both forensic copies survive, each with its own bytes.
        assert_eq!(
            vfs.read(Path::new("store.json.corrupt")).unwrap(),
            b"first garbage"
        );
        assert_eq!(
            vfs.read(Path::new("store.json.corrupt.1")).unwrap(),
            b"second garbage"
        );
    }

    #[test]
    fn read_only_open_sees_journaled_state_but_mutates_nothing() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.insert_xml("c", "<a/>").unwrap();
            // no checkpoint: state lives only in the WAL
        }
        // Leave a torn tail, as a crashed append would.
        let wal = DurableDatabase::wal_path(Path::new("store.json"));
        let mut bytes = vfs.read(&wal).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        fs.corrupt(&wal, bytes.clone());
        let before_ops = fs.op_count();
        let db = DurableDatabase::open_read_only_with(
            Path::new("store.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap();
        assert_eq!(db.collection("c").unwrap().len(), 1);
        // No file was created, rewritten, or trimmed.
        assert_eq!(fs.op_count(), before_ops, "read-only open performed writes");
        assert_eq!(vfs.read(&wal).unwrap(), bytes, "torn tail was trimmed");
        // A store that never existed gains no snapshot and no WAL.
        let db = DurableDatabase::open_read_only_with(
            Path::new("missing.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap();
        assert!(db.collection_names().is_empty());
        assert!(!vfs.exists(Path::new("missing.json")));
        assert!(!vfs.exists(&DurableDatabase::wal_path(Path::new("missing.json"))));
    }

    #[test]
    fn read_only_open_is_strict_about_corruption() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.insert_xml("c", "<a/>").unwrap();
        }
        let wal = DurableDatabase::wal_path(Path::new("store.json"));
        let mut bytes = vfs.read(&wal).unwrap();
        // Flip a byte inside the first record's payload (magic is 8
        // bytes, the record header another 8): a complete record whose
        // CRC no longer matches is corruption, not a torn tail.
        bytes[18] ^= 0x40;
        fs.corrupt(&wal, bytes);
        let err = DurableDatabase::open_read_only_with(
            Path::new("store.json"),
            DatabaseConfig::unlimited(),
            &*vfs,
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Corruption { .. }), "got {err:?}");
    }

    #[test]
    fn split_writer_batch_commit_survives_crash() {
        let (fs, vfs) = mem();
        {
            let mut db = open_mem(vfs.clone());
            db.create_collection("c").unwrap();
            db.checkpoint().unwrap();
        }
        let (mut db, mut writer) = open_mem(vfs.clone()).into_parts();
        let batch = vec![
            JournalOp::Insert {
                collection: "c".into(),
                xml: "<a/>".into(),
            },
            JournalOp::AddTerm {
                terms: vec!["index".into()],
            },
            JournalOp::Insert {
                collection: "c".into(),
                xml: "<b/>".into(),
            },
        ];
        let mut v = BatchValidator::new(&db);
        for op in &batch {
            v.check(op).unwrap();
        }
        let seqs = writer.append_batch(&batch).unwrap();
        assert_eq!(seqs.len(), 3);
        for op in &batch {
            apply_op(&mut db, op).unwrap();
        }
        assert_eq!(db.collection("c").unwrap().len(), 2);
        fs.crash();
        let reopened = open_mem(vfs.clone());
        assert_eq!(reopened.db().collection("c").unwrap().len(), 2);
        // The ontology op is replayable from the journal tail.
        let onto: Vec<_> = reopened
            .journal_records()
            .unwrap()
            .into_iter()
            .filter(|r| matches!(r.op, JournalOp::AddTerm { .. } | JournalOp::AddEdge { .. }))
            .collect();
        assert_eq!(onto.len(), 1);
    }

    #[test]
    fn batch_validator_tracks_in_batch_effects() {
        let mut base = Database::with_config(DatabaseConfig {
            collection_size_limit: Some(30),
        });
        base.create_collection("c").unwrap();
        let id = base.collection_mut("c").unwrap().insert_xml("<a><b>123456</b></a>").unwrap(); // 20 bytes

        // Insert into a collection created earlier in the same batch.
        let mut v = BatchValidator::new(&base);
        v.check(&JournalOp::CreateCollection { name: "d".into() }).unwrap();
        v.check(&JournalOp::Insert {
            collection: "d".into(),
            xml: "<x/>".into(),
        })
        .unwrap();

        // Size limits account for earlier batch inserts: a second 20-byte
        // doc into `c` (20/30 used) must overflow.
        let mut v = BatchValidator::new(&base);
        let big = JournalOp::Insert {
            collection: "c".into(),
            xml: "<a><b>123456</b></a>".into(),
        };
        let err = v.check(&big).unwrap_err();
        assert!(matches!(err, DbError::CollectionFull { limit: 30, .. }));
        // ...but removing the existing doc first makes room.
        let mut v = BatchValidator::new(&base);
        v.check(&JournalOp::Remove {
            collection: "c".into(),
            doc_id: id.0,
        })
        .unwrap();
        v.check(&big).unwrap();
        // Double-remove of the same doc inside one batch is rejected.
        let err = v
            .check(&JournalOp::Remove {
                collection: "c".into(),
                doc_id: id.0,
            })
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchDocument(_)));

        // Drop forgets the base docs; a recreated collection is empty.
        let mut v = BatchValidator::new(&base);
        v.check(&JournalOp::DropCollection { name: "c".into() }).unwrap();
        v.check(&JournalOp::CreateCollection { name: "c".into() }).unwrap();
        let err = v
            .check(&JournalOp::Remove {
                collection: "c".into(),
                doc_id: id.0,
            })
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchDocument(_)));

        // A validated batch applies without error, and matches check_op
        // semantics op-by-op once applied.
        let mut db = base;
        let batch = vec![
            JournalOp::Remove {
                collection: "c".into(),
                doc_id: id.0,
            },
            big,
        ];
        let mut v = BatchValidator::new(&db);
        for op in &batch {
            v.check(op).unwrap();
        }
        for op in &batch {
            apply_op(&mut db, op).unwrap();
        }
        assert_eq!(db.collection("c").unwrap().len(), 1);
    }

    #[test]
    fn checkpoint_json_verifies_before_truncating() {
        use crate::vfs::FaultMode;
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        db.insert_xml("c", "<a/>").unwrap();
        let (db, mut writer) = db.into_parts();
        let cursor = writer.next_seq();
        let json = storage::to_json_with_seq(&db, cursor).unwrap();
        // Fail the snapshot temp write: the checkpoint errors and the
        // journal still holds everything.
        fs.fail_op(fs.op_count(), FaultMode::Error);
        assert!(writer.checkpoint_json(&json, cursor).is_err());
        assert_eq!(writer.pending_journal_ops().unwrap(), 2);
        // Unfaulted, the checkpoint lands and truncates.
        writer.checkpoint_json(&json, cursor).unwrap();
        assert_eq!(writer.pending_journal_ops().unwrap(), 0);
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("c").unwrap().len(), 1);
    }

    #[test]
    fn probe_recovers_poisoned_journal_after_heal() {
        use crate::vfs::FaultMode;
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        let (_db, mut writer) = db.into_parts();
        // Sustained fault: the batch append tears AND the repair fails,
        // poisoning the journal — the ENOSPC shape.
        fs.fail_from(fs.op_count(), FaultMode::Error);
        assert!(writer
            .append_batch(&[JournalOp::Insert {
                collection: "c".into(),
                xml: "<a/>".into(),
            }])
            .is_err());
        // While the fault holds, probes keep failing.
        assert!(writer.probe().is_err());
        // Fault clears: the probe repairs the poisoned journal and lands.
        fs.heal();
        writer.probe().unwrap();
        // Writes work again and survive a crash.
        let batch = vec![JournalOp::Insert {
            collection: "c".into(),
            xml: "<a/>".into(),
        }];
        writer.append_batch(&batch).unwrap();
        fs.crash();
        let db = open_mem(vfs);
        assert_eq!(db.db().collection("c").unwrap().len(), 1);
    }

    #[test]
    fn recover_falls_back_on_corrupt_snapshot() {
        let (fs, vfs) = mem();
        let mut db = open_mem(vfs.clone());
        db.create_collection("c").unwrap();
        db.insert_xml("c", "<a/>").unwrap();
        db.checkpoint().unwrap();
        db.insert_xml("c", "<b/>").unwrap();
        // Corrupt the snapshot in place: flip a character inside a
        // document payload so the JSON still parses but the embedded
        // checksum no longer matches.
        let text = String::from_utf8(vfs.read(Path::new("store.json")).unwrap()).unwrap();
        let broken = text.replacen("<a/>", "<e/>", 1);
        assert_ne!(text, broken);
        fs.corrupt(Path::new("store.json"), broken.into_bytes());
        // Strict open refuses.
        let err = DurableDatabase::open_with(
            "store.json",
            DatabaseConfig::unlimited(),
            vfs.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, DbError::Corruption { .. }));
        // Lenient recovery falls back to the journal suffix only (the
        // snapshot's contents are gone) and quarantines the bad file.
        let (db, report) =
            DurableDatabase::recover_with("store.json", DatabaseConfig::unlimited(), vfs.clone())
                .unwrap();
        assert!(report.snapshot_error.is_some());
        assert!(!report.quarantined.is_empty());
        // The pre-checkpoint state lived only in the snapshot, so the
        // post-checkpoint insert of <b/> has no collection to land in:
        // it is skipped and reported, not silently dropped.
        assert_eq!(report.skipped_ops.len(), 1);
        assert!(matches!(
            report.skipped_ops[0].1,
            DbError::NoSuchCollection(_)
        ));
        assert!(db.db().collection("c").is_err());
        // Recovery re-persisted: a strict open now succeeds.
        drop(db);
        DurableDatabase::open_with("store.json", DatabaseConfig::unlimited(), vfs).unwrap();
    }
}
