//! Segment-backed frozen collection indexes.
//!
//! At checkpoint time the collection indexes are serialized into a
//! `toss_segment` container written as a `<snap>.seg` sidecar next to the
//! snapshot. On the next open, if the sidecar's checksum verifies and its
//! `last_seq` stamp matches the snapshot's journal cursor exactly, each
//! collection attaches a [`FrozenIndex`] — a zero-copy view into the
//! loaded buffer — instead of re-indexing every document. Any problem
//! with the sidecar (missing, truncated, corrupted, stale) silently falls
//! back to the rebuild path; the sidecar is derived data and is never
//! quarantined, and its loss never implicates the snapshot.
//!
//! ## Per-collection sections
//!
//! * `TAG_MAP` (name = collection): tag → postings, **raw** fixed-width
//!   encoding so `//tag` seeding iterates at near slice speed;
//! * `CONTENT_MAP` (name = collection): composite `(tag, content)` key →
//!   postings, varint-gap or Elias-Fano per list (whichever is smaller) —
//!   this map carries most of the pointer index's memory, so it gets the
//!   compression;
//! * `COLLECTION_META` (name = collection): document count (u64 LE), the
//!   attach-time sanity check.
//!
//! A posting packs into one `u64` as `doc_id << 32 | node_index`; the
//! pair sorts exactly like `(doc, node)`, so encoded lists preserve the
//! document order TAX requires. Collections holding a document id or
//! node index ≥ 2³² (never seen in practice) simply don't get sections
//! and rebuild as before.

use crate::collection::DocumentId;
use crate::database::Database;
use crate::index::{Posting, Postings};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use toss_segment::{
    composite_key, encode_postings, encode_postings_raw, KeyMapBuilder, KeyMapRef, Segment,
    SegmentBuilder,
};

pub use toss_segment::kinds;

/// The segment sidecar path for a snapshot: `store.json` → `store.seg`.
pub fn seg_path(snapshot: &Path) -> PathBuf {
    snapshot.with_extension("seg")
}

/// Decode a packed postings key back into a [`Posting`].
#[inline]
pub(crate) fn posting_from_key(key: u64) -> Posting {
    Posting {
        doc: DocumentId(key >> 32),
        node: toss_tree::NodeId::from_index((key & 0xFFFF_FFFF) as usize),
    }
}

/// Pack a posting into its sortable `u64` key, or `None` when it does
/// not fit the 32+32 split.
#[inline]
fn key_from_posting(p: &Posting) -> Option<u64> {
    let node = p.node.index() as u64;
    if p.doc.0 > u32::MAX as u64 || node > u32::MAX as u64 {
        return None;
    }
    Some((p.doc.0 << 32) | node)
}

fn posting_keys(list: &[Posting]) -> Option<Vec<u64>> {
    let mut keys = Vec::with_capacity(list.len());
    for p in list {
        keys.push(key_from_posting(p)?);
    }
    // insertion order is already (doc, preorder) — i.e. strictly
    // increasing keys — but postings appended after an interleaved
    // remove/re-add can interleave, so sort defensively
    if !keys.windows(2).all(|w| w[0] < w[1]) {
        keys.sort_unstable();
        keys.dedup();
    }
    Some(keys)
}

/// Serialize one collection's pointer index into `builder`. Returns
/// `false` (adding nothing) when a posting doesn't fit the packed key.
fn add_collection_sections(
    builder: &mut SegmentBuilder,
    name: &str,
    coll: &crate::collection::Collection,
) -> bool {
    match coll.index() {
        crate::index::IndexView::Pointer(ix) => {
            let mut tag_map = KeyMapBuilder::new();
            for tag in ix.tags() {
                let Some(keys) = posting_keys(ix.by_tag(tag)) else {
                    return false;
                };
                tag_map.insert(tag.as_bytes().to_vec(), encode_postings_raw(&keys));
            }
            let mut content_map = KeyMapBuilder::new();
            for (tag, content) in ix.tag_content_pairs() {
                let Some(keys) = posting_keys(ix.by_tag_content(tag, content)) else {
                    return false;
                };
                content_map.insert(composite_key(tag, content), encode_postings(&keys));
            }
            let mut tag_bytes = Vec::new();
            tag_map.finish(&mut tag_bytes);
            let mut content_bytes = Vec::new();
            content_map.finish(&mut content_bytes);
            builder.add_section(kinds::TAG_MAP, name, tag_bytes);
            builder.add_section(kinds::CONTENT_MAP, name, content_bytes);
        }
        // A clean frozen collection re-emits its section payloads
        // verbatim — no decode/re-encode, no doc walk.
        crate::index::IndexView::Frozen(f) => {
            builder.add_section(kinds::TAG_MAP, name, f.tag_payload().to_vec());
            builder.add_section(kinds::CONTENT_MAP, name, f.content_payload().to_vec());
        }
    }
    builder.add_section(
        kinds::COLLECTION_META,
        name,
        (coll.len() as u64).to_le_bytes().to_vec(),
    );
    true
}

/// Build the `.seg` container bytes for `db`, stamped with `last_seq`
/// (the journal cursor of the snapshot being checkpointed). Extra
/// sections — e.g. the ontology reachability closure — can be added by
/// building through [`segment_builder`] instead.
pub fn build_segment(db: &Database, last_seq: u64) -> Vec<u8> {
    segment_builder(db, last_seq).finish()
}

/// Like [`build_segment`] but returns the open builder so callers (the
/// serving layer) can append their own sections before finishing.
pub fn segment_builder(db: &Database, last_seq: u64) -> SegmentBuilder {
    let mut builder = SegmentBuilder::new(last_seq);
    for coll in db.collections() {
        add_collection_sections(&mut builder, coll.name(), coll);
    }
    builder
}

/// Best-effort write of segment bytes next to the snapshot. Sidecar
/// write failures never fail a checkpoint — the segment is derived data;
/// a missing or torn file just means the next open rebuilds. Written
/// *after* the snapshot rename so a crash in between leaves a stale
/// stamp, which the load path rejects.
pub fn write_segment(vfs: &dyn Vfs, snapshot: &Path, bytes: &[u8]) {
    let path = seg_path(snapshot);
    let ok = vfs.write(&path, bytes).is_ok() && vfs.sync(&path).is_ok();
    if ok {
        toss_obs::metrics::counter("xmldb.segment.writes").inc();
        toss_obs::metrics::counter("xmldb.segment.bytes_written").add(bytes.len() as u64);
    } else {
        toss_obs::metrics::counter("xmldb.segment.write_failures").inc();
    }
}

/// Load and verify the segment sidecar for `snapshot`. Any failure —
/// absent file, I/O error, bad magic, checksum mismatch — returns `None`
/// and bumps a counter; the caller falls back to rebuilding indexes.
pub fn load_segment(vfs: &dyn Vfs, snapshot: &Path) -> Option<Arc<Segment>> {
    let path = seg_path(snapshot);
    if !vfs.exists(&path) {
        return None;
    }
    let bytes = match vfs.read(&path) {
        Ok(b) => b,
        Err(_) => {
            toss_obs::metrics::counter("xmldb.segment.load_failures").inc();
            return None;
        }
    };
    match Segment::parse(bytes) {
        Ok(seg) => {
            toss_obs::metrics::counter("xmldb.segment.loads").inc();
            Some(Arc::new(seg))
        }
        Err(_) => {
            toss_obs::metrics::counter("xmldb.segment.load_failures").inc();
            None
        }
    }
}

/// A frozen, zero-copy collection index reading straight out of a loaded
/// segment buffer. Holds the `Arc<Segment>` plus numeric section ranges
/// (not borrowed slices) so the collection can own it without
/// self-referential lifetimes; accessors reconstruct the typed views in
/// O(1) per probe.
#[derive(Debug, Clone)]
pub struct FrozenIndex {
    segment: Arc<Segment>,
    tag: (usize, usize),
    content: (usize, usize),
    doc_count: u64,
}

impl FrozenIndex {
    /// Attach to collection `name`'s sections inside `segment`. Returns
    /// `None` unless all three sections exist and both maps parse —
    /// callers then rebuild the pointer index instead.
    pub fn attach(segment: &Arc<Segment>, name: &str) -> Option<FrozenIndex> {
        let tag = segment.section_range(kinds::TAG_MAP, name)?;
        let content = segment.section_range(kinds::CONTENT_MAP, name)?;
        let meta = segment.section(kinds::COLLECTION_META, name)?;
        let doc_count = u64::from_le_bytes(meta.get(..8)?.try_into().ok()?);
        KeyMapRef::parse(&segment.bytes()[tag.0..tag.1])?;
        KeyMapRef::parse(&segment.bytes()[content.0..content.1])?;
        Some(FrozenIndex {
            segment: Arc::clone(segment),
            tag,
            content,
            doc_count,
        })
    }

    /// Document count recorded at build time (attach-time sanity check).
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    fn tag_map(&self) -> KeyMapRef<'_> {
        // parse validated at attach; re-parsing is a header read
        KeyMapRef::parse(&self.segment.bytes()[self.tag.0..self.tag.1])
            .expect("tag map validated at attach")
    }

    fn content_map(&self) -> KeyMapRef<'_> {
        KeyMapRef::parse(&self.segment.bytes()[self.content.0..self.content.1])
            .expect("content map validated at attach")
    }

    pub(crate) fn tag_payload(&self) -> &[u8] {
        &self.segment.bytes()[self.tag.0..self.tag.1]
    }

    pub(crate) fn content_payload(&self) -> &[u8] {
        &self.segment.bytes()[self.content.0..self.content.1]
    }

    /// All nodes with the given tag, in document order.
    pub fn by_tag(&self, tag: &str) -> Postings<'_> {
        Postings::Block(
            self.tag_map()
                .get(tag.as_bytes())
                .and_then(toss_segment::PostingsBlock::parse),
        )
    }

    /// All nodes with the given tag and exact content rendering.
    /// Allocation-free: the composite key is hashed incrementally and
    /// compared piecewise, never materialized.
    pub fn by_tag_content(&self, tag: &str, content: &str) -> Postings<'_> {
        Postings::Block(
            self.content_map()
                .get_composite(tag, content)
                .and_then(toss_segment::PostingsBlock::parse),
        )
    }

    /// Number of distinct indexed tags.
    pub fn tag_count(&self) -> usize {
        self.tag_map().len()
    }

    /// Bytes of this collection's sections within the segment (the
    /// `toss.index.segment_bytes` contribution).
    pub fn section_bytes(&self) -> usize {
        (self.tag.1 - self.tag.0) + (self.content.1 - self.content.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("dblp").unwrap();
        c.insert_xml("<article><author>A</author><year>1999</year></article>")
            .unwrap();
        c.insert_xml("<article><author>B</author><year>2000</year></article>")
            .unwrap();
        c.insert_xml("<article><author>A</author><year>2000</year></article>")
            .unwrap();
        db.create_collection("empty").unwrap();
        db
    }

    #[test]
    fn frozen_probes_match_pointer_probes() {
        let db = sample_db();
        let bytes = build_segment(&db, 7);
        let seg = Arc::new(Segment::parse(bytes).unwrap());
        assert_eq!(seg.last_seq(), 7);
        let frozen = FrozenIndex::attach(&seg, "dblp").unwrap();
        assert_eq!(frozen.doc_count(), 3);
        let coll = db.collection("dblp").unwrap();
        let view = coll.index();
        for tag in ["article", "author", "year", "missing"] {
            assert_eq!(
                frozen.by_tag(tag).to_vec(),
                view.by_tag(tag).to_vec(),
                "tag {tag}"
            );
        }
        for (tag, content) in [
            ("author", "A"),
            ("author", "B"),
            ("author", "Z"),
            ("year", "2000"),
            ("missing", "A"),
        ] {
            assert_eq!(
                frozen.by_tag_content(tag, content).to_vec(),
                view.by_tag_content(tag, content).to_vec(),
                "({tag}, {content})"
            );
        }
        assert_eq!(frozen.tag_count(), view.tag_count());
        assert!(frozen.section_bytes() > 0);
        // empty collection has sections too, all empty
        let e = FrozenIndex::attach(&seg, "empty").unwrap();
        assert_eq!(e.doc_count(), 0);
        assert_eq!(e.tag_count(), 0);
        // unknown collection does not attach
        assert!(FrozenIndex::attach(&seg, "nope").is_none());
    }

    #[test]
    fn sidecar_round_trip_and_corruption_fallback() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let snap = Path::new("store.json");
        let db = sample_db();
        let bytes = build_segment(&db, 3);
        write_segment(&vfs, snap, &bytes);
        assert!(vfs.exists(&seg_path(snap)));
        let seg = load_segment(&vfs, snap).unwrap();
        assert_eq!(seg.last_seq(), 3);
        // corrupt one byte → load silently fails
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0x10;
        vfs.corrupt(&seg_path(snap), bad);
        assert!(load_segment(&vfs, snap).is_none());
        // truncated → load silently fails
        vfs.corrupt(&seg_path(snap), bytes[..bytes.len() / 3].to_vec());
        assert!(load_segment(&vfs, snap).is_none());
        // absent → None without error
        let missing = Path::new("other.json");
        assert!(load_segment(&vfs, missing).is_none());
    }

    #[test]
    fn packed_key_round_trips() {
        let p = Posting {
            doc: DocumentId(123_456),
            node: toss_tree::NodeId::from_index(789),
        };
        let key = key_from_posting(&p).unwrap();
        assert_eq!(posting_from_key(key), p);
        // doc id beyond 32 bits refuses to pack
        let big = Posting {
            doc: DocumentId(1 << 33),
            node: toss_tree::NodeId::from_index(0),
        };
        assert!(key_from_posting(&big).is_none());
    }
}
