//! Error types for the XML database.

use std::fmt;
use toss_tree::TreeError;

/// Errors from parsing, storage or query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// XML was malformed; carries byte offset and message.
    Parse {
        /// Byte offset in the input where the problem was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// An XPath expression was malformed.
    XPathSyntax(String),
    /// A named collection does not exist.
    NoSuchCollection(String),
    /// A collection with that name already exists.
    CollectionExists(String),
    /// A document id was not found in the collection.
    NoSuchDocument(u64),
    /// Inserting a document would exceed the collection's size limit —
    /// mirrors Xindice's 5 MB per-collection cap that shaped the paper's
    /// experiments.
    SizeLimitExceeded {
        /// The configured limit in bytes.
        limit: usize,
        /// The size the collection would reach.
        attempted: usize,
    },
    /// Snapshot persistence failed.
    Storage(String),
    /// An underlying tree operation failed (internal invariant breach).
    Tree(TreeError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            DbError::XPathSyntax(m) => write!(f, "XPath syntax error: {m}"),
            DbError::NoSuchCollection(n) => write!(f, "no such collection `{n}`"),
            DbError::CollectionExists(n) => write!(f, "collection `{n}` already exists"),
            DbError::NoSuchDocument(id) => write!(f, "no such document #{id}"),
            DbError::SizeLimitExceeded { limit, attempted } => write!(
                f,
                "collection size limit exceeded: {attempted} bytes > limit {limit} bytes"
            ),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TreeError> for DbError {
    fn from(e: TreeError) -> Self {
        DbError::Tree(e)
    }
}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(DbError, &str)> = vec![
            (
                DbError::Parse {
                    offset: 12,
                    message: "unexpected `<`".into(),
                },
                "XML parse error at byte 12: unexpected `<`",
            ),
            (
                DbError::NoSuchCollection("dblp".into()),
                "no such collection `dblp`",
            ),
            (
                DbError::SizeLimitExceeded {
                    limit: 100,
                    attempted: 150,
                },
                "collection size limit exceeded: 150 bytes > limit 100 bytes",
            ),
        ];
        for (e, s) in cases {
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn tree_error_converts() {
        let e: DbError = TreeError::EmptyTree.into();
        assert!(matches!(e, DbError::Tree(_)));
    }
}
