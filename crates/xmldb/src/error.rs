//! Error types for the XML database.

use std::fmt;
use toss_tree::TreeError;

/// Which persistent structure a corruption was detected in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionSite {
    /// The snapshot file (checksum, version or structural mismatch).
    Snapshot,
    /// The write-ahead journal (a checksummed record failed verification).
    Journal,
}

impl fmt::Display for CorruptionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionSite::Snapshot => write!(f, "snapshot"),
            CorruptionSite::Journal => write!(f, "journal"),
        }
    }
}

/// Errors from parsing, storage or query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// XML was malformed; carries byte offset and message.
    Parse {
        /// Byte offset in the input where the problem was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// An XPath expression was malformed.
    XPathSyntax(String),
    /// A named collection does not exist.
    NoSuchCollection(String),
    /// A collection with that name already exists.
    CollectionExists(String),
    /// A document id was not found in the collection.
    NoSuchDocument(u64),
    /// Inserting a document would exceed the collection's size limit —
    /// mirrors Xindice's 5 MB per-collection cap that shaped the paper's
    /// experiments. Enforced on direct inserts *and* on journal replay.
    CollectionFull {
        /// The collection that refused the document.
        collection: String,
        /// The configured limit in bytes.
        limit: usize,
        /// The size the collection would reach.
        attempted: usize,
    },
    /// Snapshot persistence failed (I/O or structural problems that are
    /// not evidence of on-disk corruption).
    Storage(String),
    /// A persistent structure failed verification: checksum mismatch,
    /// impossible record, or a snapshot whose embedded checksum does not
    /// match its payload. Unlike [`DbError::Storage`], this indicates the
    /// bytes on disk were damaged after being written.
    Corruption {
        /// Which structure was damaged.
        site: CorruptionSite,
        /// What exactly failed to verify.
        detail: String,
    },
    /// An underlying tree operation failed (internal invariant breach).
    Tree(TreeError),
}

impl DbError {
    /// Shorthand for a snapshot-corruption error.
    pub fn snapshot_corruption(detail: impl Into<String>) -> Self {
        DbError::Corruption {
            site: CorruptionSite::Snapshot,
            detail: detail.into(),
        }
    }

    /// Shorthand for a journal-corruption error.
    pub fn journal_corruption(detail: impl Into<String>) -> Self {
        DbError::Corruption {
            site: CorruptionSite::Journal,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            DbError::XPathSyntax(m) => write!(f, "XPath syntax error: {m}"),
            DbError::NoSuchCollection(n) => write!(f, "no such collection `{n}`"),
            DbError::CollectionExists(n) => write!(f, "collection `{n}` already exists"),
            DbError::NoSuchDocument(id) => write!(f, "no such document #{id}"),
            DbError::CollectionFull {
                collection,
                limit,
                attempted,
            } => write!(
                f,
                "collection `{collection}` full: {attempted} bytes > limit {limit} bytes"
            ),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Corruption { site, detail } => {
                write!(f, "{site} corruption detected: {detail}")
            }
            DbError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TreeError> for DbError {
    fn from(e: TreeError) -> Self {
        DbError::Tree(e)
    }
}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(DbError, &str)> = vec![
            (
                DbError::Parse {
                    offset: 12,
                    message: "unexpected `<`".into(),
                },
                "XML parse error at byte 12: unexpected `<`",
            ),
            (
                DbError::NoSuchCollection("dblp".into()),
                "no such collection `dblp`",
            ),
            (
                DbError::CollectionFull {
                    collection: "dblp".into(),
                    limit: 100,
                    attempted: 150,
                },
                "collection `dblp` full: 150 bytes > limit 100 bytes",
            ),
            (
                DbError::snapshot_corruption("checksum mismatch"),
                "snapshot corruption detected: checksum mismatch",
            ),
            (
                DbError::journal_corruption("record 3 failed CRC"),
                "journal corruption detected: record 3 failed CRC",
            ),
        ];
        for (e, s) in cases {
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn tree_error_converts() {
        let e: DbError = TreeError::EmptyTree.into();
        assert!(matches!(e, DbError::Tree(_)));
    }

    #[test]
    fn corruption_sites_are_distinct() {
        assert_ne!(
            DbError::snapshot_corruption("x"),
            DbError::journal_corruption("x")
        );
    }
}
