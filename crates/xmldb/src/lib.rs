//! # toss-xmldb — a native XML document store (Xindice substitute)
//!
//! The TOSS prototype ran on Apache Xindice, using it purely as an
//! XPath-answering XML document store. This crate supplies the same
//! capability natively in Rust:
//!
//! * [`parser`] — a hand-written, dependency-free XML parser producing
//!   `toss_tree::Tree` values (elements, attributes, text, CDATA, comments,
//!   processing instructions, the five standard entities and numeric
//!   character references).
//! * [`collection`] / [`database`] — named collections of documents with a
//!   configurable per-collection size limit (defaults to Xindice's 5 MB,
//!   so the paper's Fig. 16(a) end-of-range regime is reproducible).
//! * [`xpath`] — an XPath-subset engine: child (`/`) and
//!   descendant-or-self (`//`) axes, name tests and `*` wildcards,
//!   predicates with `=`, `!=`, `contains()`, `text()`, attribute tests,
//!   `and`/`or`/`not()`, positional predicates, and top-level `|` union.
//!   This is the query surface the TOSS Query Executor's rewriter emits.
//! * [`index`] — tag and (tag, content) inverted indexes used to accelerate
//!   descendant-axis lookups.
//! * [`storage`] — checksummed JSON snapshots, written atomically
//!   (temp file + fsync + rename).
//! * [`journal`] / [`durable`] — a write-ahead journal and the
//!   [`durable::DurableDatabase`] wrapper giving crash-safe persistence:
//!   mutations are logged and fsynced before they apply, checkpoints fold
//!   the journal into a fresh snapshot, and recovery replays the journal
//!   over the newest valid snapshot.
//! * [`vfs`] — the filesystem abstraction ([`vfs::StdVfs`] for real disks,
//!   [`vfs::FaultVfs`] for deterministic crash and fault injection in
//!   tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod crc32;
pub mod database;
pub mod durable;
pub mod error;
pub mod index;
pub mod journal;
pub mod parser;
pub mod segidx;
pub mod storage;
pub mod vfs;
pub mod xpath;

pub use collection::{Collection, DocumentId};
pub use database::{Database, DatabaseConfig};
pub use durable::{
    apply_op, check_op, BatchValidator, DurableDatabase, DurableWriter, RecoveryReport,
};
pub use error::{CorruptionSite, DbError, DbResult};
pub use index::{IndexView, Posting, Postings};
pub use journal::{Journal, JournalOp, JournalRecord};
pub use parser::{parse_document, parse_forest};
pub use vfs::{FaultMode, FaultSchedule, FaultVfs, ScheduledFault, StdVfs, Vfs};
pub use xpath::{
    planned_partitions, NodeRef, ScanBudget, ScanControl, ScanStatus, XPath,
};
