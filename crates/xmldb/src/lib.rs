//! # toss-xmldb — a native XML document store (Xindice substitute)
//!
//! The TOSS prototype ran on Apache Xindice, using it purely as an
//! XPath-answering XML document store. This crate supplies the same
//! capability natively in Rust:
//!
//! * [`parser`] — a hand-written, dependency-free XML parser producing
//!   `toss_tree::Tree` values (elements, attributes, text, CDATA, comments,
//!   processing instructions, the five standard entities and numeric
//!   character references).
//! * [`collection`] / [`database`] — named collections of documents with a
//!   configurable per-collection size limit (defaults to Xindice's 5 MB,
//!   so the paper's Fig. 16(a) end-of-range regime is reproducible).
//! * [`xpath`] — an XPath-subset engine: child (`/`) and
//!   descendant-or-self (`//`) axes, name tests and `*` wildcards,
//!   predicates with `=`, `!=`, `contains()`, `text()`, attribute tests,
//!   `and`/`or`/`not()`, positional predicates, and top-level `|` union.
//!   This is the query surface the TOSS Query Executor's rewriter emits.
//! * [`index`] — tag and (tag, content) inverted indexes used to accelerate
//!   descendant-axis lookups.
//! * [`storage`] — JSON snapshot persistence for databases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod database;
pub mod error;
pub mod index;
pub mod parser;
pub mod storage;
pub mod xpath;

pub use collection::{Collection, DocumentId};
pub use database::{Database, DatabaseConfig};
pub use error::{DbError, DbResult};
pub use parser::{parse_document, parse_forest};
pub use xpath::{NodeRef, XPath};
