//! A hand-written XML parser producing `toss_tree::Tree` values.
//!
//! Supports the XML subset needed for bibliographic corpora (and then
//! some): elements with attributes, text content, CDATA sections,
//! comments, processing instructions, an XML declaration, DOCTYPE
//! (skipped), the five predefined entities and decimal/hex character
//! references. Namespaces are treated lexically (prefixes stay part of the
//! tag name), which matches how Xindice-era tools handled them.
//!
//! Whitespace-only text between elements is dropped; significant text is
//! stored on the enclosing element's `content` attribute with a lexically
//! inferred type (`int`, `real`, else `string`).

use crate::error::{DbError, DbResult};
use toss_tree::{Forest, NodeData, Tree, TypeSystem, Value};

/// Parse a single XML document into a tree.
///
/// Errors if the input contains no element, more than one top-level
/// element, or malformed markup.
pub fn parse_document(input: &str) -> DbResult<Tree> {
    let mut f = parse_forest(input)?;
    match f.len() {
        0 => Err(err(0, "no root element found")),
        1 => Ok(f.trees_mut().remove(0)),
        n => Err(err(0, format!("expected one root element, found {n}"))),
    }
}

/// Parse a sequence of XML documents (e.g. a file of concatenated records)
/// into a forest, one tree per top-level element.
pub fn parse_forest(input: &str) -> DbResult<Forest> {
    let mut p = Parser::new(input);
    let mut forest = Forest::new();
    loop {
        p.skip_misc()?;
        if p.at_end() {
            break;
        }
        let tree = p.parse_element_tree()?;
        forest.push(tree);
    }
    Ok(forest)
}

fn err(offset: usize, message: impl Into<String>) -> DbError {
    DbError::Parse {
        offset,
        message: message.into(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Skip whitespace, comments, PIs, the XML declaration and DOCTYPE.
    fn skip_misc(&mut self) -> DbResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->", "unterminated comment")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>", "unterminated processing instruction")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str, msg: &str) -> DbResult<()> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            if self.starts_with(end) {
                self.bump(end.len());
                return Ok(());
            }
            self.pos += 1;
        }
        Err(err(start, msg))
    }

    /// DOCTYPE may contain a bracketed internal subset.
    fn skip_doctype(&mut self) -> DbResult<()> {
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(err(start, "unterminated DOCTYPE"))
    }

    fn parse_name(&mut self) -> DbResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'-' | b'.' | b':')
                || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(err(start, "expected a name"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_string)
            .map_err(|_| err(start, "name is not valid UTF-8"))
    }

    fn expect(&mut self, b: u8) -> DbResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(
                self.pos,
                format!("expected `{}`", char::from(b)),
            ))
        }
    }

    fn parse_attr_value(&mut self) -> DbResult<String> {
        let quote = self
            .peek()
            .filter(|&b| b == b'"' || b == b'\'')
            .ok_or_else(|| err(self.pos, "expected quoted attribute value"))?;
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err(start, "attribute value is not valid UTF-8"))?;
                self.pos += 1;
                return decode_entities(raw, start);
            }
            if b == b'<' {
                return Err(err(self.pos, "`<` not allowed in attribute value"));
            }
            self.pos += 1;
        }
        Err(err(start, "unterminated attribute value"))
    }

    /// Parse one element and its subtree into a new [`Tree`].
    fn parse_element_tree(&mut self) -> DbResult<Tree> {
        let mut tree = Tree::new();
        let root = self.parse_element_into(&mut tree, None)?;
        debug_assert_eq!(tree.root(), Some(root));
        Ok(tree)
    }

    fn parse_element_into(
        &mut self,
        tree: &mut Tree,
        parent: Option<toss_tree::NodeId>,
    ) -> DbResult<toss_tree::NodeId> {
        self.expect(b'<')?;
        let tag = self.parse_name()?;
        let mut data = NodeData::element(tag.clone());

        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    data.attrs.push((name, value));
                }
                None => return Err(err(self.pos, "unterminated start tag")),
            }
        }

        let node = match parent {
            Some(p) => tree.add_child(p, data)?,
            None => tree.set_root(data)?,
        };

        if self.peek() == Some(b'/') {
            self.bump(1);
            self.expect(b'>')?;
            return Ok(node); // empty element
        }
        self.expect(b'>')?;

        // children / text until matching end tag
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(err(self.pos, format!("unterminated element <{tag}>")));
            }
            if self.starts_with("<!--") {
                self.skip_until("-->", "unterminated comment")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                self.skip_until("]]>", "unterminated CDATA section")?;
                let raw = std::str::from_utf8(&self.bytes[start..self.pos - 3])
                    .map_err(|_| err(start, "CDATA is not valid UTF-8"))?;
                text.push_str(raw);
            } else if self.starts_with("<?") {
                self.skip_until("?>", "unterminated processing instruction")?;
            } else if self.starts_with("</") {
                self.bump(2);
                let end_tag = self.parse_name()?;
                if end_tag != tag {
                    return Err(err(
                        self.pos,
                        format!("mismatched end tag: expected </{tag}>, found </{end_tag}>"),
                    ));
                }
                self.skip_ws();
                self.expect(b'>')?;
                break;
            } else if self.peek() == Some(b'<') {
                self.parse_element_into(tree, Some(node))?;
            } else {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err(start, "text is not valid UTF-8"))?;
                text.push_str(&decode_entities(raw, start)?);
            }
        }

        let trimmed = text.trim();
        if !trimmed.is_empty() {
            let value = Value::parse_lexical(trimmed);
            let ty = TypeSystem::infer(&value);
            let d = tree.data_mut(node)?;
            d.content = Some(value);
            d.content_type = Some(ty);
        }
        Ok(node)
    }
}

/// Decode the five predefined entities plus numeric character references.
fn decode_entities(raw: &str, offset: usize) -> DbResult<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((i, ch)) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let rest = &raw[i + 1..];
        let Some(semi) = rest.find(';') else {
            return Err(err(offset + i, "unterminated entity reference"));
        };
        let name = &rest[..semi];
        let decoded = match name {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| err(offset + i, format!("bad character reference &{name};")))?
            }
            _ if name.starts_with('#') => name[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| err(offset + i, format!("bad character reference &{name};")))?,
            _ => {
                return Err(err(
                    offset + i,
                    format!("unknown entity reference &{name};"),
                ))
            }
        };
        out.push(decoded);
        // advance the iterator past the entity
        for _ in 0..semi + 1 {
            chars.next();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toss_tree::serialize::{tree_to_xml, Style};

    #[test]
    fn simple_document() {
        let t = parse_document("<a><b>hello</b></a>").unwrap();
        let r = t.root().unwrap();
        assert_eq!(t.data(r).unwrap().tag, "a");
        let b = t.child_by_tag(r, "b").unwrap();
        assert_eq!(t.data(b).unwrap().content_str(), "hello");
    }

    #[test]
    fn numeric_content_gets_int_type() {
        let t = parse_document("<y>1999</y>").unwrap();
        let r = t.root().unwrap();
        assert_eq!(t.data(r).unwrap().content, Some(Value::Int(1999)));
    }

    #[test]
    fn attributes_parse_with_both_quote_styles() {
        let t = parse_document(r#"<a k="v1" j='v2'/>"#).unwrap();
        let d = t.data(t.root().unwrap()).unwrap();
        assert_eq!(d.attr_value("k"), Some("v1"));
        assert_eq!(d.attr_value("j"), Some("v2"));
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let t = parse_document(r#"<a k="&lt;&amp;&quot;">a &amp; b &#65; &#x42;</a>"#).unwrap();
        let d = t.data(t.root().unwrap()).unwrap();
        assert_eq!(d.attr_value("k"), Some("<&\""));
        assert_eq!(d.content_str(), "a & b A B");
    }

    #[test]
    fn cdata_is_literal() {
        let t = parse_document("<a><![CDATA[1 < 2 & x]]></a>").unwrap();
        assert_eq!(t.data(t.root().unwrap()).unwrap().content_str(), "1 < 2 & x");
    }

    #[test]
    fn comments_pis_doctype_are_skipped() {
        let src = r#"<?xml version="1.0"?>
<!DOCTYPE dblp [ <!ELEMENT dblp (x)> ]>
<!-- a comment -->
<dblp><!-- inner --><x>1</x><?pi data?></dblp>"#;
        let t = parse_document(src).unwrap();
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(e, DbError::Parse { .. }));
        assert!(e.to_string().contains("mismatched end tag"));
    }

    #[test]
    fn unterminated_element_errors() {
        assert!(parse_document("<a><b>").is_err());
        assert!(parse_document("<a").is_err());
    }

    #[test]
    fn multiple_roots_rejected_by_parse_document() {
        assert!(parse_document("<a/><b/>").is_err());
        let f = parse_forest("<a/><b/>").unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_input_gives_no_root_error() {
        assert!(parse_document("   ").is_err());
        assert_eq!(parse_forest("").unwrap().len(), 0);
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(parse_document("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let t = parse_document("<a>\n  <b>x</b>\n</a>").unwrap();
        let r = t.root().unwrap();
        assert!(t.data(r).unwrap().content.is_none());
    }

    #[test]
    fn round_trip_with_serializer() {
        let src = "<article key=\"conf/sigmod/1\"><author>Dana Florescu</author><title>Storing &amp; Querying XML</title><year>1999</year></article>";
        let t = parse_document(src).unwrap();
        let xml = tree_to_xml(&t, Style::Compact);
        let t2 = parse_document(&xml).unwrap();
        assert!(toss_tree::eq::trees_equal(&t, &t2));
    }

    #[test]
    fn deep_nesting_parses() {
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..200).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let t = parse_document(&src).unwrap();
        assert_eq!(t.node_count(), 200);
    }

    #[test]
    fn mixed_content_keeps_text_and_children() {
        let t = parse_document("<a>hello <b>x</b> world</a>").unwrap();
        let r = t.root().unwrap();
        assert_eq!(t.data(r).unwrap().content_str(), "hello  world");
        assert_eq!(t.children(r).count(), 1);
    }

    #[test]
    fn unicode_content_and_tags() {
        let t = parse_document("<a>Grüße an Łukasz</a>").unwrap();
        assert_eq!(
            t.data(t.root().unwrap()).unwrap().content_str(),
            "Grüße an Łukasz"
        );
    }
}
