//! Snapshot persistence.
//!
//! Databases serialize to a single JSON file: collection names, per-document
//! compact XML, and the configured size limit. On load the XML is re-parsed
//! and re-indexed, so the snapshot format stays independent of in-memory
//! layout (the same property Xindice got from its filer abstraction).

use crate::collection::Collection;
use crate::database::{Database, DatabaseConfig};
use crate::error::{DbError, DbResult};
use serde::{Deserialize, Serialize};
use std::path::Path;
use toss_tree::serialize::{tree_to_xml, Style};

#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    collection_size_limit: Option<usize>,
    collections: Vec<CollectionSnapshot>,
}

#[derive(Serialize, Deserialize)]
struct CollectionSnapshot {
    name: String,
    documents: Vec<String>,
}

const SNAPSHOT_VERSION: u32 = 1;

/// Serialize a database to a JSON string.
pub fn to_json(db: &Database) -> DbResult<String> {
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        collection_size_limit: db.config().collection_size_limit,
        collections: db
            .collections()
            .map(|c: &Collection| CollectionSnapshot {
                name: c.name().to_string(),
                documents: c
                    .documents()
                    .iter()
                    .map(|d| tree_to_xml(&d.tree, Style::Compact))
                    .collect(),
            })
            .collect(),
    };
    serde_json::to_string(&snap).map_err(|e| DbError::Storage(e.to_string()))
}

/// Restore a database from a JSON string produced by [`to_json`].
pub fn from_json(json: &str) -> DbResult<Database> {
    let snap: Snapshot =
        serde_json::from_str(json).map_err(|e| DbError::Storage(e.to_string()))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(DbError::Storage(format!(
            "unsupported snapshot version {}",
            snap.version
        )));
    }
    let mut db = Database::with_config(DatabaseConfig {
        collection_size_limit: snap.collection_size_limit,
    });
    for cs in snap.collections {
        let coll = db.create_collection(&cs.name)?;
        for xml in cs.documents {
            coll.insert_xml(&xml)?;
        }
    }
    Ok(db)
}

/// Write a snapshot to disk.
pub fn save(db: &Database, path: &Path) -> DbResult<()> {
    let json = to_json(db)?;
    std::fs::write(path, json).map_err(|e| DbError::Storage(e.to_string()))
}

/// Load a snapshot from disk.
pub fn load(path: &Path) -> DbResult<Database> {
    let json = std::fs::read_to_string(path).map_err(|e| DbError::Storage(e.to_string()))?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("dblp").unwrap();
        c.insert_xml("<a><b>x &amp; y</b></a>").unwrap();
        c.insert_xml("<c k=\"v\"/>").unwrap();
        db.create_collection("empty").unwrap();
        db
    }

    #[test]
    fn json_round_trip_preserves_documents() {
        let db = sample_db();
        let json = to_json(&db).unwrap();
        let db2 = from_json(&json).unwrap();
        assert_eq!(db2.collection_names(), vec!["dblp", "empty"]);
        let c = db2.collection("dblp").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.documents()[0].tree.data(c.documents()[0].tree.root().unwrap()).unwrap().tag,
            "a"
        );
        // content with entities survived
        let t = &c.documents()[0].tree;
        let b = t.child_by_tag(t.root().unwrap(), "b").unwrap();
        assert_eq!(t.data(b).unwrap().content_str(), "x & y");
    }

    #[test]
    fn round_trip_preserves_config() {
        let db = Database::with_config(DatabaseConfig {
            collection_size_limit: Some(123),
        });
        let db2 = from_json(&to_json(&db).unwrap()).unwrap();
        assert_eq!(db2.config().collection_size_limit, Some(123));
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("toss-xmldb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        save(&db, &path).unwrap();
        let db2 = load(&path).unwrap();
        assert_eq!(db2.collection("dblp").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_version_is_rejected() {
        let json = r#"{"version":99,"collection_size_limit":null,"collections":[]}"#;
        assert!(matches!(from_json(json), Err(DbError::Storage(_))));
    }

    #[test]
    fn malformed_json_is_storage_error() {
        assert!(matches!(from_json("{"), Err(DbError::Storage(_))));
    }

    #[test]
    fn indexes_rebuilt_on_load() {
        let db = sample_db();
        let db2 = from_json(&to_json(&db).unwrap()).unwrap();
        let c = db2.collection("dblp").unwrap();
        assert_eq!(c.index().by_tag("b").len(), 1);
    }
}
