//! Checksummed, atomically-written snapshot persistence.
//!
//! Databases serialize to a single JSON file: collection names, per-document
//! compact XML, and the configured size limit. On load the XML is re-parsed
//! and re-indexed, so the snapshot format stays independent of in-memory
//! layout (the same property Xindice got from its filer abstraction).
//!
//! ## Format
//!
//! Version 2 (written by [`to_json`]) wraps the payload with an embedded
//! CRC-32 so load can prove the bytes were not damaged after the write:
//!
//! ```json
//! {"version":2,"checksum":<crc32 of compact data JSON>,"data":{
//!     "collection_size_limit":...,"last_seq":...,"collections":[
//!         {"name":...,"next_id":...,"documents":[{"id":...,"xml":...},...]}]}}
//! ```
//!
//! Document ids (and each collection's id counter) are part of the
//! format: ids are never reused, and the journal addresses documents by
//! id, so a load that re-numbered documents would corrupt replay.
//!
//! Version 1 snapshots (the pre-checksum flat layout) are still accepted
//! by [`from_json`], so existing stores open unchanged.
//!
//! ## Atomicity
//!
//! [`save`] never writes the target file in place. It writes a temp file,
//! fsyncs it, and renames it over the target — so a crash at any moment
//! leaves either the complete old snapshot or the complete new one, never
//! a torn mixture. The same protocol runs against any [`Vfs`] via
//! [`save_with_vfs`], which is how the fault-injection suite proves it.

use crate::crc32::crc32;
use crate::database::{Database, DatabaseConfig};
use crate::error::{DbError, DbResult};
use crate::segidx::FrozenIndex;
use crate::vfs::{StdVfs, Vfs};
use std::path::Path;
use std::sync::Arc;
use toss_json::Value;
use toss_segment::Segment;
use toss_tree::serialize::{tree_to_xml, Style};

/// Snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Build the inner `data` object (config + collections + journal cursor).
fn data_value(db: &Database, last_seq: u64) -> Value {
    let collections: Vec<Value> = db
        .collections()
        .map(|c| {
            Value::object(vec![
                ("name", c.name().into()),
                // The id counter is stored explicitly: ids are monotonic
                // and never reused, so a gap above the largest live id
                // (highest-numbered document removed) must survive the
                // round trip too.
                ("next_id", (c.next_id() as i64).into()),
                (
                    "documents",
                    Value::Array(
                        c.documents()
                            .iter()
                            .map(|d| {
                                Value::object(vec![
                                    ("id", (d.id.0 as i64).into()),
                                    ("xml", tree_to_xml(&d.tree, Style::Compact).into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::object(vec![
        (
            "collection_size_limit",
            match db.config().collection_size_limit {
                Some(n) => n.into(),
                None => Value::Null,
            },
        ),
        // The journal cursor: every journal record with seq < last_seq
        // is already reflected in this snapshot and must be skipped on
        // replay. This is what makes checkpointing crash-idempotent.
        ("last_seq", last_seq.into()),
        ("collections", Value::Array(collections)),
    ])
}

/// Serialize a database to a checksummed (version 2) JSON snapshot that
/// records `last_seq` as the highest journal sequence it contains.
pub fn to_json_with_seq(db: &Database, last_seq: u64) -> DbResult<String> {
    let data = data_value(db, last_seq);
    let checksum = crc32(data.to_json().as_bytes());
    let snap = Value::object(vec![
        ("version", (SNAPSHOT_VERSION as i64).into()),
        ("checksum", checksum.into()),
        ("data", data),
    ]);
    Ok(snap.to_json())
}

/// Serialize a database to a checksummed (version 2) JSON snapshot.
pub fn to_json(db: &Database) -> DbResult<String> {
    to_json_with_seq(db, 0)
}

/// Rebuild a database (and journal cursor) from the inner `data` object.
///
/// With a verified segment whose `last_seq` stamp matches the
/// snapshot's cursor exactly, collections attach frozen zero-copy
/// indexes instead of re-indexing their documents; any collection the
/// segment can't serve (absent sections, count mismatch) rebuilds as
/// before. Returns the number of collections that attached frozen.
fn db_from_data(data: &Value, seg: Option<&Arc<Segment>>) -> DbResult<(Database, u64, usize)> {
    let bad = |m: &str| DbError::Storage(format!("malformed snapshot: {m}"));
    let limit = match data.get("collection_size_limit") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| bad("collection_size_limit is not an integer"))?,
        ),
    };
    // Absent in version-1 snapshots, which predate the journal.
    let last_seq = match data.get("last_seq") {
        None => 0,
        Some(v) => v
            .as_i64()
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| bad("last_seq is not a non-negative integer"))?,
    };
    // The staleness rule: a segment serves this snapshot only when its
    // stamp equals the snapshot's cursor exactly. A stale sidecar (the
    // residue of a crash between snapshot rename and segment write) is
    // silently ignored — rebuild, never guess.
    let seg = match seg {
        Some(s) if s.last_seq() != last_seq => {
            toss_obs::metrics::counter("xmldb.segment.stale").inc();
            None
        }
        other => other,
    };
    let mut frozen = 0usize;
    let mut db = Database::with_config(DatabaseConfig {
        collection_size_limit: limit,
    });
    let collections = data
        .get("collections")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing collections array"))?;
    for cs in collections {
        let name = cs
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("collection missing name"))?;
        let coll = db.create_collection(name)?;
        if seg.is_some() {
            coll.begin_deferred_restore();
        }
        let documents = cs
            .get("documents")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("collection missing documents array"))?;
        for doc in documents {
            match doc {
                // Version-1 layout: bare XML strings, ids assigned 0..n.
                Value::Str(xml) => {
                    coll.insert_xml(xml)?;
                }
                // Version-2 layout: explicit ids, preserved exactly.
                Value::Object(_) => {
                    let id = doc
                        .get("id")
                        .and_then(Value::as_i64)
                        .and_then(|n| u64::try_from(n).ok())
                        .ok_or_else(|| bad("document entry missing id"))?;
                    let xml = doc
                        .get("xml")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad("document entry missing xml"))?;
                    let tree = crate::parser::parse_document(xml)?;
                    coll.insert_with_id(crate::collection::DocumentId(id), tree)?;
                }
                _ => return Err(bad("document entry is neither string nor object")),
            }
        }
        if let Some(n) = cs.get("next_id") {
            let n = n
                .as_i64()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| bad("next_id is not a non-negative integer"))?;
            coll.set_next_id_at_least(n);
        }
        if let Some(seg) = seg {
            if FrozenIndex::attach(seg, name).is_some_and(|f| coll.attach_frozen(f)) {
                frozen += 1;
            }
        }
        // no-op when a frozen index attached; otherwise one rebuild
        coll.ensure_index();
    }
    Ok((db, last_seq, frozen))
}

/// Restore a database and its journal cursor from a JSON snapshot
/// produced by [`to_json_with_seq`] (version 2, checksummed) or by older
/// builds (version 1, flat, cursor 0).
pub fn from_json_with_seq(json: &str) -> DbResult<(Database, u64)> {
    from_json_with_seq_seg(json, None).map(|(db, seq, _)| (db, seq))
}

/// [`from_json_with_seq`] with an optional verified segment sidecar to
/// attach frozen indexes from; additionally returns how many collections
/// attached frozen (0 when `seg` is `None`, stale, or unusable).
pub fn from_json_with_seq_seg(
    json: &str,
    seg: Option<&Arc<Segment>>,
) -> DbResult<(Database, u64, usize)> {
    let value =
        Value::parse(json).map_err(|e| DbError::Storage(format!("snapshot is not JSON: {e}")))?;
    let version = value
        .get("version")
        .and_then(Value::as_i64)
        .ok_or_else(|| DbError::Storage("snapshot missing version field".into()))?;
    match version {
        // v1 snapshots predate segments; never attach one to them.
        1 => db_from_data(&value, None),
        2 => {
            let expected = value
                .get("checksum")
                .and_then(Value::as_i64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| DbError::Storage("snapshot missing checksum field".into()))?;
            let data = value
                .get("data")
                .ok_or_else(|| DbError::Storage("snapshot missing data field".into()))?;
            let actual = crc32(data.to_json().as_bytes());
            if actual != expected {
                return Err(DbError::snapshot_corruption(format!(
                    "checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )));
            }
            db_from_data(data, seg)
        }
        other => Err(DbError::Storage(format!(
            "unsupported snapshot version {other}"
        ))),
    }
}

/// Restore a database from a JSON snapshot, discarding the journal cursor.
pub fn from_json(json: &str) -> DbResult<Database> {
    from_json_with_seq(json).map(|(db, _)| db)
}

/// Write a snapshot atomically through an arbitrary [`Vfs`]:
/// temp file → fsync → rename over the target.
pub fn save_with_vfs_seq(
    db: &Database,
    last_seq: u64,
    path: &Path,
    vfs: &dyn Vfs,
) -> DbResult<()> {
    let json = to_json_with_seq(db, last_seq)?;
    save_json_with_vfs(&json, path, vfs)
}

/// Persist an already-serialized snapshot (produced by
/// [`to_json_with_seq`]) with the same atomic protocol. Separated from
/// [`save_with_vfs_seq`] so a live server can serialize under a short
/// read lock and do the (slow) durable write with no lock held at all.
pub fn save_json_with_vfs(json: &str, path: &Path, vfs: &dyn Vfs) -> DbResult<()> {
    let span = toss_obs::span("xmldb.snapshot.write");
    span.record("bytes", json.len());
    let tmp = path.with_extension("snap.tmp");
    vfs.write(&tmp, json.as_bytes())
        .map_err(|e| DbError::Storage(format!("snapshot write failed: {e}")))?;
    vfs.sync(&tmp)
        .map_err(|e| DbError::Storage(format!("snapshot fsync failed: {e}")))?;
    vfs.rename(&tmp, path)
        .map_err(|e| DbError::Storage(format!("snapshot rename failed: {e}")))?;
    toss_obs::metrics::counter("xmldb.snapshot.writes").inc();
    toss_obs::metrics::counter("xmldb.snapshot.bytes_written").add(json.len() as u64);
    toss_obs::metrics::histogram("xmldb.snapshot.write_ns").observe_duration(span.finish());
    Ok(())
}

/// Write a snapshot atomically through an arbitrary [`Vfs`] with a zero
/// journal cursor (for databases not using a journal).
pub fn save_with_vfs(db: &Database, path: &Path, vfs: &dyn Vfs) -> DbResult<()> {
    save_with_vfs_seq(db, 0, path, vfs)
}

/// Load a snapshot and its journal cursor through an arbitrary [`Vfs`].
pub fn load_with_vfs_seq(path: &Path, vfs: &dyn Vfs) -> DbResult<(Database, u64)> {
    load_with_vfs_seq_seg(path, vfs, None).map(|(db, seq, _)| (db, seq))
}

/// [`load_with_vfs_seq`] attaching frozen indexes from an optional
/// verified segment; also returns the frozen-collection count.
pub fn load_with_vfs_seq_seg(
    path: &Path,
    vfs: &dyn Vfs,
    seg: Option<&Arc<Segment>>,
) -> DbResult<(Database, u64, usize)> {
    let span = toss_obs::span("xmldb.snapshot.load");
    let bytes = vfs
        .read(path)
        .map_err(|e| DbError::Storage(format!("snapshot read failed: {e}")))?;
    span.record("bytes", bytes.len());
    let json = String::from_utf8(bytes)
        .map_err(|_| DbError::snapshot_corruption("snapshot is not valid UTF-8"))?;
    let loaded = from_json_with_seq_seg(&json, seg)?;
    toss_obs::metrics::counter("xmldb.snapshot.loads").inc();
    toss_obs::metrics::histogram("xmldb.snapshot.load_ns").observe_duration(span.finish());
    Ok(loaded)
}

/// Load a snapshot through an arbitrary [`Vfs`].
pub fn load_with_vfs(path: &Path, vfs: &dyn Vfs) -> DbResult<Database> {
    load_with_vfs_seq(path, vfs).map(|(db, _)| db)
}

/// Write a snapshot to disk (atomically: temp file + fsync + rename).
pub fn save(db: &Database, path: &Path) -> DbResult<()> {
    save_with_vfs(db, path, &StdVfs)
}

/// Load a snapshot from disk.
pub fn load(path: &Path) -> DbResult<Database> {
    load_with_vfs(path, &StdVfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultMode, FaultVfs};
    use std::path::PathBuf;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let c = db.create_collection("dblp").unwrap();
        c.insert_xml("<a><b>x &amp; y</b></a>").unwrap();
        c.insert_xml("<c k=\"v\"/>").unwrap();
        db.create_collection("empty").unwrap();
        db
    }

    #[test]
    fn json_round_trip_preserves_documents() {
        let db = sample_db();
        let json = to_json(&db).unwrap();
        let db2 = from_json(&json).unwrap();
        assert_eq!(db2.collection_names(), vec!["dblp", "empty"]);
        let c = db2.collection("dblp").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.documents()[0].tree.data(c.documents()[0].tree.root().unwrap()).unwrap().tag,
            "a"
        );
        // content with entities survived
        let t = &c.documents()[0].tree;
        let b = t.child_by_tag(t.root().unwrap(), "b").unwrap();
        assert_eq!(t.data(b).unwrap().content_str(), "x & y");
    }

    #[test]
    fn round_trip_preserves_config() {
        let db = Database::with_config(DatabaseConfig {
            collection_size_limit: Some(123),
        });
        let db2 = from_json(&to_json(&db).unwrap()).unwrap();
        assert_eq!(db2.config().collection_size_limit, Some(123));
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("toss-xmldb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        save(&db, &path).unwrap();
        let db2 = load(&path).unwrap();
        assert_eq!(db2.collection("dblp").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_version_is_rejected() {
        let json = r#"{"version":99,"collection_size_limit":null,"collections":[]}"#;
        assert!(matches!(from_json(json), Err(DbError::Storage(_))));
    }

    #[test]
    fn malformed_json_is_storage_error() {
        assert!(matches!(from_json("{"), Err(DbError::Storage(_))));
    }

    #[test]
    fn indexes_rebuilt_on_load() {
        let db = sample_db();
        let db2 = from_json(&to_json(&db).unwrap()).unwrap();
        let c = db2.collection("dblp").unwrap();
        assert_eq!(c.index().by_tag("b").len(), 1);
    }

    #[test]
    fn legacy_v1_snapshots_still_load() {
        let v1 = r#"{"version":1,"collection_size_limit":77,
            "collections":[{"name":"old","documents":["<a><b>1</b></a>"]}]}"#;
        let (db, last_seq) = from_json_with_seq(v1).unwrap();
        assert_eq!(db.config().collection_size_limit, Some(77));
        assert_eq!(db.collection("old").unwrap().len(), 1);
        assert_eq!(last_seq, 0, "v1 snapshots predate the journal");
    }

    #[test]
    fn document_ids_and_counter_survive_round_trip() {
        use crate::collection::DocumentId;
        let mut db = Database::new();
        let c = db.create_collection("dblp").unwrap();
        c.insert_xml("<a/>").unwrap(); // id 0
        c.insert_xml("<b/>").unwrap(); // id 1
        c.insert_xml("<c/>").unwrap(); // id 2
        c.remove(DocumentId(1)).unwrap(); // gap in the middle
        c.remove(DocumentId(2)).unwrap(); // gap above the largest live id
        let db2 = from_json(&to_json(&db).unwrap()).unwrap();
        let c2 = db2.collection("dblp").unwrap();
        assert_eq!(
            c2.documents().iter().map(|d| d.id.0).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(c2.next_id(), 3, "id counter must not regress on load");
    }

    #[test]
    fn journal_cursor_round_trips() {
        let json = to_json_with_seq(&sample_db(), 41).unwrap();
        let (_, last_seq) = from_json_with_seq(&json).unwrap();
        assert_eq!(last_seq, 41);
    }

    #[test]
    fn bit_flip_in_snapshot_is_corruption() {
        let json = to_json(&sample_db()).unwrap();
        // Flip a character inside a document payload, not the JSON
        // structure: parsing still succeeds, the checksum must catch it.
        let broken = json.replacen("x &amp; y", "x &amp; z", 1);
        assert_ne!(json, broken);
        let err = from_json(&broken).unwrap_err();
        assert!(
            matches!(
                err,
                DbError::Corruption {
                    site: crate::error::CorruptionSite::Snapshot,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn save_is_atomic_under_crash() {
        let vfs = FaultVfs::new();
        let path = PathBuf::from("snap.json");
        // Establish a durable old snapshot.
        let mut old = Database::new();
        old.create_collection("old").unwrap();
        save_with_vfs(&old, &path, &vfs).unwrap();
        // Crash the new save at every protocol step; the old snapshot
        // must remain loadable (or the new one, once the rename landed).
        let new = sample_db();
        for step in 0..3 {
            let base = vfs.op_count();
            vfs.fail_op(base + step, FaultMode::Error);
            assert!(save_with_vfs(&new, &path, &vfs).is_err());
            vfs.crash();
            let db = load_with_vfs(&path, &vfs).unwrap();
            assert_eq!(db.collection_names(), vec!["old"], "step {step}");
        }
        // No fault: the save completes and replaces the old snapshot.
        save_with_vfs(&new, &path, &vfs).unwrap();
        vfs.crash();
        let db = load_with_vfs(&path, &vfs).unwrap();
        assert_eq!(db.collection_names(), vec!["dblp", "empty"]);
    }

    #[test]
    fn torn_snapshot_write_preserves_old_file() {
        let vfs = FaultVfs::new();
        let path = PathBuf::from("snap.json");
        let mut old = Database::new();
        old.create_collection("old").unwrap();
        save_with_vfs(&old, &path, &vfs).unwrap();
        // Tear the temp-file write; the target is untouched.
        vfs.fail_op(vfs.op_count(), FaultMode::Tear { keep: 10 });
        assert!(save_with_vfs(&sample_db(), &path, &vfs).is_err());
        vfs.crash();
        let db = load_with_vfs(&path, &vfs).unwrap();
        assert_eq!(db.collection_names(), vec!["old"]);
    }
}
